//! BBA: buffer-based rate adaptation (Huang et al., SIGCOMM'14).
//!
//! §D.1: *"We customized Puffer's ABR algorithm to run BBA, which only
//! relies on buffer size to choose a video bitrate and skips instances
//! when capacity estimation is not needed."* BBA-0 maps the playback
//! buffer level through a linear function between a reservoir and a
//! cushion: below the reservoir pick R_min, above the cushion pick R_max,
//! in between pick the highest rate below the linear ramp.

/// The BBA-0 rate map.
#[derive(Debug, Clone, Copy)]
pub struct Bba {
    /// Reservoir, seconds: below this always pick the minimum rate.
    pub reservoir_s: f64,
    /// Cushion end, seconds: above this always pick the maximum rate.
    pub cushion_s: f64,
}

impl Default for Bba {
    fn default() -> Self {
        // Reservoir/cushion sized against the player's 15 s buffer cap:
        // the cushion must end below the cap or R_max is never reachable.
        Bba {
            reservoir_s: 4.0,
            cushion_s: 11.0,
        }
    }
}

impl Bba {
    /// The linear ramp value f(B) between R_min and R_max.
    fn ramp(&self, buffer_s: f64, rmin: f64, rmax: f64) -> f64 {
        rmin + (rmax - rmin) * (buffer_s - self.reservoir_s) / (self.cushion_s - self.reservoir_s)
    }

    /// Memoryless rate map: the highest rung not exceeding the ramp.
    /// Useful for analysis; playback should use [`Bba::pick`] (with the
    /// previous rate) to get BBA-0's switching hysteresis.
    pub fn pick_memoryless(&self, buffer_s: f64, ladder: &[f64]) -> f64 {
        assert!(!ladder.is_empty(), "bitrate ladder must not be empty");
        // lint:allow(D7): the empty-ladder panic is this API's documented contract, asserted one line above
        let (rmin, rmax) = (ladder[0], *ladder.last().expect("nonempty"));
        if buffer_s <= self.reservoir_s {
            return rmin;
        }
        if buffer_s >= self.cushion_s {
            return rmax;
        }
        let f = self.ramp(buffer_s, rmin, rmax);
        ladder
            .iter()
            .rev()
            .copied()
            .find(|&r| r <= f)
            .unwrap_or(rmin)
    }

    /// BBA-0 proper: stay at the previous rate unless the ramp crosses the
    /// next rung up (then jump up) or falls below the next rung down (then
    /// step down). The hysteresis prevents the rate ping-ponging that the
    /// QoE switch penalty would punish.
    ///
    /// # Panics
    /// Panics if the ladder is empty.
    pub fn pick(&self, buffer_s: f64, ladder: &[f64], prev: Option<f64>) -> f64 {
        assert!(!ladder.is_empty(), "bitrate ladder must not be empty");
        let Some(prev) = prev else {
            return self.pick_memoryless(buffer_s, ladder);
        };
        // lint:allow(D7): the empty-ladder panic is this API's documented contract, asserted above
        let (rmin, rmax) = (ladder[0], *ladder.last().expect("nonempty"));
        if buffer_s <= self.reservoir_s {
            return rmin;
        }
        if buffer_s >= self.cushion_s {
            return rmax;
        }
        let f = self.ramp(buffer_s, rmin, rmax);
        let next_up = ladder.iter().copied().find(|&r| r > prev);
        let next_down = ladder.iter().rev().copied().find(|&r| r < prev);
        if next_up.is_some_and(|up| f >= up) {
            // Jump to the highest rung the ramp supports.
            ladder
                .iter()
                .rev()
                .copied()
                .find(|&r| r <= f)
                .unwrap_or(rmin)
        } else if next_down.is_some_and(|dn| f <= dn) {
            // Only step down once the ramp falls to the rung below —
            // this is the hysteresis band.
            ladder
                .iter()
                .rev()
                .copied()
                .find(|&r| r <= f)
                .unwrap_or(rmin)
        } else {
            prev
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::BITRATES_MBPS;

    #[test]
    fn reservoir_forces_min() {
        let b = Bba::default();
        assert_eq!(b.pick(0.0, &BITRATES_MBPS, None), 5.0);
        assert_eq!(b.pick(3.9, &BITRATES_MBPS, Some(100.0)), 5.0);
    }

    #[test]
    fn cushion_allows_max() {
        let b = Bba::default();
        assert_eq!(b.pick(11.0, &BITRATES_MBPS, None), 100.0);
        assert_eq!(b.pick(14.0, &BITRATES_MBPS, Some(5.0)), 100.0);
    }

    #[test]
    fn memoryless_ramp_is_monotone() {
        let b = Bba::default();
        let mut last = 0.0;
        for i in 0..40 {
            let buf = i as f64 * 0.5;
            let r = b.pick_memoryless(buf, &BITRATES_MBPS);
            assert!(r >= last, "rate decreased at buffer {buf}");
            last = r;
        }
    }

    #[test]
    fn mid_buffer_picks_mid_rate() {
        let b = Bba::default();
        // At buffer 9 s the ramp value is 5 + 95*(9-4)/7 = 72.9 → 50.
        assert_eq!(b.pick(9.0, &BITRATES_MBPS, None), 50.0);
        // At 5 s: 5 + 95*(1/7) = 18.6 → 10.
        assert_eq!(b.pick(5.0, &BITRATES_MBPS, None), 10.0);
    }

    #[test]
    fn hysteresis_holds_rate_inside_band() {
        let b = Bba::default();
        // At buffer 6 s the ramp is 32.1; a flow already at 50 holds 50
        // (the rung below, 10, has not been crossed).
        assert_eq!(b.pick(6.0, &BITRATES_MBPS, Some(50.0)), 50.0);
        // ...but a flow at 10 does not jump up (ramp < next rung 50).
        assert_eq!(b.pick(6.0, &BITRATES_MBPS, Some(10.0)), 10.0);
        // Once the ramp crosses 50 (buffer 8 s -> 59.3), the flow jumps.
        assert_eq!(b.pick(8.0, &BITRATES_MBPS, Some(10.0)), 50.0);
        // Once the ramp falls below 10 (buffer 4.2 s -> 7.7), step down.
        assert_eq!(b.pick(4.2, &BITRATES_MBPS, Some(50.0)), 5.0);
    }

    #[test]
    fn no_ping_pong_at_constant_buffer() {
        let b = Bba::default();
        let mut rate = b.pick(7.0, &BITRATES_MBPS, None);
        for _ in 0..20 {
            let next = b.pick(7.0, &BITRATES_MBPS, Some(rate));
            assert_eq!(next, rate, "rate oscillated");
            rate = next;
        }
    }

    #[test]
    #[should_panic(expected = "ladder")]
    fn empty_ladder_panics() {
        Bba::default().pick(10.0, &[], None);
    }
}
