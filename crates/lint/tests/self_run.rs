//! Workspace self-run: the whole repo must lint clean modulo the
//! checked-in baseline. This is the same gate `ci.sh` runs via
//! `cargo run -p wheels-lint -- --baseline lint-baseline.json`; having
//! it inside `cargo test` means a re-entering `partial_cmp` sort, a
//! `HashMap` iteration, or a fresh panic site in the campaign tree
//! fails the ordinary test suite too, with the offending file:line in
//! the assertion message.

use std::path::PathBuf;

use wheels_lint::{apply_baseline, baseline, lint_paths, LintConfig};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

fn workspace_config(root: &PathBuf) -> LintConfig {
    LintConfig::load(root).expect("workspace lint config parses")
}

#[test]
fn workspace_has_zero_findings_outside_baseline() {
    let root = workspace_root();
    let cfg = workspace_config(&root);
    let paths: Vec<PathBuf> = ["crates", "src", "examples", "tests"]
        .iter()
        .map(|d| root.join(d))
        .filter(|p| p.exists())
        .collect();
    assert!(!paths.is_empty(), "workspace dirs missing under {root:?}");
    let (findings, files) =
        lint_paths(&paths, Some(&root), &cfg).expect("workspace readable");
    assert!(files > 50, "walker only saw {files} files — wrong root?");

    let baseline_path = root.join("lint-baseline.json");
    let entries = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse_baseline(&text).expect("baseline parses"),
        Err(_) => Vec::new(),
    };
    let outcome = apply_baseline(&findings, &entries);
    let fresh: Vec<String> = outcome.fresh.iter().map(|f| f.to_string()).collect();
    assert!(
        fresh.is_empty(),
        "determinism lint violations not in lint-baseline.json:\n{}",
        fresh.join("\n")
    );
    let stale: Vec<String> = outcome
        .stale
        .iter()
        .map(|e| format!("{} {} ({})", e.fingerprint, e.file, e.rule))
        .collect();
    assert!(
        stale.is_empty(),
        "stale lint-baseline.json entries — the finding no longer fires, \
         remove them (ratchet down):\n{}",
        stale.join("\n")
    );
}

#[test]
fn baseline_entries_only_cover_the_panic_surface_rule() {
    // The ratchet exists to burn down pre-existing D7 debt; any other
    // rule must be fixed or suppressed at the site, never baselined.
    let root = workspace_root();
    let baseline_path = root.join("lint-baseline.json");
    let entries = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse_baseline(&text).expect("baseline parses"),
        Err(_) => return, // no baseline checked in: nothing to police
    };
    for e in &entries {
        assert_eq!(
            e.rule, "D7",
            "baseline entry {} in {} covers {} — only D7 debt may be baselined",
            e.fingerprint, e.file, e.rule
        );
    }
}

#[test]
fn workspace_suppressions_all_carry_reasons() {
    // Every suppressed finding must have a nonempty reason (the parser
    // enforces this; the test documents the invariant over real data).
    let root = workspace_root();
    let cfg = workspace_config(&root);
    let (findings, _) =
        lint_paths(&[root.join("crates")], Some(&root), &cfg).expect("readable");
    for f in findings.iter().filter(|f| !f.is_unsuppressed()) {
        assert!(
            !f.suppressed.as_deref().unwrap_or("").is_empty(),
            "empty suppression reason at {f}"
        );
    }
}
