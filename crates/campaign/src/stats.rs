//! Table 1: driving dataset statistics.

use wheels_geo::route::Route;
use wheels_ran::operator::Operator;
use wheels_xcal::database::{ConsolidatedDb, TestKind};

/// The dataset statistics of Table 1, computed from a campaign run.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The operator panel the per-operator columns refer to.
    pub ops: Vec<Operator>,
    /// Total geographic distance, km.
    pub distance_km: f64,
    /// States / major cities / counties-equivalent (we report waypoint
    /// towns) crossed.
    pub states: usize,
    /// Major cities on the route.
    pub major_cities: usize,
    /// Timezones crossed.
    pub timezones: usize,
    /// Unique cells connected per operator, [`Table1::ops`] order.
    pub unique_cells: Vec<usize>,
    /// Handovers per operator — from the passive loggers, like the
    /// paper's Table 1.
    pub handovers: Vec<usize>,
    /// Total data received across tests, GB.
    pub rx_gb: f64,
    /// Total data transmitted across tests, GB.
    pub tx_gb: f64,
    /// Cumulative experiment runtime per operator, minutes.
    pub runtime_min: Vec<f64>,
}

impl Table1 {
    /// Compute the table for the paper's three-operator panel.
    pub fn compute(db: &ConsolidatedDb, route: &Route) -> Self {
        Self::compute_for(db, route, &Operator::ALL)
    }

    /// Compute the table for an explicit operator panel. Geography counts
    /// (states, major cities, timezones) come from the route's own
    /// waypoints, so scenario routes report their own numbers.
    pub fn compute_for(db: &ConsolidatedDb, route: &Route, ops: &[Operator]) -> Self {
        let unique_cells: Vec<usize> = ops.iter().map(|&op| db.unique_cells(op)).collect();
        let handovers: Vec<usize> = ops
            .iter()
            .map(|&op| {
                db.passive_for(op)
                    .map(|p| p.cell_changes())
                    .unwrap_or_else(|| db.handover_count(op))
            })
            .collect();
        let runtime_min: Vec<f64> = ops
            .iter()
            .map(|&op| {
                db.records
                    .iter()
                    .filter(|r| r.op == op)
                    .map(|r| r.duration_s)
                    .sum::<f64>()
                    / 60.0
            })
            .collect();
        let mut rx_bytes = 0f64;
        let mut tx_bytes = 0f64;
        for r in &db.records {
            let bytes: f64 = r
                .tput_samples()
                .map(|mbps| mbps * 1e6 / 8.0 * 0.5)
                .sum();
            match r.kind {
                TestKind::ThroughputDl => rx_bytes += bytes,
                TestKind::ThroughputUl => tx_bytes += bytes,
                TestKind::AppVideo => {
                    if let Some(app) = &r.app {
                        if let Some(b) = app.avg_bitrate_mbps {
                            rx_bytes += b as f64 * 1e6 / 8.0 * r.duration_s;
                        }
                    }
                }
                TestKind::AppGaming => {
                    if let Some(app) = &r.app {
                        if let Some(b) = app.send_bitrate_mbps {
                            rx_bytes += b as f64 * 1e6 / 8.0 * r.duration_s;
                        }
                    }
                }
                TestKind::AppAr | TestKind::AppCav => {
                    if let Some(app) = &r.app {
                        if let (Some(fps), Some(compressed)) = (app.offload_fps, app.compressed) {
                            let cfg = if r.kind == TestKind::AppAr {
                                wheels_apps::AR_CONFIG
                            } else {
                                wheels_apps::CAV_CONFIG
                            };
                            tx_bytes +=
                                fps as f64 * r.duration_s * cfg.frame_bytes(compressed);
                        }
                    }
                }
                TestKind::Rtt => {}
            }
        }
        let mut states: Vec<&str> = route.cities().iter().map(|c| c.state).collect();
        states.sort_unstable();
        states.dedup();
        let mut tzs: Vec<_> = route.cities().iter().map(|c| c.timezone()).collect();
        tzs.sort();
        tzs.dedup();
        Table1 {
            ops: ops.to_vec(),
            distance_km: route.total_m() / 1_000.0,
            states: states.len(),
            major_cities: route.cities().iter().filter(|c| c.major).count(),
            timezones: tzs.len(),
            unique_cells,
            handovers,
            rx_gb: rx_bytes / 1e9,
            tx_gb: tx_bytes / 1e9,
            runtime_min,
        }
    }

    /// Join one per-operator column as `"v0 (C0), v1 (C1), ..."` using
    /// the operators' single-letter codes.
    fn per_op_row<T: std::fmt::Display>(&self, values: impl Iterator<Item = T>) -> String {
        values
            .zip(&self.ops)
            .map(|(v, op)| format!("{} ({})", v, op.code()))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Render in the paper's layout (operator columns follow the panel).
    pub fn render(&self) -> String {
        let operators = self
            .ops
            .iter()
            .map(|op| format!("{} ({})", op.label(), op.code()))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "Total geographical distance travelled | {:.0} km\n\
             States/major cities traveled          | {}/{}\n\
             Timezones traveled                    | {}\n\
             Operators                             | {}\n\
             # of unique cells connected           | {}\n\
             # of handovers                        | {}\n\
             Total cellular data used              | {:.1} GB (Rx), {:.1} GB (Tx)\n\
             Cumulative experiment runtime         | {}\n",
            self.distance_km,
            self.states,
            self.major_cities,
            self.timezones,
            operators,
            self.per_op_row(self.unique_cells.iter()),
            self.per_op_row(self.handovers.iter()),
            self.rx_gb,
            self.tx_gb,
            self.per_op_row(self.runtime_min.iter().map(|m| format!("{m:.0} min"))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::runner::Campaign;

    #[test]
    fn table1_from_tiny_campaign() {
        let mut cfg = CampaignConfig::quick_network_only(5);
        cfg.scale = 0.01;
        cfg.run_static = false;
        cfg.passive_tick_s = 20.0;
        let campaign = Campaign::new(cfg);
        let db = campaign.run();
        let t1 = Table1::compute(&db, campaign.plan().route());
        assert!((t1.distance_km - 5_711.0).abs() < 2.0);
        assert_eq!(t1.major_cities, 10);
        assert_eq!(t1.timezones, 4);
        assert!(t1.rx_gb > 0.0);
        assert!(t1.tx_gb > 0.0);
        assert!(t1.unique_cells.iter().all(|&c| c > 0));
        let rendered = t1.render();
        assert!(rendered.contains("5711 km"));
        assert!(rendered.contains("Verizon (V)"));
    }
}
