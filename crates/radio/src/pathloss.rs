//! Log-distance path loss with band- and clutter-dependent exponents.
//!
//! `PL(d) = FSPL(1 m) + 10·n·log10(d) + clutter`, the standard log-distance
//! model. The exponent `n` grows with clutter (urban canyons) and is higher
//! for mmWave beyond its LOS range because blockage dominates.

use std::sync::OnceLock;

use crate::band::Band;

/// Constants for the cheap `log10` lower bound: a rounded-down `log10(2)`
/// and a 64-entry rounded-down table of `log10(1 + k/64)`.
fn log10_lb_consts() -> &'static (f64, [f64; 64]) {
    static CONSTS: OnceLock<(f64, [f64; 64])> = OnceLock::new();
    CONSTS.get_or_init(|| {
        // The 1e-12 nudges make both pieces strict lower bounds regardless
        // of libm's rounding direction (its error is ~1 ulp ≈ 1e-16 here).
        let log10_2_lo = 2f64.log10() - 1e-12;
        let mut table = [0.0; 64];
        for (k, t) in table.iter_mut().enumerate() {
            *t = (1.0 + k as f64 / 64.0).log10() - 1e-12;
        }
        (log10_2_lo, table)
    })
}

/// A log-distance path-loss model for one band in one clutter environment.
#[derive(Debug, Clone, Copy)]
pub struct PathLossModel {
    /// Path-loss exponent.
    exponent: f64,
    /// Additional fixed clutter loss, dB.
    clutter_db: f64,
    /// FSPL at the 1 m reference, dB — cached so the per-cell hot path
    /// does not recompute the carrier log10 on every lookup.
    fspl_1m_db: f64,
    /// `10·n`, the left prefix of the log-distance term, cached for the
    /// same reason (left-associative, so the product is bit-identical).
    exp10: f64,
}

impl PathLossModel {
    /// Build a model for `band` with a clutter factor in `[0, 1]`
    /// (0 = open rural, 1 = dense urban core).
    pub fn new(band: Band, clutter: f64) -> Self {
        let clutter = clutter.clamp(0.0, 1.0);
        // Exponent 2.1 (near free space, rural low band) to 3.6 (urban).
        // mmWave gets an extra blockage penalty in clutter.
        let base_exp = 2.1 + 1.5 * clutter;
        let exponent = if band.is_mmwave() {
            base_exp + 0.5 * clutter
        } else {
            base_exp
        };
        let clutter_db = if band.is_mmwave() {
            6.0 * clutter
        } else {
            3.0 * clutter
        };
        PathLossModel {
            exponent,
            clutter_db,
            fspl_1m_db: band.fspl_1m_db(),
            exp10: 10.0 * exponent,
        }
    }

    /// Path loss at distance `d_m` meters, dB. Distances below 1 m clamp to
    /// the 1 m reference.
    pub fn loss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(1.0);
        self.fspl_1m_db + self.exp10 * d.log10() + self.clutter_db
    }

    /// The path-loss exponent in use.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Sound lower bound on `loss_db(d)` for `d = sqrt(d2_m2)`, computed
    /// without `sqrt` or `log10` (exponent bits + a mantissa table).
    ///
    /// Guarantee: the returned value is strictly below what
    /// [`PathLossModel::loss_db`] computes for that distance, including
    /// every floating-point rounding on either side (a 1e-6 dB margin
    /// absorbs them; the structural slack from the 6-bit mantissa table is
    /// ≤ `0.0034·exp10` ≈ 0.15 dB). Candidate scans use it to skip the
    /// exact evaluation for cells that provably cannot reach the top two.
    ///
    /// Returns `f64::NEG_INFINITY` (a vacuous bound) when `d² < 4`, where
    /// the exponent decomposition would need the sub-1 m clamp handled.
    pub fn loss_lb_db(&self, d2_m2: f64) -> f64 {
        if !(d2_m2 >= 4.0) {
            return f64::NEG_INFINITY;
        }
        let (log10_2_lo, table) = log10_lb_consts();
        let bits = d2_m2.to_bits();
        let e = ((bits >> 52) & 0x7FF) as i64 - 1023;
        let k = ((bits >> 46) & 0x3F) as usize;
        // log10(d) = log10(d²)/2, bounded below piece by piece.
        let lb_log10_d = 0.5 * ((e as f64) * log10_2_lo + table[k]);
        self.fspl_1m_db + self.exp10 * lb_log10_d + self.clutter_db - 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_monotone_in_distance() {
        let m = PathLossModel::new(Band::new(1_900.0), 0.5);
        let mut last = 0.0;
        for d in [1.0, 10.0, 100.0, 1_000.0, 10_000.0] {
            let l = m.loss_db(d);
            assert!(l > last);
            last = l;
        }
    }

    #[test]
    fn clamps_below_reference() {
        let m = PathLossModel::new(Band::new(1_900.0), 0.0);
        assert_eq!(m.loss_db(0.1), m.loss_db(1.0));
    }

    #[test]
    fn mmwave_lossier_than_midband_at_same_distance() {
        let mm = PathLossModel::new(Band::new(28_000.0), 0.8);
        let mid = PathLossModel::new(Band::new(2_600.0), 0.8);
        assert!(mm.loss_db(200.0) > mid.loss_db(200.0) + 15.0);
    }

    #[test]
    fn urban_lossier_than_rural() {
        let b = Band::new(1_900.0);
        let urban = PathLossModel::new(b, 1.0);
        let rural = PathLossModel::new(b, 0.0);
        assert!(urban.loss_db(2_000.0) > rural.loss_db(2_000.0) + 10.0);
    }

    #[test]
    fn loss_lb_is_a_sound_tight_bound() {
        // The bound must sit strictly below the exact loss everywhere, and
        // within the documented ~0.16 dB structural slack.
        for clutter in [0.0, 0.3, 0.7, 1.0] {
            for band in [Band::new(700.0), Band::new(2_600.0), Band::new(28_000.0)] {
                let m = PathLossModel::new(band, clutter);
                let mut d = 2.0;
                while d < 40_000.0 {
                    let exact = m.loss_db(d);
                    let lb = m.loss_lb_db(d * d);
                    assert!(lb < exact, "lb {lb} !< exact {exact} at d={d}");
                    assert!(exact - lb < 0.2, "slack {} at d={d}", exact - lb);
                    d *= 1.0173;
                }
            }
        }
    }

    #[test]
    fn loss_lb_vacuous_below_two_meters() {
        let m = PathLossModel::new(Band::new(1_900.0), 0.5);
        assert_eq!(m.loss_lb_db(3.9), f64::NEG_INFINITY);
        assert_eq!(m.loss_lb_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn plausible_macro_cell_budget() {
        // A 1.9 GHz macro cell at 3 km in suburban clutter. RSRP is a
        // per-resource-element quantity: ~63 dBm channel EIRP spread over
        // ~1200 subcarriers is ~32 dBm per RE. That should land RSRP in the
        // -90..-115 dBm range typical of drive-test data.
        let m = PathLossModel::new(Band::new(1_900.0), 0.4);
        let rsrp = 32.0 - m.loss_db(3_000.0);
        assert!((-120.0..-85.0).contains(&rsrp), "rsrp = {rsrp}");
    }
}
