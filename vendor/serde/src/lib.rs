//! Offline stand-in for `serde` (+ re-exported derive macros).
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the serialization surface it uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, and `serde_json`'s
//! `to_string` / `to_string_pretty` / `from_str`.
//!
//! Unlike real serde there is no visitor architecture: [`Serialize`]
//! lowers a value into a JSON [`Value`] tree and [`Deserialize`] lifts it
//! back. Field order is the declaration order (deterministic — the
//! campaign's byte-identical-export guarantee rests on this), enums use
//! serde's externally-tagged convention, and parsed numbers keep their raw
//! token so float round-trips are exact in both directions.

#![forbid(unsafe_code)]

pub mod ser;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, remembering how it was produced.
///
/// Values built in-process keep their native Rust type so the writer can
/// use that type's shortest round-trip `Display`; values produced by the
/// parser keep the raw token so re-serialization is byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Num {
    /// Built from an `f64`.
    F64(f64),
    /// Built from an `f32`.
    F32(f32),
    /// Built from an unsigned integer.
    U64(u64),
    /// Built from a signed integer.
    I64(i64),
    /// Parsed from text; the raw JSON token.
    Raw(String),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the JSON data model.
pub trait Serialize {
    /// The JSON value representing `self`.
    fn to_value(&self) -> Value;

    /// Stream `self` straight into a [`ser::JsonWriter`] with zero
    /// intermediate [`Value`] nodes. Byte-identical to writing
    /// [`to_value`](Serialize::to_value)'s tree; the derive macros and
    /// the primitive impls below override this with direct emission, and
    /// hand-written impls inherit the (correct, slower) tree fallback.
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        w.value(&self.to_value());
    }
}

/// Lift a value out of the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- serialize

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        (**self).stream(w)
    }
}

/// A [`Value`] serializes as itself (streamed without re-lowering).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        w.value(self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        w.bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        w.str(self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        w.str(self)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Num::F64(*self))
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        w.f64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Num::F32(*self))
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        w.f32(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Num::U64(*self as u64)) }
            fn stream(&self, w: &mut ser::JsonWriter<'_>) { w.u64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Num::I64(*self as i64)) }
            fn stream(&self, w: &mut ser::JsonWriter<'_>) { w.i64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
    fn stream(&self, w: &mut ser::JsonWriter<'_>) {
        match self {
            Some(v) => v.stream(w),
            None => w.null(),
        }
    }
}

macro_rules! ser_seq_stream {
    () => {
        fn stream(&self, w: &mut ser::JsonWriter<'_>) {
            w.begin_array();
            for item in self.iter() {
                w.elem();
                item.stream(w);
            }
            w.end_array();
        }
    };
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    ser_seq_stream!();
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    ser_seq_stream!();
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    ser_seq_stream!();
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
            fn stream(&self, w: &mut ser::JsonWriter<'_>) {
                w.begin_array();
                $( w.elem(); self.$n.stream(w); )+
                w.end_array();
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// -------------------------------------------------------------- deserialize

/// A [`Value`] deserializes as itself (what `from_str::<Value>` yields).
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_err("string", other)),
        }
    }
}

fn num_of(v: &Value, what: &str) -> Result<Num, Error> {
    match v {
        Value::Num(n) => Ok(n.clone()),
        other => Err(type_err(what, other)),
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match num_of(v, "f64")? {
            Num::F64(x) => Ok(x),
            Num::F32(x) => Ok(x as f64),
            Num::U64(x) => Ok(x as f64),
            Num::I64(x) => Ok(x as f64),
            Num::Raw(s) => s.parse().map_err(|_| Error::msg(format!("bad f64: {s}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match num_of(v, "f32")? {
            Num::F64(x) => Ok(x as f32),
            Num::F32(x) => Ok(x),
            Num::U64(x) => Ok(x as f32),
            Num::I64(x) => Ok(x as f32),
            // Parse the token directly as f32: correctly rounded, so the
            // shortest-f32 representation the writer emitted round-trips
            // exactly (no double rounding through f64).
            Num::Raw(s) => s.parse().map_err(|_| Error::msg(format!("bad f32: {s}"))),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match num_of(v, stringify!($t))? {
                    Num::U64(x) => x as i128,
                    Num::I64(x) => x as i128,
                    Num::F64(x) if x.fract() == 0.0 => x as i128,
                    Num::F32(x) if x.fract() == 0.0 => x as i128,
                    Num::Raw(s) => s
                        .parse::<i128>()
                        .map_err(|_| Error::msg(format!("bad integer: {s}")))?,
                    other => return Err(Error::msg(format!(
                        "expected {}, got non-integral {other:?}", stringify!($t)
                    ))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_err("array", other)),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(type_err(concat!("array of ", $len), other)),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

fn type_err(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Error::msg(format!("expected {expected}, got {kind}"))
}

/// Helpers used by the generated derive code. Not part of the public API
/// contract; the derive macros are versioned together with this crate.
pub mod de {
    use super::{Deserialize, Error, Value};

    /// Look up field `name` in an object value and deserialize it.
    /// Missing fields deserialize from `null` (so `Option` fields tolerate
    /// their absence, as with serde's default behaviour for `null`).
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Object(pairs) => {
                let slot = pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
                T::from_value(slot.unwrap_or(&Value::Null))
                    .map_err(|e| Error::msg(format!("field `{name}`: {}", e.0)))
            }
            other => Err(super::type_err("object", other)),
        }
    }

    /// Element `i` of an array value (tuple structs / tuple variants).
    pub fn elem<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
        match v {
            Value::Array(items) => {
                let slot = items
                    .get(i)
                    .ok_or_else(|| Error::msg(format!("missing tuple element {i}")))?;
                T::from_value(slot).map_err(|e| Error::msg(format!("element {i}: {}", e.0)))
            }
            other => Err(super::type_err("array", other)),
        }
    }

    /// Decode an externally-tagged enum value: a bare string is a unit
    /// variant; a single-key object is a data-carrying variant.
    pub fn variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Object(pairs) if pairs.len() == 1 => {
                Ok((pairs[0].0.as_str(), Some(&pairs[0].1)))
            }
            other => Err(super::type_err("enum (string or 1-key object)", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(
            Option::<f32>::from_value(&Option::<f32>::None.to_value()).unwrap(),
            None
        );
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (3u32, "x".to_string());
        assert_eq!(
            <(u32, String)>::from_value(&t.to_value()).unwrap(),
            (3, "x".to_string())
        );
    }

    #[test]
    fn raw_numbers_parse_directly() {
        let v = Value::Num(Num::Raw("0.1".into()));
        assert_eq!(f32::from_value(&v).unwrap(), 0.1f32);
        assert_eq!(f64::from_value(&v).unwrap(), 0.1f64);
        let i = Value::Num(Num::Raw("-42".into()));
        assert_eq!(i32::from_value(&i).unwrap(), -42);
    }
}
