//! Fig. 7: technology-wise throughput as a function of vehicle speed.
//!
//! The paper plots 500 ms samples against speed in three bins and finds
//! high mmWave points only at low speed, T-Mobile midband sustaining rates
//! at highway speed, and overall only a weak speed–throughput correlation.

use std::sync::Arc;

use wheels_geo::SpeedBin;
use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;
use wheels_ran::Direction;

use crate::ecdf::Ecdf;
use crate::index::{AnalysisIndex, EcdfQuery, QueryMetric, KPI_SPEED};
use crate::render::{cdf_header, cdf_row};

/// Per (operator, direction, speed bin, technology) sample distributions,
/// plus the raw speed–throughput correlation.
#[derive(Debug, Clone)]
pub struct SpeedTput {
    /// Distribution per cell of the breakdown.
    pub cells: Vec<(Operator, Direction, SpeedBin, Technology, Arc<Ecdf>)>,
    /// Pearson r between speed and throughput per (op, dir).
    pub speed_corr: Vec<(Operator, Direction, f64)>,
}

/// Compute Fig. 7 from memoized index queries. The speed–throughput
/// Pearson r is the same quantity Table 2 reports, so it comes straight
/// from the index's correlation table.
pub fn compute(ix: &AnalysisIndex<'_>) -> SpeedTput {
    let mut cells = Vec::new();
    let mut speed_corr = Vec::new();
    for &op in ix.ops() {
        for dir in Direction::BOTH {
            let metric = match dir {
                Direction::Downlink => QueryMetric::TputDl,
                Direction::Uplink => QueryMetric::TputUl,
            };
            speed_corr.push((op, dir, ix.kpi_correlations(op, dir)[KPI_SPEED]));
            for bin in SpeedBin::ALL {
                for tech in Technology::ALL {
                    let e = ix.query(EcdfQuery::metric(op, metric).bin(bin).tech(tech));
                    cells.push((op, dir, bin, tech, e));
                }
            }
        }
    }
    SpeedTput { cells, speed_corr }
}

impl SpeedTput {
    /// One cell of the breakdown.
    pub fn get(&self, op: Operator, dir: Direction, bin: SpeedBin, tech: Technology) -> &Ecdf {
        &self
            .cells
            .iter()
            .find(|(o, d, b, t, _)| *o == op && *d == dir && *b == bin && *t == tech)
            .expect("all combos computed")
            .4
    }

    /// All samples of one (op, dir, bin) pooled over techs.
    pub fn pooled_bin(&self, op: Operator, dir: Direction, bin: SpeedBin) -> Ecdf {
        Ecdf::new(
            self.cells
                .iter()
                .filter(|(o, d, b, _, _)| *o == op && *d == dir && *b == bin)
                .flat_map(|(_, _, _, _, e)| e.samples().iter().copied()),
        )
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 7 — throughput vs speed, per technology (Mbps)");
        out.push('\n');
        for (op, dir, bin, tech, e) in &self.cells {
            if e.is_empty() {
                continue;
            }
            out.push_str(&cdf_row(
                &format!(
                    "{} {} {} {}",
                    op.code(),
                    dir.label(),
                    bin.label(),
                    tech.label()
                ),
                e,
            ));
            out.push('\n');
        }
        out.push_str("speed-throughput Pearson r:\n");
        for (op, dir, r) in &self.speed_corr {
            out.push_str(&format!("  {} {}: r = {:+.2}\n", op.code(), dir.label(), r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn mmwave_samples_concentrate_at_low_speed() {
        let f = compute(small_ix());
        let low = f.get(
            Operator::Verizon,
            Direction::Downlink,
            SpeedBin::Low,
            Technology::Nr5gMmWave,
        );
        let high = f.get(
            Operator::Verizon,
            Direction::Downlink,
            SpeedBin::High,
            Technology::Nr5gMmWave,
        );
        assert!(
            low.len() > high.len(),
            "mmWave low {} vs high {}",
            low.len(),
            high.len()
        );
    }

    #[test]
    fn speed_correlation_is_weak_negative() {
        // Table 2: speed r between -0.10 and -0.37.
        let f = compute(small_ix());
        for (op, dir, r) in &f.speed_corr {
            assert!(
                (-0.6..0.25).contains(r),
                "{op} {}: r = {r}",
                dir.label()
            );
        }
    }

    #[test]
    fn high_speed_bin_has_most_samples() {
        // §5.5: "This [high-speed] region has the maximum number of points".
        let f = compute(small_ix());
        let mut low = 0;
        let mut high = 0;
        for op in Operator::ALL {
            for dir in Direction::BOTH {
                low += f.pooled_bin(op, dir, SpeedBin::Low).len();
                high += f.pooled_bin(op, dir, SpeedBin::High).len();
            }
        }
        assert!(
            high as f64 > low as f64 * 0.8,
            "high {high} vs low {low}"
        );
    }

    #[test]
    fn tmobile_sustains_rates_on_highway() {
        // §5.5: several 100s of Mbps at 60+ mph for T-Mobile DL.
        let f = compute(small_ix());
        let e = f.pooled_bin(Operator::TMobile, Direction::Downlink, SpeedBin::High);
        // At fixture scale the highway bin has only a few hundred
        // samples; the full-scale run shows several hundred Mbps.
        assert!(e.max() > 55.0, "max {}", e.max());
    }
}
