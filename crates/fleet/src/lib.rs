//! # wheels-fleet
//!
//! Streaming, mergeable summaries for fleet-scale subscriber populations.
//!
//! At 10^6 synthetic subscribers, per-subscriber sample storage is out of
//! the question — a campaign work unit instead folds its share of the
//! population into a fixed-size [`sketch::FleetUnitSketch`]: integer
//! counters, per-(cell × tech × hour) accumulators and a fixed-bin load
//! histogram. Every accumulator is a `u64`, with real-valued inputs
//! converted to fixed-point exactly once at observation time, so merging
//! two sketches is a plain integer addition: exactly associative,
//! commutative, and byte-reproducible at any worker count when folded in
//! the campaign's canonical unit order.
//!
//! The crate is dependency-free (serde only) so the RAN, campaign and
//! analysis layers can all speak the same sketch types without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sketch;

pub use sketch::{
    load_bin, CellAcc, CellHourObs, FleetUnitSketch, LoadHistogram, TechHourAcc, HOURS_PER_DAY,
    LOAD_BINS, MICRO, TECH_HOUR_SLOTS, TECH_SLOTS, UTIL_CLAMP,
};
