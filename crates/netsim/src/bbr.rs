//! A simplified BBR(v1) congestion controller.
//!
//! Included as an ablation companion to CUBIC/Reno: the paper measures the
//! nuttcp default (CUBIC) over a bufferbloated cellular bottleneck, and a
//! model-based controller is the obvious "what if" — BBR does not fill the
//! 0.8 s buffer, so its RTTs stay near the propagation floor while its
//! throughput stays at the estimated bottleneck rate.
//!
//! Simplifications vs RFC-draft BBR: windowed-max bandwidth and
//! windowed-min RTT filters, an 8-phase pacing-gain cycle approximated at
//! ack granularity, loss-blind (true to BBRv1), RTO resets the model.

use crate::tcp::{CongestionControl, INIT_CWND, MSS};

/// Bandwidth filter window, seconds.
const BW_WINDOW_S: f64 = 10.0;
/// RTT filter window, seconds.
const RTT_WINDOW_S: f64 = 10.0;
/// Pacing-gain cycle (PROBE_BW).
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// The simplified BBR state.
#[derive(Debug, Clone)]
pub struct Bbr {
    /// (time, bytes/s) bandwidth samples for the windowed max.
    bw_samples: Vec<(f64, f64)>,
    /// (time, rtt) samples for the windowed min.
    rtt_samples: Vec<(f64, f64)>,
    last_ack_s: Option<f64>,
    phase: usize,
    phase_start_s: f64,
    /// In startup until the bandwidth estimate plateaus.
    startup: bool,
    last_bw_bps: f64,
    plateau_rounds: u32,
    cwnd: f64,
}

impl Bbr {
    /// A fresh flow in startup.
    pub fn new() -> Self {
        Bbr {
            bw_samples: Vec::new(),
            rtt_samples: Vec::new(),
            last_ack_s: None,
            phase: 0,
            phase_start_s: 0.0,
            startup: true,
            last_bw_bps: 0.0,
            plateau_rounds: 0,
            cwnd: INIT_CWND,
        }
    }

    /// Current bottleneck-bandwidth estimate, bytes/s.
    pub fn btl_bw_bps(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|s| s.1)
            .fold(0.0, f64::max)
            .max(INIT_CWND / 0.1)
    }

    /// Current min-RTT estimate, seconds.
    pub fn rtt_min_s(&self) -> f64 {
        self.rtt_samples
            .iter()
            .map(|s| s.1)
            .fold(f64::INFINITY, f64::min)
            .clamp(1e-3, 10.0)
    }

    fn prune(&mut self, now_s: f64) {
        self.bw_samples.retain(|s| now_s - s.0 <= BW_WINDOW_S);
        self.rtt_samples.retain(|s| now_s - s.0 <= RTT_WINDOW_S);
    }
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Bbr {
    fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    fn on_ack(&mut self, now_s: f64, acked_bytes: f64, rtt_s: f64) {
        // Delivery-rate sample from inter-ack spacing.
        if let Some(last) = self.last_ack_s {
            let dt = (now_s - last).max(1e-6);
            self.bw_samples.push((now_s, acked_bytes / dt));
        }
        self.last_ack_s = Some(now_s);
        self.rtt_samples.push((now_s, rtt_s));
        self.prune(now_s);

        let bw = self.btl_bw_bps();
        let rtt_min = self.rtt_min_s();
        if self.startup {
            // Startup: exponential growth until the bw estimate stops
            // improving for 3 rounds.
            self.cwnd += acked_bytes;
            if bw < self.last_bw_bps * 1.25 {
                self.plateau_rounds += 1;
                if self.plateau_rounds >= 3 {
                    self.startup = false;
                    self.phase_start_s = now_s;
                }
            } else {
                self.plateau_rounds = 0;
                self.last_bw_bps = bw;
            }
            return;
        }
        // PROBE_BW: advance the gain cycle once per min-RTT.
        if now_s - self.phase_start_s >= rtt_min {
            self.phase = (self.phase + 1) % GAIN_CYCLE.len();
            self.phase_start_s = now_s;
        }
        let gain = GAIN_CYCLE[self.phase];
        self.cwnd = (gain * 2.0 * bw * rtt_min).max(4.0 * MSS);
    }

    fn on_loss(&mut self, _now_s: f64) {
        // BBRv1 is loss-blind by design.
    }

    fn on_timeout(&mut self, _now_s: f64) {
        // Model invalid: restart.
        self.bw_samples.clear();
        self.startup = true;
        self.plateau_rounds = 0;
        self.last_bw_bps = 0.0;
        self.cwnd = INIT_CWND;
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::FluidTcp;

    fn run(cap_mbps: f64, secs: f64) -> (f64, f64) {
        let mut flow = FluidTcp::new(Box::new(Bbr::new()));
        let dt = 0.02;
        let mut t = 0.0;
        let mut max_rtt: f64 = 0.0;
        while t < secs {
            let out = flow.tick(t, dt, cap_mbps, 0.05);
            max_rtt = max_rtt.max(out.rtt_s);
            t += dt;
        }
        (
            crate::bps_to_mbps(flow.total_delivered_bytes() / secs),
            max_rtt,
        )
    }

    #[test]
    fn fills_a_steady_link() {
        let (avg, _) = run(50.0, 30.0);
        assert!((38.0..50.5).contains(&avg), "{avg}");
    }

    #[test]
    fn keeps_queues_far_shallower_than_cubic() {
        let (_, bbr_rtt) = run(20.0, 30.0);
        // CUBIC fills the 0.8 s buffer; BBR must stay well below it.
        let mut cubic = FluidTcp::new(Box::new(crate::cubic::Cubic::new()));
        let mut cubic_rtt: f64 = 0.0;
        let mut t = 0.0;
        while t < 30.0 {
            cubic_rtt = cubic_rtt.max(cubic.tick(t, 0.02, 20.0, 0.05).rtt_s);
            t += 0.02;
        }
        assert!(
            bbr_rtt < cubic_rtt * 0.6,
            "bbr {bbr_rtt} vs cubic {cubic_rtt}"
        );
    }

    #[test]
    fn timeout_resets_model() {
        let mut b = Bbr::new();
        for i in 0..100 {
            b.on_ack(i as f64 * 0.05, 50_000.0, 0.05);
        }
        assert!(!b.startup);
        b.on_timeout(5.0);
        assert!(b.startup);
        assert_eq!(b.cwnd_bytes(), INIT_CWND);
    }

    #[test]
    fn loss_blind() {
        let mut b = Bbr::new();
        for i in 0..100 {
            b.on_ack(i as f64 * 0.05, 50_000.0, 0.05);
        }
        let before = b.cwnd_bytes();
        b.on_loss(5.0);
        assert_eq!(b.cwnd_bytes(), before);
    }

    #[test]
    fn estimates_track_the_link() {
        let mut flow = FluidTcp::new(Box::new(Bbr::new()));
        let mut t = 0.0;
        while t < 20.0 {
            flow.tick(t, 0.02, 40.0, 0.06);
            t += 0.02;
        }
        // Smoke: delivered roughly matches 40 Mbps after startup.
        let avg = crate::bps_to_mbps(flow.total_delivered_bytes() / 20.0);
        assert!(avg > 28.0, "{avg}");
    }
}
