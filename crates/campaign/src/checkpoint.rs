//! Durable shard checkpoints and atomic output writes.
//!
//! Long campaigns die for boring reasons — OOM kills, disk hiccups,
//! impatient operators — and before this module a death threw away every
//! completed `(operator, day)` shard and could leave a half-written
//! export on disk. Crowd-sourced measurement fleets (AmiGos, the
//! "What is LTE actually used for?" pipeline) survive unreliable runners
//! with exactly two disciplines, both implemented here:
//!
//! 1. **Checkpoint every completed unit durably.** The supervised
//!    executor appends one self-describing record per finished work unit
//!    to `<dir>/checkpoint.log`: a fixed 72-byte header (magic, world
//!    hash, seed, scale bits, unit key, payload length, FNV-1a digest)
//!    followed by the JSON-encoded [`UnitCheckpoint`]. Each record is
//!    fsynced before the unit counts as committed, so a crash can tear at
//!    most the record being written — and a torn or bit-rotted record is
//!    detected by its digest, dropped, and simply recomputed on resume.
//! 2. **Never write an output in place.** [`atomic_write`] stages bytes
//!    in a temp file in the destination directory, fsyncs, and renames —
//!    readers see either the old bytes or the new bytes, never a torn
//!    file. Every export the workspace produces routes through it
//!    (enforced by lint rule D6).
//!
//! Resume ([`LoadedCheckpoints::load`] + `repro --resume`) restores every
//! valid record whose key matches the run, recomputes the rest, and —
//! because every unit's output is a pure function of `(config, unit)` —
//! merges into a final export **byte-identical** to an uninterrupted run.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::ops::Range;
use std::path::Path;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use wheels_fleet::FleetUnitSketch;
use wheels_ran::operator::Operator;
use wheels_xcal::database::TestRecord;
use wheels_xcal::handover_logger::PassiveLogger;

use crate::config::CampaignConfig;
use crate::executor::{Shard, UnitOutcome, WorkUnit};
use crate::integrity::UnitReport;
use crate::scenario::ScenarioSpec;

/// Record-header magic: `WHL_CKP1` as a big-endian word, so a hexdump of
/// the log starts with something legible.
pub const MAGIC: u64 = 0x57484C5F_434B5031;

/// Header length: 9 little-endian `u64` words (magic, world hash, seed,
/// scale bits, 3 unit-key words, payload length, payload digest).
pub const HEADER_LEN: usize = 72;

/// The checkpoint log's file name inside the checkpoint directory.
pub const LOG_NAME: &str = "checkpoint.log";

/// FNV-1a over `bytes`: dependency-free, stable across platforms, and
/// plenty for detecting torn writes and bit rot (this is an integrity
/// check against accidents, not an authentication tag).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write `bytes` to `path` atomically: stage in a temp file in the same
/// directory, flush + fsync, rename over the destination, then fsync the
/// directory so the rename itself survives a power cut. A reader (or a
/// crash) can observe the old contents or the new contents — never a
/// torn mixture, and never a half-written file under the final name.
///
/// The temp name is derived from the destination (`.<name>.tmp`), so two
/// processes atomically writing the same path race on the rename — last
/// writer wins with both outcomes intact, which is the POSIX contract.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with(path, |w| write_all_chunked(w, bytes))
}

/// `write_all` in bounded (4 MiB) chunks. A single hundreds-of-MB
/// `write(2)` can hit a pathological kernel slow path (observed ~25×
/// slower than chunked writes of the same bytes on tmpfs); bounded
/// chunks sidestep it at no cost for small writes.
pub fn write_all_chunked<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    for chunk in bytes.chunks(4 << 20) {
        w.write_all(chunk)?;
    }
    Ok(())
}

/// Streaming form of [`atomic_write`]: `emit` produces the file contents
/// incrementally into a buffered temp-file writer, so callers holding the
/// output as multiple fragments (or generating it on the fly) publish it
/// atomically without first concatenating a second whole-file buffer.
/// Same crash contract as [`atomic_write`]; if `emit` fails the temp file
/// is removed and the destination is untouched.
pub fn atomic_write_with<F>(path: &Path, emit: F) -> io::Result<()>
where
    F: FnOnce(&mut io::BufWriter<File>) -> io::Result<()>,
{
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write: path {path:?} has no file name"),
        )
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp = dir.join(format!(".{}.tmp", file_name.to_string_lossy()));
    let staged = (|| {
        // lint:allow(D6): this IS the atomic_write implementation — the
        // temp file is fsynced and renamed before anyone can see it
        let mut w = io::BufWriter::new(File::create(&tmp)?);
        emit(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()
    })();
    if let Err(e) = staged {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, path)?;
    if let Ok(d) = File::open(dir) {
        // Directory fsync is advisory (fails on some filesystems); the
        // rename above is already atomic for readers either way.
        let _ = d.sync_all();
    }
    Ok(())
}

/// The identity of a checkpoint stream: records from a different world,
/// seed, or scale are *foreign* and must never be restored into this run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointKey {
    /// Hash of everything that defines the world besides seed and scale:
    /// the scenario spec JSON plus the output-affecting config knobs.
    pub world_hash: u64,
    /// Campaign seed.
    pub seed: u64,
    /// `CampaignConfig::scale` bit pattern (exact, not rounded).
    pub scale_bits: u64,
}

/// Hash the output-defining identity of a campaign: the scenario spec's
/// canonical JSON plus every config knob (other than seed and scale,
/// which key the checkpoint stream separately) that changes the dataset.
pub fn world_hash(spec: &ScenarioSpec, cfg: &CampaignConfig) -> u64 {
    let json = serde_json::to_string(spec).unwrap_or_default();
    let mut h = fnv1a64(json.as_bytes());
    let mut absorb = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    absorb(u64::from(cfg.run_apps));
    absorb(u64::from(cfg.run_static));
    absorb(u64::from(cfg.run_passive));
    absorb(cfg.passive_tick_s.to_bits());
    absorb(cfg.snapshot_tick_s.to_bits());
    absorb(cfg.gap_s.to_bits());
    absorb(u64::from(cfg.max_retries));
    // The population override is part of the world: two absorbs so
    // `None` cannot collide with any `Some(n)`.
    absorb(u64::from(cfg.population.is_some()));
    absorb(cfg.population.unwrap_or(0));
    h = fnv1a64(cfg.fault_profile.label().as_bytes()) ^ h.rotate_left(17);
    h
}

/// One work unit's durable outcome: everything needed to reconstruct its
/// [`UnitOutcome`] without re-running it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnitCheckpoint {
    /// Whether the unit produced a shard (`false` = `Lost` with no data;
    /// distinguishes a lost unit from one that completed empty).
    pub has_shard: bool,
    /// The unit's integrity record.
    pub report: UnitReport,
    /// The shard's test records (empty when `has_shard` is false).
    pub records: Vec<TestRecord>,
    /// The shard's passive-logger output, if any.
    pub passive: Option<(Operator, PassiveLogger)>,
    /// The shard's fleet-load sketch (drive units of fleet-enabled
    /// campaigns). Optional in the wire format, so a payload without the
    /// field restores as `None`.
    pub fleet: Option<FleetUnitSketch>,
}

impl UnitCheckpoint {
    /// Capture a supervised outcome for the log.
    pub fn from_outcome(outcome: &UnitOutcome) -> Self {
        match &outcome.shard {
            Some(shard) => UnitCheckpoint {
                has_shard: true,
                report: outcome.report.clone(),
                records: shard.records.clone(),
                passive: shard.passive.clone(),
                fleet: shard.fleet.clone(),
            },
            None => UnitCheckpoint {
                has_shard: false,
                report: outcome.report.clone(),
                records: Vec::new(),
                passive: None,
                fleet: None,
            },
        }
    }

    /// Reconstruct the outcome this record captured.
    pub fn into_outcome(self) -> UnitOutcome {
        UnitOutcome {
            shard: self.has_shard.then(|| Shard {
                records: self.records,
                passive: self.passive,
                fleet: self.fleet,
            }),
            report: self.report,
        }
    }
}

/// Serialize one log record: header + JSON payload.
fn encode_record(key: CheckpointKey, words: [u64; 3], payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(HEADER_LEN + payload.len());
    let [unit_a, unit_b, unit_c] = words;
    for w in [
        MAGIC,
        key.world_hash,
        key.seed,
        key.scale_bits,
        unit_a,
        unit_b,
        unit_c,
        payload.len() as u64,
        fnv1a64(payload),
    ] {
        rec.extend_from_slice(&w.to_le_bytes());
    }
    rec.extend_from_slice(payload);
    rec
}

/// Append-only checkpoint writer for one run. `Sync`: executor workers
/// commit completed units concurrently; each record is written in one
/// locked `write_all` + fsync, so records never interleave and a unit
/// only counts as committed once its bytes are durable.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: Mutex<File>,
    key: CheckpointKey,
}

impl CheckpointWriter {
    /// Open (append) or create the log in `dir`. With `fresh` set, an
    /// existing log is truncated first — a non-resume run must not
    /// inherit records, even byte-valid ones, from a previous run.
    pub fn open(dir: &Path, key: CheckpointKey, fresh: bool) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(!fresh)
            .write(true)
            .truncate(fresh)
            .open(dir.join(LOG_NAME))?;
        Ok(CheckpointWriter {
            file: Mutex::new(file),
            key,
        })
    }

    /// The stream identity this writer stamps on every record.
    pub fn key(&self) -> CheckpointKey {
        self.key
    }

    /// Append one unit's outcome durably: the record is fully written
    /// and fsynced before this returns, so a crash after `commit` can
    /// never lose the unit.
    pub fn commit(&self, unit: &WorkUnit, outcome: &UnitOutcome) -> io::Result<()> {
        let payload = serde_json::to_string(&UnitCheckpoint::from_outcome(outcome))
            .map_err(|e| io::Error::other(format!("checkpoint serialization: {e}")))?;
        let rec = encode_record(self.key, unit.fault_words(), payload.as_bytes());
        let f = self.file.lock();
        (&*f).write_all(&rec)?;
        f.sync_data()?;
        Ok(())
    }
}

/// Frame the well-formed prefix of a checkpoint log: byte ranges of the
/// records whose headers parse and whose payloads fit. Digest and key
/// validity are *not* checked — this is the framing layer tests and
/// tooling use to cut a log at a record boundary.
pub fn record_spans(bytes: &[u8]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut pos = 0usize;
    while let Some([magic, .., payload_len, _digest]) = read_header(bytes, pos) {
        if magic != MAGIC {
            break;
        }
        let payload_len = payload_len as usize;
        let end = match pos.checked_add(HEADER_LEN + payload_len) {
            Some(e) if e <= bytes.len() => e,
            _ => break,
        };
        spans.push(pos..end);
        pos = end;
    }
    spans
}

/// Read the little-endian `u64` at `bytes[at..at + 8]`. Total: returns
/// `None` instead of panicking when fewer than eight bytes remain, so
/// the loader loops stay panic-free even if a length guard drifts.
fn le_word(bytes: &[u8], at: usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    let chunk: [u8; 8] = bytes.get(at..end)?.try_into().ok()?;
    Some(u64::from_le_bytes(chunk))
}

/// Read the nine-word record header starting at `pos`, or `None` when
/// fewer than `HEADER_LEN` bytes remain (crash tail).
fn read_header(bytes: &[u8], pos: usize) -> Option<[u64; 9]> {
    let mut hdr = [0u64; 9];
    for (i, h) in hdr.iter_mut().enumerate() {
        *h = le_word(bytes, pos.checked_add(8 * i)?)?;
    }
    Some(hdr)
}

/// The result of scanning a checkpoint log for one run's records.
#[derive(Debug, Default)]
pub struct LoadedCheckpoints {
    /// Valid records keyed by unit key words; duplicate commits of the
    /// same unit keep the last (they are byte-identical anyway — unit
    /// output is pure).
    pub units: Vec<([u64; 3], UnitCheckpoint)>,
    /// Records rejected as corrupt: torn header/payload, digest
    /// mismatch, or undecodable payload. Each is recomputed on resume.
    pub corrupt_records: usize,
    /// Byte-valid records stamped with a different world/seed/scale —
    /// ignored, never restored into this run.
    pub foreign_records: usize,
    /// Human-readable notes, one per rejected record, scan order.
    pub notes: Vec<String>,
    /// The surviving records' raw bytes, concatenated in unit-key order
    /// (see [`LoadedCheckpoints::compact_to`]).
    compacted: Vec<u8>,
}

impl LoadedCheckpoints {
    /// Scan `<dir>/checkpoint.log` and keep every record that (a) frames
    /// correctly, (b) passes its payload digest, (c) is stamped with
    /// `key`, and (d) decodes. A missing log is an empty load, not an
    /// error. Corruption is never fatal: a record with a broken digest
    /// is skipped using its length field, and a record too torn to frame
    /// (bad magic, truncated tail) ends the scan — everything after it
    /// is unreachable and will be recomputed.
    pub fn load(dir: &Path, key: CheckpointKey) -> io::Result<Self> {
        let mut out = LoadedCheckpoints::default();
        let path = dir.join(LOG_NAME);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        }
        // Last valid record per unit wins: (unit words) -> index in
        // `out.units` plus the record's byte range for compaction.
        let mut by_unit: std::collections::BTreeMap<[u64; 3], (usize, Range<usize>)> =
            std::collections::BTreeMap::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some([magic, world_hash, seed, scale_bits, unit_a, unit_b, unit_c, payload_len, digest]) =
                read_header(&bytes, pos)
            else {
                out.corrupt_records += 1;
                out.notes
                    .push(format!("truncated header at byte {pos} (crash tail)"));
                break;
            };
            if magic != MAGIC {
                out.corrupt_records += 1;
                out.notes
                    .push(format!("bad record magic at byte {pos}; dropping remainder"));
                break;
            }
            let rec_key = CheckpointKey {
                world_hash,
                seed,
                scale_bits,
            };
            let words = [unit_a, unit_b, unit_c];
            let payload_len = payload_len as usize;
            let body_at = pos + HEADER_LEN;
            let end = match body_at.checked_add(payload_len) {
                Some(e) if e <= bytes.len() => e,
                _ => {
                    out.corrupt_records += 1;
                    out.notes.push(format!(
                        "truncated record at byte {pos} ({payload_len} payload bytes promised)"
                    ));
                    break;
                }
            };
            let Some(payload) = bytes.get(body_at..end) else {
                out.corrupt_records += 1;
                out.notes.push(format!(
                    "truncated record at byte {pos} ({payload_len} payload bytes promised)"
                ));
                break;
            };
            if fnv1a64(payload) != digest {
                out.corrupt_records += 1;
                out.notes.push(format!(
                    "digest mismatch at byte {pos} (unit key {words:?}); record dropped"
                ));
                pos = end;
                continue;
            }
            if rec_key != key {
                out.foreign_records += 1;
                out.notes.push(format!(
                    "foreign record at byte {pos}: world/seed/scale {:#x}/{}/{:#x} \
                     does not match this run",
                    rec_key.world_hash, rec_key.seed, rec_key.scale_bits
                ));
                pos = end;
                continue;
            }
            let text = match std::str::from_utf8(payload) {
                Ok(t) => t,
                Err(_) => {
                    out.corrupt_records += 1;
                    out.notes
                        .push(format!("non-UTF-8 payload at byte {pos}; record dropped"));
                    pos = end;
                    continue;
                }
            };
            match serde_json::from_str::<UnitCheckpoint>(text) {
                Ok(ck) => match by_unit.get(&words) {
                    Some(&(idx, _)) => {
                        // idx was recorded alongside the push below, so
                        // `get_mut` always hits; total either way.
                        if let Some(unit) = out.units.get_mut(idx) {
                            unit.1 = ck;
                        }
                        by_unit.insert(words, (idx, pos..end));
                    }
                    None => {
                        by_unit.insert(words, (out.units.len(), pos..end));
                        out.units.push((words, ck));
                    }
                },
                Err(e) => {
                    out.corrupt_records += 1;
                    out.notes
                        .push(format!("undecodable payload at byte {pos}: {e}"));
                }
            }
            pos = end;
        }
        // Compacted image: surviving records only, unit-key order (the
        // BTreeMap gives a canonical order independent of commit order).
        for (_, (_, span)) in &by_unit {
            if let Some(record) = bytes.get(span.clone()) {
                out.compacted.extend_from_slice(record);
            }
        }
        Ok(out)
    }

    /// Rewrite the log as exactly the surviving records, atomically.
    /// Resume calls this before appending: it heals digest-failed and
    /// foreign records out of the file and — crucially — removes a torn
    /// tail, so records appended *after* a real SIGKILL stay reachable
    /// by the next scan instead of hiding behind unparseable bytes.
    pub fn compact_to(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        atomic_write(&dir.join(LOG_NAME), &self.compacted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity::UnitStatus;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        // CARGO_TARGET_TMPDIR only exists for integration tests; unit
        // tests get a scratch area under the workspace target dir.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/checkpoint-unit-tests")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn key() -> CheckpointKey {
        CheckpointKey {
            world_hash: 0xABCD,
            seed: 42,
            scale_bits: 1.0f64.to_bits(),
        }
    }

    fn lost_outcome(label: &str) -> UnitOutcome {
        let mut report = UnitReport::new(label.to_string());
        report.status = UnitStatus::Lost;
        report.attempts = 3;
        report.error = Some("server unreachable".into());
        UnitOutcome {
            shard: None,
            report,
        }
    }

    fn ok_outcome(label: &str) -> UnitOutcome {
        let mut report = UnitReport::new(label.to_string());
        report.status = UnitStatus::Ok;
        report.attempts = 1;
        UnitOutcome {
            shard: Some(Shard::default()),
            report,
        }
    }

    #[test]
    fn atomic_write_replaces_without_leftover_tmp() {
        let dir = tmp_dir("atomic_write");
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.json".to_string()], "no tmp residue");
    }

    #[test]
    fn atomic_write_rejects_pathless_target() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }

    #[test]
    fn fnv_digest_is_the_reference_vector() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn commit_then_load_roundtrips_outcomes() {
        let dir = tmp_dir("roundtrip");
        let w = CheckpointWriter::open(&dir, key(), true).unwrap();
        let u0 = WorkUnit::Drive {
            op: Operator::Verizon,
            day: 0,
        };
        let u1 = WorkUnit::Passive {
            op: Operator::Att,
        };
        w.commit(&u0, &ok_outcome("drive/Verizon/day0")).unwrap();
        w.commit(&u1, &lost_outcome("passive/AT&T")).unwrap();
        let load = LoadedCheckpoints::load(&dir, key()).unwrap();
        assert_eq!(load.units.len(), 2);
        assert_eq!(load.corrupt_records, 0);
        assert_eq!(load.foreign_records, 0);
        let restored: Vec<UnitOutcome> = load
            .units
            .into_iter()
            .map(|(_, ck)| ck.into_outcome())
            .collect();
        let lost = restored
            .iter()
            .find(|o| o.report.unit.starts_with("passive"))
            .unwrap();
        assert!(lost.shard.is_none(), "lost unit restores as shardless");
        assert_eq!(lost.report.status, UnitStatus::Lost);
        let ok = restored
            .iter()
            .find(|o| o.report.unit.starts_with("drive"))
            .unwrap();
        assert!(ok.shard.is_some(), "ok unit restores its (empty) shard");
    }

    #[test]
    fn wrong_key_records_are_foreign_not_restored() {
        let dir = tmp_dir("foreign");
        let w = CheckpointWriter::open(&dir, key(), true).unwrap();
        let unit = WorkUnit::Drive {
            op: Operator::TMobile,
            day: 1,
        };
        w.commit(&unit, &ok_outcome("drive/T-Mobile/day1")).unwrap();
        let other = CheckpointKey {
            seed: 43,
            ..key()
        };
        let load = LoadedCheckpoints::load(&dir, other).unwrap();
        assert!(load.units.is_empty());
        assert_eq!(load.foreign_records, 1);
        assert_eq!(load.corrupt_records, 0);
    }

    #[test]
    fn torn_tail_and_bitflip_are_rejected_separately() {
        let dir = tmp_dir("corrupt");
        let w = CheckpointWriter::open(&dir, key(), true).unwrap();
        for day in 0..3 {
            let unit = WorkUnit::Drive {
                op: Operator::Verizon,
                day,
            };
            w.commit(&unit, &ok_outcome(&format!("drive/Verizon/day{day}")))
                .unwrap();
        }
        let log = dir.join(LOG_NAME);
        let mut bytes = fs::read(&log).unwrap();
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 3);
        // Bit-flip one payload byte of record 1; truncate inside record 2.
        bytes[spans[1].start + HEADER_LEN + 4] ^= 0x40;
        bytes.truncate(spans[2].start + HEADER_LEN + 3);
        fs::write(&log, &bytes).unwrap();
        let load = LoadedCheckpoints::load(&dir, key()).unwrap();
        assert_eq!(load.units.len(), 1, "only record 0 survives");
        assert_eq!(load.corrupt_records, 2, "{:?}", load.notes);
        assert!(load.notes.iter().any(|n| n.contains("digest mismatch")));
        assert!(load.notes.iter().any(|n| n.contains("truncated")));
    }

    #[test]
    fn compact_heals_the_log() {
        let dir = tmp_dir("compact");
        let w = CheckpointWriter::open(&dir, key(), true).unwrap();
        for day in 0..2 {
            let unit = WorkUnit::Drive {
                op: Operator::Att,
                day,
            };
            w.commit(&unit, &ok_outcome(&format!("drive/AT&T/day{day}")))
                .unwrap();
        }
        let log = dir.join(LOG_NAME);
        let mut bytes = fs::read(&log).unwrap();
        let spans = record_spans(&bytes);
        bytes.truncate(spans[1].start + 10); // torn tail
        fs::write(&log, &bytes).unwrap();
        let load = LoadedCheckpoints::load(&dir, key()).unwrap();
        assert_eq!(load.units.len(), 1);
        load.compact_to(&dir).unwrap();
        let healed = LoadedCheckpoints::load(&dir, key()).unwrap();
        assert_eq!(healed.units.len(), 1);
        assert_eq!(healed.corrupt_records, 0, "compaction removed the tear");
    }

    #[test]
    fn fresh_open_truncates_resume_open_appends() {
        let dir = tmp_dir("fresh");
        let unit = WorkUnit::Passive {
            op: Operator::Verizon,
        };
        let w = CheckpointWriter::open(&dir, key(), true).unwrap();
        w.commit(&unit, &ok_outcome("passive/Verizon")).unwrap();
        drop(w);
        let w = CheckpointWriter::open(&dir, key(), false).unwrap();
        let unit2 = WorkUnit::Passive {
            op: Operator::Att,
        };
        w.commit(&unit2, &ok_outcome("passive/AT&T")).unwrap();
        drop(w);
        assert_eq!(
            LoadedCheckpoints::load(&dir, key()).unwrap().units.len(),
            2,
            "append keeps prior records"
        );
        let w = CheckpointWriter::open(&dir, key(), true).unwrap();
        drop(w);
        assert_eq!(
            LoadedCheckpoints::load(&dir, key()).unwrap().units.len(),
            0,
            "fresh truncates"
        );
    }

    #[test]
    fn world_hash_separates_configs_and_specs() {
        let spec = ScenarioSpec::paper();
        let cfg = CampaignConfig::quick(1);
        let base = world_hash(&spec, &cfg);
        let mut apps_off = cfg.clone();
        apps_off.run_apps = false;
        assert_ne!(base, world_hash(&spec, &apps_off));
        let mut gap = cfg.clone();
        gap.gap_s += 1.0;
        assert_ne!(base, world_hash(&spec, &gap));
        let mut seed_only = cfg.clone();
        seed_only.seed += 1;
        assert_eq!(
            base,
            world_hash(&spec, &seed_only),
            "seed keys the stream separately, not via the world hash"
        );
        let mut other_spec = spec.clone();
        other_spec.name = "other".into();
        assert_ne!(base, world_hash(&other_spec, &cfg));
    }
}
