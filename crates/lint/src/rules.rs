//! The determinism rule set, D1–D6.
//!
//! Rules are token matchers over lexed code (see [`crate::lexer`]): no
//! type inference, no name resolution beyond `use`-import tracking. The
//! matchers are deliberately *stricter* than the semantic property they
//! guard — e.g. D2 flags any `std::collections::HashMap` import, not
//! just iterated maps — because the escape hatch is cheap (an adjacent
//! `// lint:allow(Dn): <reason>` forces the author to write down *why*
//! the use is order-insensitive) while a missed re-entry of hash-order
//! or NaN nondeterminism costs a probabilistic CI failure months later.

use crate::Rule;

/// A rule match before suppression is applied.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// Per-line context the engine hands to the matchers.
pub struct FileContext<'a> {
    /// Stripped code, one entry per physical line.
    pub code: &'a [String],
    /// True for lines inside `#[cfg(test)]` modules (or test-only files).
    pub is_test: &'a [bool],
}

/// `true` if `hay[pos..]` starts a standalone token `tok` (not part of a
/// longer identifier on either side).
fn token_at(hay: &str, pos: usize, tok: &str) -> bool {
    if !hay[pos..].starts_with(tok) {
        return false;
    }
    let before_ok = pos == 0
        || !hay[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = pos + tok.len();
    let after_ok = !hay[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// All standalone-token occurrences of `tok` in `hay`.
fn token_positions(hay: &str, tok: &str) -> Vec<usize> {
    hay.match_indices(tok)
        .filter(|&(p, _)| token_at(hay, p, tok))
        .map(|(p, _)| p)
        .collect()
}

fn has_token(hay: &str, tok: &str) -> bool {
    !token_positions(hay, tok).is_empty()
}

/// `true` if `hay` contains path-expression `pat` (e.g. `fs::write`) as a
/// standalone token sequence: the char before may be `:` (a longer path,
/// `std::fs::write`) but not an identifier char (`dfs::write`), and the
/// char after must end the identifier (`fs::write_at` is a different fn).
fn has_path_token(hay: &str, pat: &str) -> bool {
    hay.match_indices(pat).any(|(p, _)| {
        let before_ok = p == 0
            || !hay[..p]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = p + pat.len();
        let after_ok = !hay[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        before_ok && after_ok
    })
}

/// Comparator-taking methods whose key function must be total (D1).
const ORDER_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
    "select_nth_unstable_by",
];

/// How far back (in stripped chars) a comparator closure may plausibly
/// start before the `partial_cmp` token. Closures here are small; 240
/// chars covers several wrapped lines without reaching the previous
/// statement in practice (and the paren-balance check below rejects
/// already-closed calls regardless of distance).
const D1_WINDOW: usize = 240;

/// Run every rule over one lexed file. `joined` is the stripped code
/// joined with `\n` (used for multi-line statement scans); `line_starts`
/// maps each line to its byte offset in `joined`.
pub fn run(ctx: &FileContext<'_>) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    let joined: String = ctx.code.join("\n");
    let line_of = |byte: usize| -> usize { joined[..byte].matches('\n').count() + 1 };

    // --- D1 / D5: partial_cmp hazards (apply everywhere, tests too:
    // a NaN panic in a test is a probabilistic CI failure). ------------
    for pos in token_positions(&joined, "partial_cmp") {
        // Skip trait definitions/impl headers: `fn partial_cmp(...)`.
        let before = joined[..pos].trim_end();
        if before.ends_with("fn") {
            continue;
        }
        let in_sink = {
            let start = pos.saturating_sub(D1_WINDOW);
            // The window may split a UTF-8 char; widen to a boundary.
            let start = (0..=start).rev().find(|&i| joined.is_char_boundary(i)).unwrap_or(0);
            let window = &joined[start..pos];
            ORDER_SINKS.iter().any(|sink| {
                token_positions(window, sink).into_iter().any(|p| {
                    // Inside the sink's argument list? Count parens from
                    // the sink's opening paren to the window end; if the
                    // call is still open, the partial_cmp is its key fn.
                    let mut depth = 0i32;
                    let mut seen_open = false;
                    for c in window[p + sink.len()..].chars() {
                        match c {
                            '(' => {
                                depth += 1;
                                seen_open = true;
                            }
                            ')' => depth -= 1,
                            _ => {}
                        }
                        if seen_open && depth == 0 {
                            return false;
                        }
                    }
                    seen_open && depth > 0
                })
            })
        };
        if in_sink {
            findings.push(RawFinding {
                line: line_of(pos),
                rule: Rule::D1,
                message: "comparator built on `partial_cmp` — NaN makes the order \
                          non-total; key floats with `f64::total_cmp` instead"
                    .into(),
            });
            continue; // D1 subsumes D5 on the same expression.
        }
        // D5: `partial_cmp(...).unwrap()` / `.expect(...)` chains.
        if let Some(rest) = chain_after_call(&joined, pos + "partial_cmp".len()) {
            let rest = rest.trim_start();
            // `.unwrap(`/`.expect(` exactly: `.unwrap_or(..)` is NaN-safe.
            if rest.starts_with(".unwrap(") || rest.starts_with(".expect(") {
                findings.push(RawFinding {
                    line: line_of(pos),
                    rule: Rule::D5,
                    message: "`partial_cmp(..).unwrap()/.expect(..)` panics on NaN; \
                              use `f64::total_cmp` or handle the `None`"
                        .into(),
                });
            }
        }
    }

    // --- Line-scoped rules D2/D3/D4 (non-test code only). -------------
    for (idx, code) in ctx.code.iter().enumerate() {
        let line = idx + 1;
        if ctx.is_test[idx] {
            continue;
        }

        // D2: std HashMap/HashSet anywhere in non-test code. The import
        // (or a fully-qualified path) is the single anchor per line; an
        // allow there covers the file's uses of that import.
        if code.contains("std::collections::") || code.contains("std :: collections") {
            for name in ["HashMap", "HashSet", "hash_map", "hash_set"] {
                if has_token(code, name) {
                    findings.push(RawFinding {
                        line,
                        rule: Rule::D2,
                        message: format!(
                            "`{name}` has nondeterministic iteration order; use \
                             `BTreeMap`/`BTreeSet` (or sort before iterating and \
                             justify with an allow)"
                        ),
                    });
                    break; // one D2 anchor per line
                }
            }
        }

        // D3: ambient nondeterminism — wall clocks, entropy, env vars.
        let d3: Option<&str> = if code.contains("Instant::now") {
            Some("`Instant::now` reads the wall clock")
        } else if has_token(code, "SystemTime") {
            Some("`SystemTime` reads the wall clock")
        } else if has_token(code, "UNIX_EPOCH") {
            Some("`UNIX_EPOCH` arithmetic reads the wall clock")
        } else if has_token(code, "thread_rng") {
            Some("`thread_rng` draws OS entropy")
        } else if has_token(code, "from_entropy") {
            Some("`from_entropy` draws OS entropy")
        } else if code.contains("env::var") {
            Some("environment reads vary between hosts/invocations")
        } else if code.contains("use std::time::") && has_token(code, "Instant") {
            Some("importing `std::time::Instant` invites wall-clock reads")
        } else {
            None
        };
        if let Some(why) = d3 {
            findings.push(RawFinding {
                line,
                rule: Rule::D3,
                message: format!(
                    "{why}; simulation state must be a pure function of \
                     (seed, scenario, scale)"
                ),
            });
        }

        // D4: bare RNG construction outside the derivation layer.
        for tok in ["seed_from_u64", "from_seed", "splitmix64"] {
            if has_token(code, tok) {
                findings.push(RawFinding {
                    line,
                    rule: Rule::D4,
                    message: format!(
                        "bare `{tok}` RNG construction; derive streams through \
                         `netsim::rng::{{derive_seed, stream}}` so every unit's \
                         randomness is keyed on (seed, domain, unit)"
                    ),
                });
                break;
            }
        }

        // D6: bare output writes. A process death between `create` and
        // the final flush leaves a torn file under its *final* name —
        // exactly what downstream `cmp` gates and resumed runs must
        // never observe.
        for pat in ["fs::write", "File::create"] {
            if has_path_token(code, pat) {
                findings.push(RawFinding {
                    line,
                    rule: Rule::D6,
                    message: format!(
                        "bare `{pat}` can leave a torn output if the process \
                         dies mid-write; route it through \
                         `wheels_campaign::checkpoint::atomic_write` \
                         (temp file + fsync + rename)"
                    ),
                });
                break;
            }
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule as u8));
    findings
}

/// If `joined[open..]` starts (after whitespace) with `(`, return the
/// text after its matching close paren.
fn chain_after_call(joined: &str, open: usize) -> Option<&str> {
    let rest = joined[open..].trim_start();
    if !rest.starts_with('(') {
        return None;
    }
    let mut depth = 0i32;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[i + 1..]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn lint(src: &str) -> Vec<RawFinding> {
        let lines = lexer::strip(src);
        let code: Vec<String> = lines.iter().map(|l| l.code.clone()).collect();
        let is_test = vec![false; code.len()];
        run(&FileContext {
            code: &code,
            is_test: &is_test,
        })
    }

    #[test]
    fn d1_fires_inside_sort_comparator() {
        let f = lint("v.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D1);
    }

    #[test]
    fn d1_fires_across_lines() {
        let f = lint("sites.sort_by(|a, b| {\n    a.od\n        .partial_cmp(&b.od)\n        .expect(\"finite\")\n});");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn d1_not_fooled_by_closed_earlier_sort() {
        // The sort call is already closed; this partial_cmp is a plain
        // D5 chain, not a comparator.
        let f = lint("v.sort_by_key(|x| x.0);\nlet c = a.partial_cmp(&b).unwrap();");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D5);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn d5_fires_on_bare_unwrap_chain() {
        let f = lint("if a.partial_cmp(&b).unwrap() == Ordering::Less {}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D5);
    }

    #[test]
    fn trait_impl_definition_is_exempt() {
        let f = lint("fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n    Some(self.cmp(other))\n}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_is_nan_safe() {
        let f = lint("let o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn safe_partial_cmp_handling_is_clean() {
        let f = lint("match a.partial_cmp(&b) { Some(o) => o, None => Ordering::Equal }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d2_fires_on_import_and_qualified_path() {
        let f = lint("use std::collections::HashMap;\nlet s = std::collections::HashSet::new();");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D2));
    }

    #[test]
    fn d2_ignores_btree_imports() {
        let f = lint("use std::collections::{BTreeMap, BTreeSet, VecDeque};");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d3_fires_on_clock_entropy_env() {
        let f = lint("let t = Instant::now();\nlet s = SystemTime::now();\nlet r = thread_rng();\nlet v = std::env::var(\"X\");");
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D3));
    }

    #[test]
    fn d3_ignores_env_args_and_duration() {
        let f = lint("let a: Vec<String> = std::env::args().collect();\nuse std::time::Duration;");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d4_fires_on_bare_seeding() {
        let f = lint("let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D4);
    }

    #[test]
    fn d4_token_is_word_bounded() {
        let f = lint("let x = my_seed_from_u64_table[0];");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d6_fires_on_bare_write_and_create() {
        let f = lint("std::fs::write(&path, json).expect(\"write\");\nlet f = File::create(&tmp)?;");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == Rule::D6));
    }

    #[test]
    fn d6_token_boundaries_hold() {
        // Different identifiers and different functions must not match.
        let f = lint("let a = dfs::write();\nlet b = fs::write_at();\nlet c = MyFile::create();");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d6_ignores_reads_and_dir_ops() {
        let f = lint("let s = fs::read_to_string(p)?;\nfs::create_dir_all(dir)?;\nlet f = File::open(p)?;");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d6_is_test_exempt() {
        let lines = lexer::strip("fs::write(&golden, bytes).unwrap();");
        let code: Vec<String> = lines.iter().map(|l| l.code.clone()).collect();
        let f = run(&FileContext {
            code: &code,
            is_test: &[true],
        });
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let f = lint("// Instant::now and HashMap discussion\nlet s = \"thread_rng seed_from_u64 std::collections::HashMap\";");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_lines_are_exempt_from_d2_d3_d4_but_not_d1() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\nv.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        let lines = lexer::strip(src);
        let code: Vec<String> = lines.iter().map(|l| l.code.clone()).collect();
        let is_test = vec![true; code.len()];
        let f = run(&FileContext {
            code: &code,
            is_test: &is_test,
        });
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::D1);
    }
}
