//! Text rendering helpers for figures and tables.

use crate::ecdf::Ecdf;

/// Render a row of an ECDF summary: label + p10/p25/p50/p75/p90/max.
pub fn cdf_row(label: &str, e: &Ecdf) -> String {
    if e.is_empty() {
        return format!("{label:<28} (no samples)");
    }
    let s = e.summary();
    format!(
        "{label:<28} n={:<6} p10={:>8.2} p25={:>8.2} p50={:>8.2} p75={:>8.2} p90={:>8.2} max={:>9.2}",
        e.len(),
        s[0],
        s[1],
        s[2],
        s[3],
        s[4],
        s[5]
    )
}

/// Header matching [`cdf_row`] columns.
pub fn cdf_header(title: &str) -> String {
    format!("{title}\n{}", "-".repeat(title.len().min(100)))
}

/// Render a percentage with one decimal.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// A fixed-width stacked-bar-style line for coverage shares.
pub fn share_bar(label: &str, shares: &[(&str, f64)]) -> String {
    let mut s = format!("{label:<12}");
    for (name, frac) in shares {
        s.push_str(&format!(" {name}={:>5.1}%", frac * 100.0));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_row_contains_stats() {
        let e = Ecdf::new((1..=100).map(|i| i as f64));
        let r = cdf_row("test", &e);
        assert!(r.contains("n=100"));
        assert!(r.contains("p50="));
    }

    #[test]
    fn empty_cdf_row() {
        assert!(cdf_row("x", &Ecdf::new([])).contains("no samples"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.685), "68.5%");
    }

    #[test]
    fn share_bar_lists_all() {
        let s = share_bar("Verizon", &[("LTE", 0.2), ("5G", 0.8)]);
        assert!(s.contains("LTE= 20.0%"));
        assert!(s.contains("5G= 80.0%"));
    }
}
