//! Table 3: comparison against Ookla SpeedTest's Q3 2022 US report.
//!
//! The Speedtest column is *published* data (the paper cites Ookla's
//! Q3 2022 US market report); the "Our Data" column is the median of our
//! per-test means (the same statistic as Fig. 9). §5.6 explains why the
//! two differ: SpeedTest users are mostly static, the app picks nearby
//! servers, and it opens multiple TCP connections to measure peak
//! bandwidth. [`simulate_speedtest_style`] reproduces that methodology
//! inside our simulation as a check that those three factors do push the
//! numbers in Ookla's direction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wheels_ran::operator::Operator;

/// Published medians from the Ookla Q3 2022 US report as cited in Table 3:
/// (downlink Mbps, uplink Mbps, RTT ms).
pub fn ookla_q3_2022(op: Operator) -> (f64, f64, f64) {
    match op {
        Operator::Verizon => (58.64, 8.30, 59.0),
        Operator::TMobile => (116.14, 10.91, 60.0),
        Operator::Att => (57.94, 7.55, 61.0),
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Operator.
    pub op: Operator,
    /// Our median per-test DL mean, Mbps.
    pub our_dl_mbps: f64,
    /// Published DL median, Mbps.
    pub speedtest_dl_mbps: f64,
    /// Our median per-test UL mean, Mbps.
    pub our_ul_mbps: f64,
    /// Published UL median, Mbps.
    pub speedtest_ul_mbps: f64,
    /// Our median per-test RTT mean, ms.
    pub our_rtt_ms: f64,
    /// Published RTT median, ms.
    pub speedtest_rtt_ms: f64,
}

/// A crude SpeedTest-style measurement over a sample of link capacities:
/// static user (no mobility penalty), nearby server (low RTT), multiple
/// parallel connections (captures peak rather than single-flow goodput).
///
/// Given the per-test single-flow means from the driving campaign, apply
/// the three methodology deltas and return the adjusted median — used by
/// the ablation bench to show the direction and rough magnitude of the
/// Ookla gap.
pub fn simulate_speedtest_style(driving_means_mbps: &[f64], seed: u64) -> f64 {
    // lint:allow(D4): ablation-only helper; callers pass a seed already
    // derived from the campaign seed
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut adjusted: Vec<f64> = driving_means_mbps
        .iter()
        .map(|&m| {
            // Static vs driving: remove the mobility penalty (deep fades,
            // handovers, suburbs) — calibrated against our own static
            // baselines being several times the driving medians.
            let static_gain = rng.gen_range(1.6..3.0);
            // Multi-connection peak vs single CUBIC flow.
            let multi_conn = rng.gen_range(1.1..1.5);
            m * static_gain * multi_conn
        })
        .collect();
    adjusted.sort_by(f64::total_cmp);
    // Total: `len / 2 < len` for any nonempty slice, and the empty case
    // falls through to the 0.0 default.
    adjusted.get(adjusted.len() / 2).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_values_match_table3() {
        assert_eq!(ookla_q3_2022(Operator::Verizon).0, 58.64);
        assert_eq!(ookla_q3_2022(Operator::TMobile).0, 116.14);
        assert_eq!(ookla_q3_2022(Operator::Att).2, 61.0);
    }

    #[test]
    fn speedtest_style_inflates_dl() {
        let driving = vec![20.0, 30.0, 40.0, 25.0, 35.0];
        let st = simulate_speedtest_style(&driving, 1);
        assert!(st > 40.0, "{st}");
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(simulate_speedtest_style(&[], 1), 0.0);
    }
}
