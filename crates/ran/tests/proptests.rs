//! Property tests for the RAN simulator.

use std::sync::Arc;
use std::sync::OnceLock;

use proptest::prelude::*;

use wheels_geo::region::RegionKind;
use wheels_geo::timezone::Timezone;
use wheels_geo::trip::DrivePlan;
use wheels_radio::band::Technology;
use wheels_ran::cell::CellDb;
use wheels_ran::config::link_config;
use wheels_ran::deployment::{build_cells, layer_plan};
use wheels_ran::handover::{draw_interruption_ms, A3Tracker, HandoverKind, A3_HYSTERESIS_DB};
use wheels_ran::load::{LoadParams, LoadProcess};
use wheels_ran::policy::{TrafficDemand, UpgradePolicy};
use wheels_ran::selection::sub_rng;
use wheels_ran::ue::{UeParams, UeRadio};
use wheels_ran::{CellId, Direction, Operator};

fn world() -> &'static (DrivePlan, [CellDb; 3]) {
    static W: OnceLock<(DrivePlan, [CellDb; 3])> = OnceLock::new();
    W.get_or_init(|| {
        let plan = DrivePlan::cross_country(3);
        let dbs = wheels_ran::deployment::build_all(plan.route(), 3);
        (plan, dbs)
    })
}

fn arb_op() -> impl Strategy<Value = Operator> {
    (0usize..3).prop_map(|i| Operator::ALL[i])
}

fn arb_demand() -> impl Strategy<Value = TrafficDemand> {
    prop_oneof![
        Just(TrafficDemand::Idle),
        Just(TrafficDemand::Ping),
        Just(TrafficDemand::Backlog(Direction::Downlink)),
        Just(TrafficDemand::Backlog(Direction::Uplink)),
    ]
}

proptest! {
    // Cell building and UE stepping are comparatively heavy; a few dozen
    // cases give the same coverage as proptest's default 256 here.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn layer_plans_always_valid(op in arb_op(), tech_i in 0usize..5, reg_i in 0usize..4, tz_i in 0usize..4) {
        let p = layer_plan(op, Technology::ALL[tech_i], RegionKind::ALL[reg_i], Timezone::ALL[tz_i]);
        prop_assert!((0.0..=1.0).contains(&p.coverage));
        prop_assert!(p.spacing_m > 0.0);
        prop_assert!(p.patch_len_m > 0.0);
    }

    #[test]
    fn deployment_deterministic(op in arb_op(), seed in 0u64..32) {
        let (plan, _) = world();
        let a = build_cells(plan.route(), op, seed, 0);
        let b = build_cells(plan.route(), op, seed, 0);
        prop_assert_eq!(a.len(), b.len());
        for tech in Technology::ALL {
            prop_assert_eq!(a.layer_len(tech), b.layer_len(tech));
        }
    }

    #[test]
    fn promotion_probabilities_valid(op in arb_op(), tech_i in 0usize..5, demand in arb_demand()) {
        let p = UpgradePolicy.promotion_prob(op, Technology::ALL[tech_i], demand);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn interruption_draws_positive_and_sane(op in arb_op(), seed in 0u64..1_000) {
        let mut rng = sub_rng(seed, 3);
        for _ in 0..32 {
            let d = draw_interruption_ms(op, &mut rng);
            prop_assert!(d > 0.0);
            prop_assert!(d < 2_000.0, "{d}");
        }
    }

    #[test]
    fn a3_never_fires_within_hysteresis(serving in -120.0f64..-60.0, steps in 1usize..60) {
        let mut a3 = A3Tracker::default();
        for i in 0..steps {
            let neighbor = serving + A3_HYSTERESIS_DB - 0.01;
            prop_assert!(!a3.observe(i as f64 * 0.1, serving, Some((CellId(9), neighbor))));
        }
    }

    #[test]
    fn handover_kind_classification_consistent(a in 0usize..5, b in 0usize..5) {
        let from = Technology::ALL[a];
        let to = Technology::ALL[b];
        let kind = HandoverKind::classify(from, to);
        match kind {
            HandoverKind::Horizontal4g => prop_assert!(!from.is_5g() && !to.is_5g()),
            HandoverKind::Horizontal5g => prop_assert!(from.is_5g() && to.is_5g()),
            HandoverKind::Up4gTo5g => prop_assert!(!from.is_5g() && to.is_5g()),
            HandoverKind::Down5gTo4g => prop_assert!(from.is_5g() && !to.is_5g()),
        }
    }

    #[test]
    fn load_share_always_in_bounds(seed in 0u64..500, steps in prop::collection::vec(0.1f64..60.0, 1..60)) {
        let mut p = LoadProcess::new(LoadParams::driving(), seed);
        let mut t = 0.0;
        for dt in steps {
            t += dt;
            let s = p.share_at(t);
            prop_assert!((0.005..=1.0).contains(&s));
        }
    }

    #[test]
    fn link_configs_physical(op in arb_op(), tech_i in 0usize..5, dl in any::<bool>()) {
        let dir = if dl { Direction::Downlink } else { Direction::Uplink };
        let c = link_config(op, Technology::ALL[tech_i], dir);
        prop_assert!(c.max_cc() >= 1);
        prop_assert!(c.bandwidth_mhz(1) > 0.0);
        prop_assert!(c.bandwidth_mhz(c.max_cc()) >= c.bandwidth_mhz(1));
        // SINR mapping is affine in RSRP.
        prop_assert!((c.sinr_db(-90.0) - c.sinr_db(-100.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ue_snapshots_always_sane(op in arb_op(), seed in 0u64..16, demand in arb_demand()) {
        let (plan, dbs) = world();
        let idx = Operator::ALL.iter().position(|&o| o == op).unwrap();
        let mut ue = UeRadio::new(op, Arc::new(dbs[idx].clone()), UeParams::default(), seed);
        let t0 = plan.days()[1].start_time_s as f64;
        for i in 0..200 {
            let t = t0 + i as f64 * 0.5;
            let s = ue.step(t, &plan.state_at(t), demand);
            prop_assert!(s.cap_dl_mbps >= 0.0 && s.cap_dl_mbps.is_finite());
            prop_assert!(s.cap_ul_mbps >= 0.0 && s.cap_ul_mbps.is_finite());
            prop_assert!((0.0..=0.9).contains(&s.bler));
            prop_assert!(s.ca_dl >= 1 && s.ca_ul >= 1);
            prop_assert!(s.rsrp_dbm < -20.0);
            if let Some(h) = s.handover {
                prop_assert!(h.duration_ms > 0.0);
                prop_assert!(h.from.0 != h.to.0 || h.from.1 != h.to.1);
            }
        }
    }
}
