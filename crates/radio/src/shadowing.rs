//! Spatially correlated log-normal shadowing (Gudmundson model).
//!
//! Drive-test RSRP wobbles smoothly as the vehicle moves: obstructions come
//! and go over tens to hundreds of meters. We model shadowing as a
//! first-order autoregressive Gaussian process over *odometer distance*:
//!
//! `S(d + Δ) = ρ·S(d) + sqrt(1 − ρ²)·σ·Z`, with `ρ = exp(−Δ/D_corr)`.
//!
//! Each (cell, UE) pair gets an independent field seeded from the pair's
//! identity, so the process is deterministic and can be evaluated lazily at
//! whatever odometer positions the simulation visits (monotonically).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A lazily evaluated AR(1) shadowing process over distance.
#[derive(Debug, Clone)]
pub struct ShadowingField {
    sigma_db: f64,
    corr_dist_m: f64,
    rng: SmallRng,
    last_d_m: f64,
    last_value_db: f64,
    initialized: bool,
}

impl ShadowingField {
    /// Create a field with std-dev `sigma_db` and decorrelation distance
    /// `corr_dist_m`, seeded deterministically.
    pub fn new(sigma_db: f64, corr_dist_m: f64, seed: u64) -> Self {
        assert!(sigma_db >= 0.0 && corr_dist_m > 0.0);
        ShadowingField {
            sigma_db,
            corr_dist_m,
            // lint:allow(D4): field seed is (UE seed ^ cell id) with the
            // UE seed netsim::rng-derived; the multiplier only decorrelates
            rng: SmallRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407)),
            last_d_m: 0.0,
            last_value_db: 0.0,
            initialized: false,
        }
    }

    /// Shadowing in dB at odometer distance `d_m`.
    ///
    /// Must be called with non-decreasing `d_m` (the vehicle only moves
    /// forward); a repeated distance returns the same value.
    pub fn at(&mut self, d_m: f64) -> f64 {
        if !self.initialized {
            self.initialized = true;
            self.last_d_m = d_m;
            self.last_value_db = self.gauss() * self.sigma_db;
            return self.last_value_db;
        }
        let delta = d_m - self.last_d_m;
        debug_assert!(delta >= -1e-9, "shadowing evaluated backwards: {delta}");
        if delta <= 0.0 {
            return self.last_value_db;
        }
        let rho = (-delta / self.corr_dist_m).exp();
        self.last_value_db =
            rho * self.last_value_db + (1.0 - rho * rho).sqrt() * self.sigma_db * self.gauss();
        self.last_d_m = d_m;
        self.last_value_db
    }

    /// Std-dev of the marginal distribution, dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// Approximate standard normal via sum of uniforms (Irwin–Hall with
    /// n = 12): cheap, deterministic, tails adequate for shadowing.
    fn gauss(&mut self) -> f64 {
        let mut s = 0.0;
        for _ in 0..12 {
            s += self.rng.gen::<f64>();
        }
        s - 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_statistics() {
        let mut f = ShadowingField::new(6.0, 50.0, 99);
        let mut vals = Vec::new();
        let mut d = 0.0;
        for _ in 0..20_000 {
            d += 100.0; // well beyond decorrelation -> near-iid samples
            vals.push(f.at(d));
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn nearby_samples_correlated() {
        let mut f = ShadowingField::new(6.0, 100.0, 7);
        let a = f.at(1_000.0);
        let b = f.at(1_001.0); // 1 m later: almost identical
        assert!((a - b).abs() < 2.0);
    }

    #[test]
    fn repeated_distance_stable() {
        let mut f = ShadowingField::new(6.0, 100.0, 7);
        let a = f.at(500.0);
        let b = f.at(500.0);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut f1 = ShadowingField::new(6.0, 100.0, 1234);
        let mut f2 = ShadowingField::new(6.0, 100.0, 1234);
        for d in [0.0, 10.0, 200.0, 5_000.0] {
            assert_eq!(f1.at(d), f2.at(d));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut f1 = ShadowingField::new(6.0, 100.0, 1);
        let mut f2 = ShadowingField::new(6.0, 100.0, 2);
        assert_ne!(f1.at(100.0), f2.at(100.0));
    }

    #[test]
    fn empirical_autocorrelation_decays() {
        // Samples 10 m apart should correlate far more than samples 500 m
        // apart, for a 100 m decorrelation distance.
        let corr_at = |step: f64| {
            let mut f = ShadowingField::new(6.0, 100.0, 42);
            let mut prev = f.at(0.0);
            let mut num = 0.0;
            let mut den = 0.0;
            let mut d = 0.0;
            for _ in 0..50_000 {
                d += step;
                let v = f.at(d);
                num += prev * v;
                den += v * v;
                prev = v;
            }
            num / den
        };
        let near = corr_at(10.0);
        let far = corr_at(500.0);
        assert!(near > 0.8, "near {near}");
        assert!(far < 0.2, "far {far}");
    }
}
