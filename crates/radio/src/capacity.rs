//! Link capacity from bandwidth, SINR, MIMO layers, BLER and cell load.
//!
//! Capacity here is the PHY-layer rate the serving cell can deliver to *this*
//! UE: `Σ_cc bw·eff(SINR)·layers·(1−BLER)·overhead·load_share`. The load
//! share — the fraction of the cell's airtime the scheduler gives this UE —
//! is the dominant source of throughput variance in the wild, and is why the
//! paper finds that no single PHY KPI correlates strongly with throughput
//! (Table 2). The cell-load process itself lives in `wheels-ran`; this
//! module just combines the factors.

use crate::db_to_linear;
use crate::mcs::{gapped_shannon_bound, mcs_from_bound, spectral_efficiency};

/// Static capacity parameters of one configured link (one technology ×
/// direction on one carrier network).
#[derive(Debug, Clone, Copy)]
pub struct CapacityModel {
    /// Aggregate bandwidth across all aggregated component carriers, MHz.
    pub total_bw_mhz: f64,
    /// Effective spatial layers (MIMO rank actually sustained on the move).
    pub layers: f64,
    /// L1/L2 overhead factor in (0, 1]: DMRS, control, retransmissions.
    pub overhead: f64,
}

/// The computed capacity plus the KPI values the XCAL logger reports.
#[derive(Debug, Clone, Copy)]
pub struct LinkCapacity {
    /// Deliverable rate for this UE, Mbps.
    pub mbps: f64,
    /// Primary-cell MCS index selected for this SINR.
    pub mcs: u8,
    /// Spectral efficiency in use, bits/s/Hz/layer.
    pub efficiency: f64,
}

impl CapacityModel {
    /// Create a model; panics (debug) on non-physical parameters.
    pub fn new(total_bw_mhz: f64, layers: f64, overhead: f64) -> Self {
        debug_assert!(total_bw_mhz > 0.0);
        debug_assert!(layers >= 1.0);
        debug_assert!((0.0..=1.0).contains(&overhead));
        CapacityModel {
            total_bw_mhz,
            layers,
            overhead,
        }
    }

    /// Capacity for a wideband `sinr_db`, residual `bler`, and scheduler
    /// `load_share` in [0, 1].
    ///
    /// Below the SINR where even MCS 0 fits (≈ −7 dB), the link limps along
    /// at the gapped Shannon bound rather than the table floor — the model
    /// must never promise more than physics no matter how low the SINR.
    pub fn capacity(&self, sinr_db: f64, bler: f64, load_share: f64) -> LinkCapacity {
        // One gapped-bound computation serves both MCS selection and the
        // physics clamp (identical expressions: SHANNON_GAP_DB is 3 dB).
        let gapped_bound = gapped_shannon_bound(sinr_db);
        let mcs = mcs_from_bound(gapped_bound);
        let eff = spectral_efficiency(mcs).min(gapped_bound).max(0.0);
        let mbps = self.total_bw_mhz
            * eff
            * self.layers
            * self.overhead
            * (1.0 - bler.clamp(0.0, 1.0))
            * load_share.clamp(0.0, 1.0);
        LinkCapacity {
            mbps,
            mcs,
            efficiency: eff,
        }
    }

    /// Shannon-bound sanity value for the same bandwidth (Mbps), used in
    /// tests to check we never exceed physics.
    pub fn shannon_mbps(&self, sinr_db: f64) -> f64 {
        self.total_bw_mhz * self.layers * (1.0 + db_to_linear(sinr_db)).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_monotone_in_sinr() {
        let m = CapacityModel::new(100.0, 2.0, 0.85);
        let mut last = 0.0;
        for s in (-10..30).step_by(2) {
            let c = m.capacity(s as f64, 0.1, 1.0).mbps;
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn capacity_below_shannon() {
        let m = CapacityModel::new(100.0, 2.0, 0.85);
        for s in -5..30 {
            let c = m.capacity(s as f64, 0.0, 1.0).mbps;
            assert!(c < m.shannon_mbps(s as f64), "sinr {s}");
        }
    }

    #[test]
    fn mmwave_peak_matches_s21_spec() {
        // Samsung S21 peak: ~3.5 Gbps DL over 8 CC × 100 MHz mmWave
        // (effectively single-layer 64/256QAM with heavy overhead on the
        // move; net ~4.4 bits/s/Hz).
        let m = CapacityModel::new(800.0, 1.0, 0.75);
        let c = m.capacity(30.0, 0.0, 1.0).mbps;
        assert!((2_800.0..5_000.0).contains(&c), "{c}");
    }

    #[test]
    fn midband_peak_plausible() {
        // 100 MHz n41, 4 layers: ~1-2 Gbps ideal.
        let m = CapacityModel::new(100.0, 4.0, 0.85);
        let c = m.capacity(27.0, 0.05, 1.0).mbps;
        assert!((900.0..2_600.0).contains(&c), "{c}");
    }

    #[test]
    fn load_share_scales_linearly() {
        let m = CapacityModel::new(20.0, 2.0, 0.9);
        let full = m.capacity(15.0, 0.1, 1.0).mbps;
        let half = m.capacity(15.0, 0.1, 0.5).mbps;
        assert!((half * 2.0 - full).abs() < 1e-9);
    }

    #[test]
    fn bler_reduces_capacity() {
        let m = CapacityModel::new(20.0, 2.0, 0.9);
        assert!(m.capacity(15.0, 0.3, 1.0).mbps < m.capacity(15.0, 0.05, 1.0).mbps);
    }

    #[test]
    fn kpis_reported() {
        let m = CapacityModel::new(20.0, 2.0, 0.9);
        let c = m.capacity(12.0, 0.1, 1.0);
        assert!(c.mcs > 0 && c.mcs <= crate::mcs::MAX_MCS);
        assert!(c.efficiency > 0.0);
    }
}
