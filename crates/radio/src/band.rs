//! Cellular technologies and frequency bands.
//!
//! The paper distinguishes five technologies throughout: LTE, LTE-A,
//! 5G-low (sub-1 GHz NR), 5G-mid (2.5–4 GHz NR) and 5G-mmWave (24–40 GHz
//! NR). §5.4 further groups 5G-mid and 5G-mmWave as "high-throughput (HT)"
//! and the rest as "low-throughput (LT)" technologies.

use std::fmt;

/// A cellular radio technology as reported by XCAL / Android APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Technology {
    /// Plain LTE (single carrier).
    Lte,
    /// LTE-Advanced (carrier aggregation, 256QAM, 4x4 MIMO).
    LteA,
    /// 5G NR low band (e.g. n5/n71, 600–850 MHz).
    Nr5gLow,
    /// 5G NR mid band (e.g. n41/n77, 2.5–3.7 GHz).
    Nr5gMid,
    /// 5G NR mmWave (e.g. n260/n261, 28/39 GHz).
    Nr5gMmWave,
}

impl Technology {
    /// All technologies, slowest-first (the order used in the paper's
    /// stacked coverage bars).
    pub const ALL: [Technology; 5] = [
        Technology::Lte,
        Technology::LteA,
        Technology::Nr5gLow,
        Technology::Nr5gMid,
        Technology::Nr5gMmWave,
    ];

    /// Is this a 5G NR technology?
    pub fn is_5g(self) -> bool {
        matches!(
            self,
            Technology::Nr5gLow | Technology::Nr5gMid | Technology::Nr5gMmWave
        )
    }

    /// "High-throughput" per §5.4: 5G midband or mmWave.
    pub fn is_high_speed(self) -> bool {
        matches!(self, Technology::Nr5gMid | Technology::Nr5gMmWave)
    }

    /// Label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Technology::Lte => "LTE",
            Technology::LteA => "LTE-A",
            Technology::Nr5gLow => "5G-low",
            Technology::Nr5gMid => "5G-mid",
            Technology::Nr5gMmWave => "5G-mmWave",
        }
    }

    /// Representative band for propagation modelling.
    pub fn band(self) -> Band {
        match self {
            Technology::Lte | Technology::LteA => Band::new(1_900.0),
            Technology::Nr5gLow => Band::new(850.0),
            Technology::Nr5gMid => Band::new(2_600.0),
            Technology::Nr5gMmWave => Band::new(28_000.0),
        }
    }

    /// Typical inter-site distance multiplier: how much denser this layer
    /// must be deployed than macro LTE for usable coverage. mmWave cells
    /// cover ~150-300 m; low-band macro cells cover km.
    pub fn nominal_range_m(self) -> f64 {
        match self {
            Technology::Lte | Technology::LteA => 6_000.0,
            Technology::Nr5gLow => 7_000.0,
            Technology::Nr5gMid => 2_500.0,
            Technology::Nr5gMmWave => 280.0,
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A frequency band, characterized by its center frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Center frequency, MHz.
    pub center_mhz: f64,
}

impl Band {
    /// Create a band at the given center frequency (MHz).
    pub fn new(center_mhz: f64) -> Self {
        debug_assert!(center_mhz > 0.0);
        Band { center_mhz }
    }

    /// Is this a mmWave band (≥ 24 GHz)?
    pub fn is_mmwave(self) -> bool {
        self.center_mhz >= 24_000.0
    }

    /// Free-space path loss at 1 m reference distance, dB:
    /// `20·log10(4π·d0·f/c)` with d0 = 1 m.
    pub fn fspl_1m_db(self) -> f64 {
        // 20 log10(4*pi/c) + 20 log10(f_hz) = -147.55 + 20 log10(f_hz)
        20.0 * (self.center_mhz * 1e6).log10() - 147.55
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_speed_grouping_matches_section_5_4() {
        assert!(!Technology::Lte.is_high_speed());
        assert!(!Technology::LteA.is_high_speed());
        assert!(!Technology::Nr5gLow.is_high_speed());
        assert!(Technology::Nr5gMid.is_high_speed());
        assert!(Technology::Nr5gMmWave.is_high_speed());
    }

    #[test]
    fn five_g_grouping() {
        assert!(!Technology::LteA.is_5g());
        assert!(Technology::Nr5gLow.is_5g());
    }

    #[test]
    fn fspl_28ghz_at_1m_about_61_db() {
        let b = Band::new(28_000.0);
        assert!((b.fspl_1m_db() - 61.4).abs() < 0.5, "{}", b.fspl_1m_db());
    }

    #[test]
    fn fspl_increases_with_frequency() {
        assert!(Band::new(28_000.0).fspl_1m_db() > Band::new(850.0).fspl_1m_db());
    }

    #[test]
    fn ranges_ordered_mmwave_shortest() {
        assert!(Technology::Nr5gMmWave.nominal_range_m() < Technology::Nr5gMid.nominal_range_m());
        assert!(Technology::Nr5gMid.nominal_range_m() < Technology::Lte.nominal_range_m());
    }

    #[test]
    fn mmwave_band_detection() {
        assert!(Technology::Nr5gMmWave.band().is_mmwave());
        assert!(!Technology::Nr5gMid.band().is_mmwave());
    }
}
