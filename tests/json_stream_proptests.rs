//! Property tests for the streaming JSON writer.
//!
//! The export byte-equivalence gates in ci.sh pin the serializer on the
//! one document shape the campaign produces; these properties pin it on
//! arbitrary [`Value`] trees instead:
//!
//! 1. streamed emission is byte-identical to the historical tree writer
//!    (`write_value`), compact and pretty;
//! 2. serialize → parse → serialize is byte-stable (parsed numbers
//!    re-emit their original token via `Num::Raw`, strings survive
//!    escaping, container layout is reproduced).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::ser::JsonWriter;
use serde::{Num, Value};

/// Generates an arbitrary `Value` tree, bounded in depth and fan-out.
///
/// Leaves cover every scalar the writer distinguishes: null, bools,
/// finite floats of both widths (integral and not), integers at their
/// extremes, and strings that force every escape class (quotes,
/// backslashes, control bytes, multi-byte UTF-8).
struct ArbValue {
    depth: u32,
}

const STRING_POOL: &[&str] = &[
    "",
    "plain",
    "key with spaces",
    "quote\"inside",
    "back\\slash",
    "line\nbreak\ttab",
    "control\u{1}\u{1f}",
    "unicode héllo → 😀 𝄞",
    "\u{8}\u{c}\r mix",
];

impl Strategy for ArbValue {
    type Value = Value;

    fn generate(&self, rng: &mut SmallRng) -> Value {
        let scalar_only = self.depth == 0;
        let pick = if scalar_only {
            rng.gen_range(0..6)
        } else {
            rng.gen_range(0..8)
        };
        match pick {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_range(0..2) == 0),
            2 => {
                let x: f64 = match rng.gen_range(0..4) {
                    0 => rng.gen_range(-1.0e6..1.0e6),
                    1 => rng.gen_range(-100i64..100) as f64, // integral: x.0 layout
                    2 => rng.gen_range(-1.0e18..1.0e18),     // beyond the {:.1} guard
                    _ => rng.gen_range(-1.0e-6..1.0e-6),
                };
                Value::Num(Num::F64(x))
            }
            3 => {
                let x: f32 = if rng.gen_range(0..2) == 0 {
                    rng.gen_range(-1.0e6f32..1.0e6)
                } else {
                    rng.gen_range(-50i32..50) as f32
                };
                Value::Num(Num::F32(x))
            }
            4 => {
                if rng.gen_range(0..2) == 0 {
                    Value::Num(Num::U64(rng.gen()))
                } else {
                    Value::Num(Num::I64(rng.gen::<u64>() as i64))
                }
            }
            5 => Value::Str(STRING_POOL[rng.gen_range(0..STRING_POOL.len())].to_string()),
            6 => {
                let n = rng.gen_range(0..5);
                let child = ArbValue {
                    depth: self.depth - 1,
                };
                Value::Array((0..n).map(|_| child.generate(rng)).collect())
            }
            _ => {
                let n = rng.gen_range(0..5);
                let child = ArbValue {
                    depth: self.depth - 1,
                };
                Value::Object(
                    (0..n)
                        .map(|i| {
                            let key = format!(
                                "{}{i}",
                                STRING_POOL[rng.gen_range(0..STRING_POOL.len())]
                            );
                            (key, child.generate(rng))
                        })
                        .collect(),
                )
            }
        }
    }
}

/// Stream `v` through the visitor API at the given layout.
fn streamed(v: &Value, indent: Option<usize>) -> String {
    let mut w = JsonWriter::append_to(String::new(), indent, 0);
    w.value(v);
    w.finish()
}

/// The historical tree writer (same engine, via serde_json's shim).
fn tree(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    serde_json::write_value(v, indent, 0, &mut out);
    out
}

proptest! {
    #[test]
    fn streamed_output_matches_tree_writer(v in ArbValue { depth: 4 }) {
        prop_assert_eq!(streamed(&v, None), tree(&v, None));
        prop_assert_eq!(streamed(&v, Some(2)), tree(&v, Some(2)));
    }

    #[test]
    fn serialize_parse_serialize_is_byte_stable_pretty(v in ArbValue { depth: 4 }) {
        let first = serde_json::to_string_pretty(&v).expect("value serializes");
        let back: Value = serde_json::from_str(&first).expect("own output parses");
        let second = serde_json::to_string_pretty(&back).expect("reparse serializes");
        prop_assert_eq!(&first, &second);
    }

    #[test]
    fn serialize_parse_serialize_is_byte_stable_compact(v in ArbValue { depth: 4 }) {
        let first = serde_json::to_string(&v).expect("value serializes");
        let back: Value = serde_json::from_str(&first).expect("own output parses");
        let second = serde_json::to_string(&back).expect("reparse serializes");
        prop_assert_eq!(&first, &second);
    }

    #[test]
    fn io_sink_matches_buffered_output(v in ArbValue { depth: 3 }) {
        // The bounded-buffer io path must produce the same bytes as the
        // in-memory path for any tree, both layouts.
        let mut sink = Vec::new();
        serde_json::to_writer(&mut sink, &v).expect("io write");
        prop_assert_eq!(String::from_utf8(sink).expect("utf8"), streamed(&v, None));
        let mut sink = Vec::new();
        serde_json::to_writer_pretty(&mut sink, &v).expect("io write");
        prop_assert_eq!(String::from_utf8(sink).expect("utf8"), streamed(&v, Some(2)));
    }
}
