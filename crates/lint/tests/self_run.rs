//! Workspace self-run: the whole repo must lint clean. This is the same
//! gate `ci.sh` runs via `cargo run -p wheels-lint`; having it inside
//! `cargo test` means a re-entering `partial_cmp` sort or `HashMap`
//! iteration fails the ordinary test suite too, with the offending
//! file:line in the assertion message.

use std::path::PathBuf;

use wheels_lint::lint_paths;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = workspace_root();
    let paths: Vec<PathBuf> = ["crates", "src", "examples", "tests"]
        .iter()
        .map(|d| root.join(d))
        .filter(|p| p.exists())
        .collect();
    assert!(!paths.is_empty(), "workspace dirs missing under {root:?}");
    let (findings, files) = lint_paths(&paths).expect("workspace readable");
    assert!(files > 50, "walker only saw {files} files — wrong root?");
    let bad: Vec<String> = findings
        .iter()
        .filter(|f| f.is_unsuppressed())
        .map(|f| f.to_string())
        .collect();
    assert!(
        bad.is_empty(),
        "determinism lint violations:\n{}",
        bad.join("\n")
    );
}

#[test]
fn workspace_suppressions_all_carry_reasons() {
    // Every suppressed finding must have a nonempty reason (the parser
    // enforces this; the test documents the invariant over real data).
    let root = workspace_root();
    let (findings, _) = lint_paths(&[root.join("crates")]).expect("readable");
    for f in findings.iter().filter(|f| !f.is_unsuppressed()) {
        assert!(
            !f.suppressed.as_deref().unwrap_or("").is_empty(),
            "empty suppression reason at {f}"
        );
    }
}
