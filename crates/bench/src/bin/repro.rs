//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p wheels-bench --bin repro -- all
//! cargo run --release -p wheels-bench --bin repro -- fig3 table2
//! cargo run --release -p wheels-bench --bin repro -- --scale quarter all
//! cargo run --release -p wheels-bench --bin repro -- --export dataset.json all
//! cargo run --release -p wheels-bench --bin repro -- --jobs 4 all
//! cargo run --release -p wheels-bench --bin repro -- --fault-profile harsh table1
//! ```
//!
//! `--jobs N` runs the campaign's work units on N worker threads; the
//! dataset (and every figure) is byte-identical to the sequential run.
//!
//! `--fault-profile none|paper|harsh` injects deterministic apparatus
//! faults (probe crashes, server outages, modem detaches, timeouts); the
//! supervisor retries failed units up to `--max-retries N` times and then
//! degrades instead of aborting — unless `--fail-fast` is given, in which
//! case a lost unit ends the run with a nonzero exit. With `--export
//! FILE`, the per-unit integrity report lands in `FILE.integrity.json`.

use std::io::Write;

use wheels_analysis::figures as figs;
use wheels_bench::{run_campaign_supervised, FaultOpts, ReproScale, EXPERIMENTS};
use wheels_campaign::stats::Table1;
use wheels_campaign::FaultProfile;
use wheels_xcal::database::ConsolidatedDb;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ReproScale::Full;
    let mut seed = 2026u64;
    let mut jobs = 1usize;
    let mut faults = FaultOpts::default();
    let mut export: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => ReproScale::Full,
                    Some("quarter") => ReproScale::Quarter,
                    Some("smoke") => ReproScale::Smoke,
                    other => {
                        eprintln!("unknown scale {other:?} (full|quarter|smoke)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        std::process::exit(2);
                    });
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive worker count");
                        std::process::exit(2);
                    });
            }
            "--fault-profile" => {
                i += 1;
                faults.profile = args
                    .get(i)
                    .and_then(|s| FaultProfile::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown fault profile (none|paper|harsh)");
                        std::process::exit(2);
                    });
            }
            "--max-retries" => {
                i += 1;
                faults.max_retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-retries needs a non-negative count");
                        std::process::exit(2);
                    });
            }
            "--fail-fast" => faults.fail_fast = true,
            "--export" => {
                i += 1;
                export = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--export needs a path");
                    std::process::exit(2);
                }));
            }
            "all" => wanted.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() {
        eprintln!("usage: repro [--scale full|quarter|smoke] [--seed N] [--jobs N] \
                   [--fault-profile none|paper|harsh] [--max-retries N] [--fail-fast] \
                   [--export FILE] <id...|all>");
        eprintln!("ids: {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    wanted.dedup();

    eprintln!(
        "running campaign (scale {scale:?}, seed {seed}, jobs {jobs}, faults {})...",
        faults.profile.label()
    );
    let t0 = std::time::Instant::now();
    let (campaign, outcome) = match run_campaign_supervised(scale, seed, jobs, faults) {
        Ok(r) => r,
        Err(abort) => {
            eprintln!("{abort}");
            std::process::exit(1);
        }
    };
    let db = outcome.db;
    let integrity = outcome.integrity;
    eprintln!(
        "campaign done in {:.1?}: {} test records, {} KPI samples",
        t0.elapsed(),
        db.records.len(),
        db.records.iter().map(|r| r.kpi.len()).sum::<usize>()
    );
    eprintln!("{}", integrity.summary());

    if let Some(path) = export {
        let json = wheels_xcal::export::to_json(&db).expect("database serializes");
        std::fs::write(&path, json).expect("write export file");
        let report =
            serde_json::to_string_pretty(&integrity).expect("integrity report serializes");
        let report_path = format!("{path}.integrity.json");
        std::fs::write(&report_path, report).expect("write integrity report");
        eprintln!("dataset exported to {path}, integrity report to {report_path}");
    }

    let out = std::io::stdout();
    let mut out = out.lock();
    for id in &wanted {
        let text = render_one(id, &campaign, &db);
        writeln!(out, "{text}").expect("stdout");
    }
}

fn render_one(id: &str, campaign: &wheels_campaign::Campaign, db: &ConsolidatedDb) -> String {
    match id {
        "table1" => format!(
            "Table 1 — driving dataset statistics\n{}",
            Table1::compute(db, campaign.plan().route()).render()
        ),
        "fig1" => format!(
            "{}\n{}",
            figs::fig01_coverage_views::compute(db).render(),
            wheels_analysis::map::render_fig1_maps(
                db,
                campaign.plan().route().total_m(),
                96
            )
        ),
        "fig2" => figs::fig02_coverage::compute(db).render(),
        "fig3" => figs::fig03_static_driving::compute(db).render(),
        "fig4" => figs::fig04_tech_perf::compute(db).render(),
        "fig5" => figs::fig05_timezones::compute(db).render(),
        "fig6" => figs::fig06_operator_diversity::compute(db).render(),
        "fig7" => figs::fig07_speed_tput::compute(db).render(),
        "fig8" => figs::fig08_speed_rtt::compute(db).render(),
        "table2" => figs::table2_correlations::compute(db).render(),
        "fig9" => figs::fig09_test_stats::compute(db).render(),
        "fig10" => figs::fig10_hs5g::compute(db).render(),
        "table3" => figs::table3_ookla::compute(db).render(),
        "fig11" => figs::fig11_handovers::compute(db).render(),
        "fig12" => figs::fig12_ho_impact::compute(db).render(),
        "table4" => format!(
            "Table 4 — AR/CAV configuration\n{}",
            wheels_apps::config::render_table4()
        ),
        "table5" => render_table5(),
        "fig13" => figs::fig13_ar::compute(db).render(),
        "fig14" => figs::fig14_cav::compute(db).render(),
        "fig15" => figs::fig15_video::compute(db).render(),
        "fig16" => figs::fig16_gaming::compute(db).render(),
        "ext-mptcp" => figs::ext_multipath::compute(db).render(),
        "report" => wheels_analysis::report::generate(db, campaign.plan().route()),
        other => format!("unknown experiment id: {other}"),
    }
}

fn render_table5() -> String {
    use wheels_apps::map_table::{MAP_NO_COMPRESSION, MAP_WITH_COMPRESSION};
    let mut s = String::from(
        "Table 5 — mAP vs E2E latency (frame times)\nbin   mAP w/o comp   mAP w/ comp\n",
    );
    for i in 0..MAP_NO_COMPRESSION.len() {
        s.push_str(&format!(
            "{:>2}-{:<2}   {:>8.2}      {:>8.2}\n",
            i,
            i + 1,
            MAP_NO_COMPRESSION[i],
            MAP_WITH_COMPRESSION[i]
        ));
    }
    s
}
