//! Fig. 1: the two coverage-logging approaches disagree.
//!
//! The passive handover-logger (38-byte pings) sees mostly LTE/LTE-A; the
//! XCAL logs during backlogged tests see real 5G coverage. §4.1's lesson:
//! *"passive approaches that simply log the cellular network state in the
//! absence of heavy traffic are not reliable."*

use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;

use super::share_5g;
use crate::index::AnalysisIndex;
use crate::render::share_bar;

/// Distance-weighted technology shares, one entry per technology.
pub type Shares = [(Technology, f64); 5];

/// Per-operator comparison of the two coverage views.
#[derive(Debug, Clone)]
pub struct CoverageViews {
    /// (operator, passive shares, active shares) per operator.
    pub per_op: Vec<(Operator, Shares, Shares)>,
}

/// Compute both views for all operators from the pre-aggregated shares.
pub fn compute(ix: &AnalysisIndex<'_>) -> CoverageViews {
    let per_op = ix
        .ops()
        .iter()
        .map(|&op| {
            let s = ix.shares(op);
            (op, s.passive, s.active_all)
        })
        .collect();
    CoverageViews { per_op }
}

impl CoverageViews {
    /// 5G share seen passively vs actively for one operator.
    pub fn gap_for(&self, op: Operator) -> Option<(f64, f64)> {
        self.per_op
            .iter()
            .find(|(o, _, _)| *o == op)
            .map(|(_, p, a)| (share_5g(p), share_5g(a)))
    }

    /// Render in the paper's per-operator layout.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fig. 1 — coverage: passive handover-logger vs XCAL during tests\n",
        );
        for (op, passive, active) in &self.per_op {
            let shares: Vec<(&str, f64)> =
                passive.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(&format!("{op} passive"), &shares));
            out.push('\n');
            let shares: Vec<(&str, f64)> = active.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(&format!("{op} active"), &shares));
            out.push('\n');
            out.push_str(&format!(
                "  -> 5G share: passive {:.1}% vs active {:.1}%\n",
                share_5g(passive) * 100.0,
                share_5g(active) * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn passive_view_is_pessimistic() {
        let v = compute(small_ix());
        for op in Operator::ALL {
            let (passive, active) = v.gap_for(op).expect("all ops present");
            assert!(
                passive < active + 0.05,
                "{op}: passive {passive} should be below active {active}"
            );
        }
    }

    #[test]
    fn att_passive_essentially_4g_only() {
        // Fig. 1d: AT&T's handover-logger saw only LTE/LTE-A.
        let (passive, _) = compute(small_ix()).gap_for(Operator::Att).unwrap();
        assert!(passive < 0.08, "AT&T passive 5G share {passive}");
    }

    #[test]
    fn render_mentions_all_operators() {
        let r = compute(small_ix()).render();
        for op in Operator::ALL {
            assert!(r.contains(op.label()));
        }
    }
}
