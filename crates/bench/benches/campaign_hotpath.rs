//! Campaign hot-path microbenchmarks.
//!
//! These cover the exact per-sample work the campaign inner loop performs,
//! from the cheapest leaf (SINR→MCS→capacity) up to one full (operator,
//! day) work unit — the unit ci.sh times at quarter scale. Together with
//! the golden-digest test in `wheels-campaign` they form the contract for
//! hot-path changes: the benches here must get faster (or hold), while the
//! goldens prove the exported bytes did not move.
//!
//! Run with `cargo bench --bench campaign_hotpath`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use wheels_campaign::{Campaign, CampaignConfig, WorkUnit};
use wheels_netsim::bbr::Bbr;
use wheels_netsim::cubic::Cubic;
use wheels_netsim::event::EventQueue;
use wheels_netsim::tcp::FluidTcp;
use wheels_radio::capacity::CapacityModel;
use wheels_radio::mcs::mcs_from_sinr;
use wheels_radio::shadowing::{RhoMemo, ShadowingField};
use wheels_ran::Operator;

/// SINR → MCS index → link capacity: runs once per snapshot per direction.
fn bench_sinr_to_capacity(c: &mut Criterion) {
    let model = CapacityModel::new(100.0, 4.0, 0.25);
    c.bench_function("hotpath/sinr_mcs_capacity", |b| {
        let mut sinr = -8.0;
        b.iter(|| {
            sinr += 0.37;
            if sinr > 32.0 {
                sinr = -8.0;
            }
            let mcs = mcs_from_sinr(sinr);
            black_box((mcs, model.capacity(sinr, 0.05, 0.7)))
        })
    });
}

/// Correlated shadowing: the single-sample advance and the batched span
/// fill the eval loop uses. The span variant amortizes the rho lookup and
/// is what `ShadowBank::advance_span` calls per audible cell.
fn bench_shadowing(c: &mut Criterion) {
    c.bench_function("hotpath/shadowing_advance_1m", |b| {
        let mut field = ShadowingField::new(4.0, 50.0, 7);
        let mut memo = RhoMemo::default();
        let mut d = 0.0;
        b.iter(|| {
            d += 1.0;
            black_box(field.at_memo(d, &mut memo))
        })
    });
    c.bench_function("hotpath/shadowing_fill_span_64", |b| {
        let mut field = ShadowingField::new(4.0, 50.0, 7);
        let mut buf = [0.0f64; 64];
        let mut d = 0.0;
        b.iter(|| {
            d += 64.0;
            field.fill_span(d, 1.0, &mut buf);
            black_box(buf[63])
        })
    });
}

/// CUBIC and BBR fluid steppers at the bulk-transfer tick rate (20 ms).
fn bench_cc_steppers(c: &mut Criterion) {
    c.bench_function("hotpath/cubic_tick_20ms", |b| {
        let mut flow = FluidTcp::new(Box::new(Cubic::new()));
        let mut t = 0.0;
        b.iter(|| {
            t += 0.02;
            black_box(flow.tick(t, 0.02, 180.0, 0.05))
        })
    });
    c.bench_function("hotpath/bbr_tick_20ms", |b| {
        let mut flow = FluidTcp::new(Box::new(Bbr::new()));
        let mut t = 0.0;
        b.iter(|| {
            t += 0.02;
            black_box(flow.tick(t, 0.02, 180.0, 0.05))
        })
    });
}

/// Event-loop push/pop with the allocation reused across "work units"
/// via [`EventQueue::clear`].
fn bench_event_loop(c: &mut Criterion) {
    c.bench_function("hotpath/event_push_pop", |b| {
        let mut q = EventQueue::with_capacity(64);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            q.schedule(t + 10.0, 1u32);
            q.schedule(t + 5.0, 2u32);
            black_box(q.pop())
        })
    });
    c.bench_function("hotpath/event_unit_reuse_32", |b| {
        let mut q = EventQueue::with_capacity(32);
        b.iter(|| {
            q.clear();
            for i in 0..32u32 {
                q.schedule(f64::from(i % 7), i);
            }
            let mut acc = 0u32;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

/// One end-to-end (operator, day) drive unit at smoke scale — the whole
/// stack: drive plan interpolation, UE eval loop, shadowing, TCP flows,
/// apps, snapshot collection. This is the number the quarter-scale ci.sh
/// stage tracks, scaled down to bench-loop size.
fn bench_work_unit(c: &mut Criterion) {
    let mut cfg = CampaignConfig::full(42);
    cfg.scale = 0.02;
    cfg.passive_tick_s = 10.0;
    let campaign = Campaign::new(cfg);
    let unit = WorkUnit::Drive {
        op: Operator::TMobile,
        day: 0,
    };
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    group.bench_function("drive_unit_smoke_tmobile_day0", |b| {
        b.iter(|| black_box(campaign.run_unit_payload(&unit)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sinr_to_capacity,
    bench_shadowing,
    bench_cc_steppers,
    bench_event_loop,
    bench_work_unit
);
criterion_main!(benches);
