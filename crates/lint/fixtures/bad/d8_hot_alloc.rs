//! D8 must fire: allocation inside registered hot-path functions. The
//! free function `evaluate_layer_span` and the method `Cubic::on_ack`
//! are both in the hot-path registry; every allocating call below runs
//! once per tick and multiplies by millions of iterations.

pub struct Cubic {
    w_max: f64,
    log: Vec<String>,
}

pub fn evaluate_layer_span(rsrp_dbm: &[f64]) -> f64 {
    // Direct allocations in a registered hot path.
    let mut scores: Vec<f64> = Vec::new();
    for r in rsrp_dbm {
        scores.push(*r * 0.5);
    }
    let tagged: Vec<f64> = scores.iter().map(|s| s + 1.0).collect();
    tagged.iter().sum()
}

fn describe(w: f64) -> String {
    // One call level below a hot path: still forbidden (transitive).
    format!("w_max={w:.3}")
}

impl Cubic {
    pub fn on_ack(&mut self, acked_bytes: f64) {
        self.w_max += acked_bytes;
        self.log.push(describe(self.w_max));
    }
}
