//! Dataset export round-trips: the paper publishes its dataset; ours must
//! survive JSON serialization and produce coherent CSV.

use wheels::campaign::{Campaign, CampaignConfig};
use wheels::xcal::database::ConsolidatedDb;
use wheels::xcal::export;

fn mini() -> ConsolidatedDb {
    let mut cfg = CampaignConfig::quick(55);
    cfg.scale = 0.008;
    cfg.run_static = false;
    cfg.passive_tick_s = 60.0;
    Campaign::new(cfg).run()
}

#[test]
fn json_roundtrip_preserves_everything() {
    let db = mini();
    let json = export::to_json(&db).unwrap();
    let back = export::from_json(&json).unwrap();
    assert_eq!(db.records.len(), back.records.len());
    for (a, b) in db.records.iter().zip(&back.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.kpi.len(), b.kpi.len());
        assert_eq!(a.rtt_ms, b.rtt_ms);
        assert_eq!(a.handovers.len(), b.handovers.len());
        assert_eq!(
            a.app.map(|m| m.compressed),
            b.app.map(|m| m.compressed)
        );
    }
    assert_eq!(db.passive.len(), back.passive.len());
}

#[test]
fn csv_rows_match_throughput_sample_count() {
    let db = mini();
    let expected: usize = db
        .records
        .iter()
        .flat_map(|r| r.kpi.iter())
        .filter(|k| k.tput_mbps.is_some())
        .count();
    let mut buf = Vec::new();
    export::write_tput_csv(&db, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), expected + 1, "header + one row per sample");
    // Every row has the full column count.
    let cols = export::CSV_HEADER.split(',').count();
    for line in text.lines().skip(1) {
        assert_eq!(line.split(',').count(), cols, "{line}");
    }
}

#[test]
fn app_metrics_present_in_export() {
    let db = mini();
    let json = export::to_json(&db).unwrap();
    assert!(json.contains("qoe"), "video metrics exported");
    assert!(json.contains("map_accuracy"), "AR metrics exported");
}
