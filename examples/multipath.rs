//! The MPTCP what-if (§8 recommendation 2): replay concurrent three-operator
//! throughput tests under a multipath flow and measure the gain over the
//! best single operator.
//!
//! ```text
//! cargo run --release --example multipath
//! ```

use wheels::analysis::figures::ext_multipath;
use wheels::analysis::AnalysisIndex;
use wheels::campaign::{Campaign, CampaignConfig};
use wheels::netsim::mptcp::{MptcpMode, MultipathFlow};
use wheels::ran::Direction;

fn main() {
    println!("== multipath over three operators ==\n");

    // A controlled demo first: complementary sawtooth paths.
    let caps = |t: f64| -> [f64; 3] {
        match ((t / 10.0) as u64) % 3 {
            0 => [80.0, 8.0, 15.0],
            1 => [8.0, 80.0, 15.0],
            _ => [15.0, 8.0, 80.0],
        }
    };
    for mode in [MptcpMode::Aggregate, MptcpMode::BestPath] {
        let mut flow = MultipathFlow::new(3, mode);
        let mut t = 0.0;
        while t < 60.0 {
            flow.tick(t, 0.02, &caps(t), &[0.05, 0.06, 0.055]);
            t += 0.02;
        }
        println!(
            "  sawtooth demo, {:?}: {:.1} Mbps (single paths average ~34 Mbps)",
            mode,
            wheels::netsim::bps_to_mbps(flow.total_delivered_bytes() / 60.0)
        );
    }

    // Then the real what-if over a simulated campaign.
    println!("\nrunning a reduced campaign for concurrent test triples...");
    let mut cfg = CampaignConfig::quick_network_only(33);
    cfg.scale = 0.12;
    cfg.run_static = false;
    cfg.run_passive = false;
    let db = Campaign::new(cfg).run();
    let whatif = ext_multipath::compute(&AnalysisIndex::build(&db));
    println!("{}", whatif.render());

    let (agg, best) = whatif.gains(Direction::Downlink);
    println!(
        "DL: an MPTCP phone would have beaten the best single carrier by {:.1}x (median), {:.1}x (p90)",
        agg.median(),
        agg.percentile(90.0)
    );
    let _ = best;
    println!("\n§8's recommendation 2, quantified.");
}
