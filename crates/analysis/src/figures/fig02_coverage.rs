//! Fig. 2: technology coverage as % of miles driven.
//!
//! (a) overall per operator, (b) by traffic direction (backlogged tests
//! only), (c) by timezone, (d) by speed bin.

use wheels_geo::timezone::Timezone;
use wheels_geo::SpeedBin;
use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;
use wheels_ran::Direction;

use super::{share_5g, share_hs5g};
use crate::index::AnalysisIndex;
use crate::render::share_bar;

/// Shares type alias: one entry per technology.
pub type Shares = [(Technology, f64); 5];

/// All four panels of Fig. 2.
#[derive(Debug, Clone)]
pub struct CoverageFig {
    /// (a) overall shares per operator.
    pub overall: Vec<(Operator, Shares)>,
    /// (b) shares by traffic direction per operator.
    pub by_direction: Vec<(Operator, Direction, Shares)>,
    /// (c) shares by timezone per operator.
    pub by_timezone: Vec<(Operator, Timezone, Shares)>,
    /// (d) shares by speed bin per operator.
    pub by_speed: Vec<(Operator, SpeedBin, Shares)>,
}

/// Assemble all four panels from the index's pre-aggregated shares.
pub fn compute(ix: &AnalysisIndex<'_>) -> CoverageFig {
    let overall = ix
        .ops()
        .iter()
        .map(|&op| (op, ix.shares(op).active_all))
        .collect();
    let mut by_direction = Vec::new();
    for &op in ix.ops() {
        for (di, dir) in Direction::BOTH.into_iter().enumerate() {
            by_direction.push((op, dir, ix.shares(op).by_direction[di]));
        }
    }
    let mut by_timezone = Vec::new();
    for &op in ix.ops() {
        for (zi, tz) in Timezone::ALL.into_iter().enumerate() {
            by_timezone.push((op, tz, ix.shares(op).by_timezone[zi]));
        }
    }
    let mut by_speed = Vec::new();
    for &op in ix.ops() {
        for (bi, bin) in SpeedBin::ALL.into_iter().enumerate() {
            by_speed.push((op, bin, ix.shares(op).by_speed[bi]));
        }
    }
    CoverageFig {
        overall,
        by_direction,
        by_timezone,
        by_speed,
    }
}

impl CoverageFig {
    /// Overall shares for one operator.
    pub fn overall_for(&self, op: Operator) -> &Shares {
        &self
            .overall
            .iter()
            .find(|(o, _)| *o == op)
            .expect("all operators computed")
            .1
    }

    /// Shares for one operator and direction.
    pub fn direction_for(&self, op: Operator, dir: Direction) -> &Shares {
        &self
            .by_direction
            .iter()
            .find(|(o, d, _)| *o == op && *d == dir)
            .expect("all combos computed")
            .2
    }

    /// Shares for one operator and speed bin.
    pub fn speed_for(&self, op: Operator, bin: SpeedBin) -> &Shares {
        &self
            .by_speed
            .iter()
            .find(|(o, b, _)| *o == op && *b == bin)
            .expect("all combos computed")
            .2
    }

    /// Render all four panels.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 2a — technology coverage (% of miles)\n");
        for (op, shares) in &self.overall {
            let rows: Vec<(&str, f64)> = shares.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(op.label(), &rows));
            out.push_str(&format!(
                "  [5G total {:.1}%, high-speed {:.1}%]\n",
                share_5g(shares) * 100.0,
                share_hs5g(shares) * 100.0
            ));
        }
        out.push_str("\nFig. 2b — coverage by traffic direction\n");
        for (op, dir, shares) in &self.by_direction {
            let rows: Vec<(&str, f64)> = shares.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(&format!("{} {}", op.code(), dir.label()), &rows));
            out.push('\n');
        }
        out.push_str("\nFig. 2c — coverage by timezone\n");
        for (op, tz, shares) in &self.by_timezone {
            let rows: Vec<(&str, f64)> = shares.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(&format!("{} {}", op.code(), tz.label()), &rows));
            out.push('\n');
        }
        out.push_str("\nFig. 2d — coverage by speed bin\n");
        for (op, bin, shares) in &self.by_speed {
            let rows: Vec<(&str, f64)> = shares.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(&format!("{} {}", op.code(), bin.label()), &rows));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn tmobile_has_most_5g_verizon_att_low() {
        let f = compute(small_ix());
        let t = share_5g(f.overall_for(Operator::TMobile));
        let v = share_5g(f.overall_for(Operator::Verizon));
        let a = share_5g(f.overall_for(Operator::Att));
        assert!(t > 0.5, "T-Mobile 5G {t}");
        assert!(v < 0.40 && a < 0.40, "V {v} A {a}");
        assert!(t > v + 0.2 && t > a + 0.2);
    }

    #[test]
    fn att_high_speed_5g_is_tiny() {
        let f = compute(small_ix());
        let hs = share_hs5g(f.overall_for(Operator::Att));
        assert!(hs < 0.12, "AT&T high-speed {hs}");
    }

    #[test]
    fn high_speed_5g_higher_in_downlink() {
        // Fig. 2b: for all carriers, high-speed 5G coverage is higher for
        // DL than UL backlogged traffic. Per-operator shares are noisy at
        // fixture scale (coverage patches are km-long, tests are ~0.5 mi),
        // so assert strictly on the pooled shares and loosely per
        // operator.
        let f = compute(small_ix());
        let mut dl_pool = 0.0;
        let mut ul_pool = 0.0;
        for op in Operator::ALL {
            let dl = share_hs5g(f.direction_for(op, Direction::Downlink));
            let ul = share_hs5g(f.direction_for(op, Direction::Uplink));
            assert!(dl + 0.18 > ul, "{op}: DL {dl} vs UL {ul}");
            dl_pool += dl;
            ul_pool += ul;
        }
        assert!(dl_pool > ul_pool, "pooled DL {dl_pool} vs UL {ul_pool}");
    }

    #[test]
    fn high_speed_5g_decreases_with_speed_for_verizon() {
        // Fig. 2d: Verizon ~43% high-speed in the low bin vs ~13% in the
        // high bin.
        let f = compute(small_ix());
        let low = share_hs5g(f.speed_for(Operator::Verizon, SpeedBin::Low));
        let high = share_hs5g(f.speed_for(Operator::Verizon, SpeedBin::High));
        assert!(low > high, "low {low} vs high {high}");
    }

    #[test]
    fn tmobile_keeps_midband_at_speed() {
        let f = compute(small_ix());
        let high = share_hs5g(f.speed_for(Operator::TMobile, SpeedBin::High));
        assert!(high > 0.2, "T-Mobile high-speed at 60+ mph: {high}");
    }

    #[test]
    fn render_has_all_panels() {
        let r = compute(small_ix()).render();
        for panel in ["Fig. 2a", "Fig. 2b", "Fig. 2c", "Fig. 2d"] {
            assert!(r.contains(panel));
        }
    }
}
