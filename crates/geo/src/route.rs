//! The route polyline and odometer arithmetic.
//!
//! A [`Route`] is a polyline through the waypoints of [`crate::cities`],
//! parameterized by *odometer distance* — meters of road actually driven.
//! Roads are longer than great-circle chords, so each segment's odometer
//! length is its geometric length times a road-curvature factor, calibrated
//! so that the full cross-country route totals the paper's reported
//! 5,711 km (Table 1).

use crate::cities::{City, CityId, ROUTE_CITIES};
use crate::coord::LatLon;
use crate::region::RegionKind;
use crate::timezone::Timezone;

/// Total driven distance reported in Table 1 of the paper, meters.
pub const PAPER_TOTAL_M: f64 = 5_711_000.0;

/// A point on the route at a given odometer distance.
#[derive(Debug, Clone, Copy)]
pub struct RoutePoint {
    /// Odometer distance from the start, meters.
    pub odometer_m: f64,
    /// Position.
    pub pos: LatLon,
    /// Direction of travel, degrees clockwise from north.
    pub bearing_deg: f64,
}

#[derive(Debug, Clone)]
struct Segment {
    from: LatLon,
    to: LatLon,
    /// Odometer distance at the segment start.
    start_m: f64,
    /// Odometer length of this segment (geometric × road factor).
    len_m: f64,
    bearing_deg: f64,
}

/// A drivable route: polyline + odometer parameterization + geography
/// lookups (region kind, timezone, nearest city).
#[derive(Debug, Clone)]
pub struct Route {
    segments: Vec<Segment>,
    cities: Vec<City>,
    /// Odometer distance of each city (closest approach), meters.
    city_odometer_m: Vec<f64>,
    total_m: f64,
    road_factor: f64,
}

impl Route {
    /// The cross-country LA → Boston route of the paper, calibrated to
    /// 5,711 km of odometer distance.
    pub fn cross_country() -> Self {
        Self::from_cities(ROUTE_CITIES.to_vec(), Some(PAPER_TOTAL_M))
    }

    /// Build a route through `cities` in order. If `target_total_m` is given,
    /// odometer lengths are scaled so the total matches (road curvature);
    /// otherwise geometric lengths are used unchanged.
    ///
    /// # Panics
    /// Panics if fewer than two cities are given.
    pub fn from_cities(cities: Vec<City>, target_total_m: Option<f64>) -> Self {
        assert!(cities.len() >= 2, "a route needs at least two waypoints");
        let geom_total: f64 = cities
            .windows(2)
            .map(|w| w[0].center.haversine_m(&w[1].center))
            .sum();
        assert!(geom_total > 0.0, "route has zero length");
        let road_factor = target_total_m.map_or(1.0, |t| t / geom_total);

        let mut segments = Vec::with_capacity(cities.len() - 1);
        let mut city_odometer_m = Vec::with_capacity(cities.len());
        let mut cursor = 0.0;
        city_odometer_m.push(0.0);
        for w in cities.windows(2) {
            let from = w[0].center;
            let to = w[1].center;
            let len = from.haversine_m(&to) * road_factor;
            segments.push(Segment {
                from,
                to,
                start_m: cursor,
                len_m: len,
                bearing_deg: from.bearing_deg(&to),
            });
            cursor += len;
            city_odometer_m.push(cursor);
        }
        Route {
            segments,
            cities,
            city_odometer_m,
            total_m: cursor,
            road_factor,
        }
    }

    /// Total odometer length, meters.
    pub fn total_m(&self) -> f64 {
        self.total_m
    }

    /// Road-curvature factor applied to geometric segment lengths.
    pub fn road_factor(&self) -> f64 {
        self.road_factor
    }

    /// The waypoint cities, in route order.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Odometer distance at which the route passes city `id`.
    pub fn city_odometer_m(&self, id: CityId) -> f64 {
        self.city_odometer_m[id.0]
    }

    /// Position and bearing at odometer distance `od_m` (clamped to the
    /// route's extent).
    pub fn point_at(&self, od_m: f64) -> RoutePoint {
        let od = od_m.clamp(0.0, self.total_m);
        let idx = self.segment_index(od);
        let seg = &self.segments[idx];
        let t = if seg.len_m > 0.0 {
            (od - seg.start_m) / seg.len_m
        } else {
            0.0
        };
        RoutePoint {
            odometer_m: od,
            pos: seg.from.lerp(&seg.to, t),
            bearing_deg: seg.bearing_deg,
        }
    }

    fn segment_index(&self, od: f64) -> usize {
        // Binary search over segment start offsets.
        match self
            .segments
            .binary_search_by(|s| s.start_m.total_cmp(&od))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => (i - 1).min(self.segments.len() - 1),
        }
    }

    /// Nearest city (by odometer, which matches "distance along the drive")
    /// and the odometer gap to its closest approach, in meters, scaled by
    /// the city's urban-radius factor for region classification.
    pub fn nearest_city(&self, od_m: f64) -> (CityId, f64) {
        // `city_odometer_m` is strictly increasing, so the nearest city is
        // one of the two flanking the insertion point. On an exact midpoint
        // tie the earlier city wins, matching the linear scan this replaces.
        let cods = &self.city_odometer_m;
        let i = cods.partition_point(|&c| c < od_m);
        let best = if i == 0 {
            0
        } else if i == cods.len() {
            cods.len() - 1
        } else if od_m - cods[i - 1] <= cods[i] - od_m {
            i - 1
        } else {
            i
        };
        (CityId(best), (od_m - cods[best]).abs())
    }

    /// Region kind at odometer distance `od_m`.
    ///
    /// Uses odometer distance to the nearest waypoint city, scaled by the
    /// city's size factor; this matches the intuition that a drive *through*
    /// a metro spends more road-miles in its urban area.
    pub fn region_at(&self, od_m: f64) -> RegionKind {
        let (id, gap) = self.nearest_city(od_m);
        RegionKind::classify(gap, self.cities[id.0].scale)
    }

    /// Timezone at odometer distance `od_m`.
    pub fn timezone_at(&self, od_m: f64) -> Timezone {
        Timezone::from_longitude(self.point_at(od_m).pos.lon)
    }

    /// Fraction of the route (by odometer) in each region kind, computed by
    /// sampling every `step_m` meters. Used for calibration checks.
    pub fn region_mix(&self, step_m: f64) -> [(RegionKind, f64); 4] {
        let mut counts = [0usize; 4];
        let mut n = 0usize;
        let mut od = 0.0;
        while od < self.total_m {
            let r = self.region_at(od);
            let i = RegionKind::ALL.iter().position(|&k| k == r).expect("known region");
            counts[i] += 1;
            n += 1;
            od += step_m;
        }
        let mut out = [(RegionKind::UrbanCore, 0.0); 4];
        for (i, k) in RegionKind::ALL.iter().enumerate() {
            out[i] = (*k, counts[i] as f64 / n.max(1) as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_country_total_matches_table1() {
        let r = Route::cross_country();
        assert!((r.total_m() - PAPER_TOTAL_M).abs() < 1.0, "{}", r.total_m());
    }

    #[test]
    fn road_factor_is_plausible() {
        // Roads are 5-40% longer than great-circle chords.
        let r = Route::cross_country();
        assert!(
            (1.02..1.45).contains(&r.road_factor()),
            "{}",
            r.road_factor()
        );
    }

    #[test]
    fn point_at_start_is_la_and_end_is_boston() {
        let r = Route::cross_country();
        let start = r.point_at(0.0).pos;
        let end = r.point_at(r.total_m()).pos;
        assert!(start.haversine_m(&ROUTE_CITIES[0].center) < 1.0);
        assert!(end.haversine_m(&ROUTE_CITIES.last().unwrap().center) < 1.0);
    }

    #[test]
    fn point_at_clamps_out_of_range() {
        let r = Route::cross_country();
        let before = r.point_at(-5_000.0);
        let after = r.point_at(r.total_m() + 5_000.0);
        assert_eq!(before.odometer_m, 0.0);
        assert_eq!(after.odometer_m, r.total_m());
    }

    #[test]
    fn odometer_monotone_in_position() {
        // Walking the odometer moves the position continuously: consecutive
        // samples 1 km apart should be < 2 km apart geometrically.
        let r = Route::cross_country();
        let mut prev = r.point_at(0.0).pos;
        let mut od = 1_000.0;
        while od < r.total_m() {
            let p = r.point_at(od).pos;
            let d = prev.haversine_m(&p);
            assert!(d < 2_000.0, "jump of {d} m at odometer {od}");
            prev = p;
            od += 1_000.0;
        }
    }

    #[test]
    fn city_centers_are_urban_core() {
        let r = Route::cross_country();
        for (i, c) in r.cities().iter().enumerate() {
            if c.major {
                let od = r.city_odometer_m(CityId(i));
                assert_eq!(
                    r.region_at(od),
                    RegionKind::UrbanCore,
                    "{} center should be urban core",
                    c.name
                );
            }
        }
    }

    #[test]
    fn region_mix_is_mostly_highway() {
        // A cross-country drive is dominated by interstates; cities are a
        // minority of route miles.
        let r = Route::cross_country();
        let mix = r.region_mix(2_000.0);
        let highway = mix
            .iter()
            .find(|(k, _)| *k == RegionKind::Highway)
            .unwrap()
            .1;
        assert!(highway > 0.35, "highway fraction {highway}");
        let urban_core = mix
            .iter()
            .find(|(k, _)| *k == RegionKind::UrbanCore)
            .unwrap()
            .1;
        assert!(urban_core < 0.25, "urban-core fraction {urban_core}");
    }

    #[test]
    fn timezones_partition_route_in_order() {
        let r = Route::cross_country();
        let mut last = Timezone::Pacific;
        let mut od = 0.0;
        while od <= r.total_m() {
            let tz = r.timezone_at(od);
            assert!(tz >= last, "timezone went backwards at {od}");
            last = tz;
            od += 10_000.0;
        }
        assert_eq!(last, Timezone::Eastern);
    }

    #[test]
    fn cities_appear_at_increasing_odometer() {
        let r = Route::cross_country();
        for w in (0..r.cities().len()).collect::<Vec<_>>().windows(2) {
            assert!(r.city_odometer_m(CityId(w[0])) < r.city_odometer_m(CityId(w[1])));
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_city_route_panics() {
        let _ = Route::from_cities(vec![ROUTE_CITIES[0].clone()], None);
    }

    #[test]
    fn nearest_city_matches_linear_scan() {
        let r = Route::cross_country();
        let linear = |od_m: f64| {
            let mut best = (CityId(0), f64::INFINITY);
            for (i, &cod) in r.city_odometer_m.iter().enumerate() {
                let d = (od_m - cod).abs();
                if d < best.1 {
                    best = (CityId(i), d);
                }
            }
            best
        };
        let mut od = -10_000.0;
        while od < r.total_m() + 20_000.0 {
            let (li, ld) = linear(od);
            let (bi, bd) = r.nearest_city(od);
            assert_eq!(li, bi, "city id at od {od}");
            assert_eq!(ld.to_bits(), bd.to_bits(), "distance at od {od}");
            od += 997.0;
        }
        // Exact midpoint ties must pick the earlier city (first-wins).
        let mid = (r.city_odometer_m[0] + r.city_odometer_m[1]) / 2.0;
        if (mid - r.city_odometer_m[0]) == (r.city_odometer_m[1] - mid) {
            assert_eq!(r.nearest_city(mid).0, CityId(0));
        }
    }
}
