//! Fig. 5: throughput CDFs per timezone.
//!
//! §5.3's headline observations: Pacific is the best zone for everyone
//! (AT&T DL excepted, which peaks in Eastern), Mountain is poor for all
//! three carriers, and Verizon's Eastern performance is its worst despite
//! its best Eastern 5G coverage.

use std::sync::Arc;

use wheels_geo::timezone::Timezone;
use wheels_ran::operator::Operator;
use wheels_ran::Direction;

use crate::ecdf::Ecdf;
use crate::index::{AnalysisIndex, EcdfQuery, QueryMetric};
use crate::render::{cdf_header, cdf_row};

/// Per-(operator, timezone, direction) throughput CDFs.
#[derive(Debug, Clone)]
pub struct TimezonePerf {
    /// (op, tz, direction, ECDF of 500 ms samples).
    pub series: Vec<(Operator, Timezone, Direction, Arc<Ecdf>)>,
}

/// Compute Fig. 5 from memoized index queries.
pub fn compute(ix: &AnalysisIndex<'_>) -> TimezonePerf {
    let mut series = Vec::new();
    for &op in ix.ops() {
        for tz in Timezone::ALL {
            for dir in Direction::BOTH {
                let metric = match dir {
                    Direction::Downlink => QueryMetric::TputDl,
                    Direction::Uplink => QueryMetric::TputUl,
                };
                let e = ix.query(EcdfQuery::metric(op, metric).tz(tz));
                series.push((op, tz, dir, e));
            }
        }
    }
    TimezonePerf { series }
}

impl TimezonePerf {
    /// One series.
    pub fn get(&self, op: Operator, tz: Timezone, dir: Direction) -> &Ecdf {
        &self
            .series
            .iter()
            .find(|(o, t, d, _)| *o == op && *t == tz && *d == dir)
            .expect("all combos computed")
            .3
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 5 — throughput by timezone (Mbps)");
        out.push('\n');
        for (op, tz, dir, e) in &self.series {
            if e.is_empty() {
                continue;
            }
            out.push_str(&cdf_row(
                &format!("{} {} {}", op.code(), tz.label(), dir.label()),
                e,
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn all_series_present() {
        let f = compute(small_ix());
        assert_eq!(f.series.len(), 3 * 4 * 2);
    }

    #[test]
    fn pacific_beats_mountain_for_tmobile() {
        // §5.3 obs (1) & (3): Pacific strongest, Mountain weak.
        let f = compute(small_ix());
        let pac = f.get(Operator::TMobile, Timezone::Pacific, Direction::Downlink);
        let mtn = f.get(Operator::TMobile, Timezone::Mountain, Direction::Downlink);
        // Needs a few hundred samples per zone to rise above load noise;
        // the miniature fixture sometimes has fewer — skip then (the
        // full-scale repro run checks this for real).
        if pac.len() > 600 && mtn.len() > 600 {
            assert!(
                pac.percentile(75.0) > mtn.percentile(75.0),
                "Pacific p75 {} vs Mountain p75 {}",
                pac.percentile(75.0),
                mtn.percentile(75.0)
            );
        }
    }

    #[test]
    fn render_contains_zones() {
        let r = compute(small_ix()).render();
        assert!(r.contains("Pacific") && r.contains("Eastern"));
    }
}
