//! Fig. 15 (Verizon) / Fig. 21 (all operators): 360° video streaming.

use wheels_netsim::server::ServerKind;
use wheels_ran::operator::Operator;
use wheels_xcal::database::{TestKind, TestRecord};

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};
use crate::stats::pearson;

/// One operator's 360° streaming results.
#[derive(Debug, Clone)]
pub struct OpVideoResults {
    /// Operator.
    pub op: Operator,
    /// Per-session average QoE while driving.
    pub qoe: Ecdf,
    /// Per-session rebuffer fraction while driving.
    pub rebuffer: Ecdf,
    /// Per-session average bitrate (Mbps) while driving.
    pub bitrate: Ecdf,
    /// Best static QoE.
    pub best_static_qoe: Option<f64>,
    /// (frac hs5G, QoE, server kind) per driving session.
    pub qoe_vs_hs5g: Vec<(f64, f64, ServerKind)>,
    /// Pearson r between handover count and QoE.
    pub ho_qoe_corr: f64,
}

/// Fig. 15 data.
#[derive(Debug, Clone)]
pub struct VideoResults {
    /// Per-operator results.
    pub per_op: Vec<OpVideoResults>,
}

fn sessions<'a>(
    ix: &'a AnalysisIndex<'a>,
    op: Operator,
    is_static: bool,
) -> impl Iterator<Item = &'a TestRecord> + 'a {
    ix.records(op, TestKind::AppVideo, is_static)
}

/// Compute video results from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> VideoResults {
    let per_op = ix
        .ops()
        .iter()
        .map(|&op| {
            let qoe = Ecdf::new(
                sessions(ix, op, false).filter_map(|r| r.app.as_ref()?.qoe.map(f64::from)),
            );
            let rebuffer = Ecdf::new(
                sessions(ix, op, false)
                    .filter_map(|r| r.app.as_ref()?.rebuffer_frac.map(f64::from)),
            );
            let bitrate = Ecdf::new(
                sessions(ix, op, false)
                    .filter_map(|r| r.app.as_ref()?.avg_bitrate_mbps.map(f64::from)),
            );
            let best_static_qoe = sessions(ix, op, true)
                .filter_map(|r| r.app.as_ref()?.qoe.map(f64::from))
                .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))));
            let qoe_vs_hs5g: Vec<(f64, f64, ServerKind)> = sessions(ix, op, false)
                .filter_map(|r| {
                    Some((
                        r.frac_hs5g as f64,
                        r.app.as_ref()?.qoe? as f64,
                        r.server_kind,
                    ))
                })
                .collect();
            let pairs: Vec<(f64, f64)> = sessions(ix, op, false)
                .filter_map(|r| Some((r.handovers.len() as f64, r.app.as_ref()?.qoe? as f64)))
                .collect();
            let ho_qoe_corr = pearson(
                &pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
                &pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
            );
            OpVideoResults {
                op,
                qoe,
                rebuffer,
                bitrate,
                best_static_qoe,
                qoe_vs_hs5g,
                ho_qoe_corr,
            }
        })
        .collect();
    VideoResults { per_op }
}

impl VideoResults {
    /// Results for one operator.
    pub fn for_op(&self, op: Operator) -> &OpVideoResults {
        self.per_op
            .iter()
            .find(|p| p.op == op)
            .expect("all operators computed")
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 15/21 — 360° video streaming (per session)");
        out.push('\n');
        for p in &self.per_op {
            out.push_str(&cdf_row(&format!("{} QoE", p.op.code()), &p.qoe));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} rebuffer frac", p.op.code()), &p.rebuffer));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} bitrate (Mbps)", p.op.code()), &p.bitrate));
            out.push('\n');
            out.push_str(&format!(
                "  {} negative-QoE sessions: {:.0}%, best static QoE {:?}, r(HOs,QoE)={:+.2}\n",
                p.op.code(),
                p.qoe.frac_below(0.0) * 100.0,
                p.best_static_qoe.map(|v| v.round()),
                p.ho_qoe_corr
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::small_ix;

    #[test]
    fn driving_qoe_far_below_static() {
        // §7.2: driving median -53.75 vs best static 96.29.
        let f = compute(small_ix());
        let p = f.for_op(Operator::Verizon);
        if let Some(best) = p.best_static_qoe {
            assert!(best > 50.0, "best static QoE {best}");
            assert!(p.qoe.median() < best - 40.0);
        }
    }

    #[test]
    fn many_sessions_negative() {
        // §7.2: QoE negative for ~40 % of driving runs.
        let f = compute(small_ix());
        let mut total = 0usize;
        let mut neg = 0usize;
        for op in Operator::ALL {
            let e = &f.for_op(op).qoe;
            total += e.len();
            neg += (e.frac_below(0.0) * e.len() as f64).round() as usize;
        }
        if total >= 20 {
            let frac = neg as f64 / total as f64;
            assert!((0.10..0.85).contains(&frac), "negative fraction {frac}");
        }
    }

    #[test]
    fn rebuffering_can_dominate_playback() {
        // §7.2: rebuffering up to 87 % of playback time.
        let f = compute(small_ix());
        let max = Operator::ALL
            .iter()
            .map(|&op| f.for_op(op).rebuffer.max())
            .fold(0.0, f64::max);
        // At fixture scale (~20 sessions/op) the extreme stalls are
        // rarer; the full-scale run reaches the paper's 80+%.
        assert!(max > 0.15, "max rebuffer frac {max}");
    }

    #[test]
    fn qoe_uncorrelated_with_handovers() {
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.qoe.len() < 30 {
                continue;
            }
            assert!(p.ho_qoe_corr.abs() < 0.55, "{op}");
        }
    }
}
