//! Table 2: Pearson correlation between throughput and the KPIs.
//!
//! The paper's central negative result: no single KPI — RSRP, MCS, CA,
//! BLER, speed, or handovers — correlates strongly with throughput, and
//! which KPI matters most differs per operator and direction.

use wheels_ran::operator::Operator;
use wheels_ran::Direction;

use crate::index::AnalysisIndex;

/// The six KPIs of Table 2, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kpi {
    /// Primary cell RSRP.
    Rsrp,
    /// Primary cell MCS.
    Mcs,
    /// Carrier aggregation count.
    Ca,
    /// Primary cell BLER.
    Bler,
    /// Vehicle speed.
    Speed,
    /// Handovers in the window.
    Handover,
}

impl Kpi {
    /// Column order of Table 2.
    pub const ALL: [Kpi; 6] = [Kpi::Rsrp, Kpi::Mcs, Kpi::Ca, Kpi::Bler, Kpi::Speed, Kpi::Handover];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Kpi::Rsrp => "RSRP",
            Kpi::Mcs => "MCS",
            Kpi::Ca => "CA",
            Kpi::Bler => "BLER",
            Kpi::Speed => "Speed",
            Kpi::Handover => "HO",
        }
    }
}

/// The full table: r per (operator, direction, KPI).
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Correlation entries.
    pub entries: Vec<(Operator, Direction, Kpi, f64)>,
}

/// Assemble Table 2 from the index's pre-computed correlation rows
/// ([`crate::index::KPI_COLUMNS`] Pearson r values per (op, dir), in
/// [`Kpi::ALL`] column order).
pub fn compute(ix: &AnalysisIndex<'_>) -> Table2 {
    let mut entries = Vec::new();
    for &op in ix.ops() {
        for dir in Direction::BOTH {
            let rs = ix.kpi_correlations(op, dir);
            for (j, kpi) in Kpi::ALL.into_iter().enumerate() {
                entries.push((op, dir, kpi, rs[j]));
            }
        }
    }
    Table2 { entries }
}

impl Table2 {
    /// One cell of the table.
    pub fn r(&self, op: Operator, dir: Direction, kpi: Kpi) -> f64 {
        self.entries
            .iter()
            .find(|(o, d, k, _)| *o == op && *d == dir && *k == kpi)
            .expect("all combos computed")
            .3
    }

    /// Render in the paper's layout (DL and UL columns per KPI).
    pub fn render(&self) -> String {
        let mut out =
            String::from("Table 2 — Pearson r: throughput vs KPI (DL / UL per operator)\n");
        out.push_str(&format!("{:<10}", ""));
        for kpi in Kpi::ALL {
            out.push_str(&format!("{:>14}", kpi.label()));
        }
        out.push('\n');
        let mut ops: Vec<Operator> = Vec::new();
        for (op, _, _, _) in &self.entries {
            if !ops.contains(op) {
                ops.push(*op);
            }
        }
        for op in ops {
            out.push_str(&format!("{:<10}", op.label()));
            for kpi in Kpi::ALL {
                let dl = self.r(op, Direction::Downlink, kpi);
                let ul = self.r(op, Direction::Uplink, kpi);
                out.push_str(&format!("  {:+.2}/{:+.2}", dl, ul));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn no_kpi_correlates_strongly() {
        // The paper's key finding: |r| stays below ~0.65 everywhere.
        let t = compute(small_ix());
        for (op, dir, kpi, r) in &t.entries {
            assert!(
                r.abs() < 0.75,
                "{op} {} {}: r = {r}",
                dir.label(),
                kpi.label()
            );
        }
    }

    #[test]
    fn handover_correlation_near_zero() {
        // Table 2: HO column is -0.02..-0.05 for everyone.
        let t = compute(small_ix());
        for op in Operator::ALL {
            for dir in Direction::BOTH {
                let r = t.r(op, dir, Kpi::Handover);
                assert!(r.abs() < 0.25, "{op} {}: HO r = {r}", dir.label());
            }
        }
    }

    #[test]
    fn speed_correlation_weakly_negative() {
        let t = compute(small_ix());
        for op in Operator::ALL {
            let r = t.r(op, Direction::Downlink, Kpi::Speed);
            assert!(r < 0.15, "{op}: speed r = {r}");
        }
    }

    #[test]
    fn verizon_dl_rsrp_below_att_dl_rsrp() {
        // The beamwidth paradox: Verizon DL RSRP r ≈ 0.06 vs AT&T 0.35.
        let t = compute(small_ix());
        let v = t.r(Operator::Verizon, Direction::Downlink, Kpi::Rsrp);
        let a = t.r(Operator::Att, Direction::Downlink, Kpi::Rsrp);
        assert!(v < a + 0.30, "V {v} vs A {a}");
    }

    #[test]
    fn mcs_positively_correlated() {
        let t = compute(small_ix());
        for op in Operator::ALL {
            for dir in Direction::BOTH {
                let r = t.r(op, dir, Kpi::Mcs);
                assert!(r > -0.05, "{op} {}: MCS r = {r}", dir.label());
            }
        }
    }

    #[test]
    fn render_has_all_rows() {
        let r = compute(small_ix()).render();
        for op in Operator::ALL {
            assert!(r.contains(op.label()));
        }
        assert!(r.contains("RSRP") && r.contains("HO"));
    }
}
