//! The campaign runner: executes the paper's §3 methodology.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wheels_apps::ar::ArApp;
use wheels_apps::cav::CavApp;
use wheels_apps::gaming::GamingSession;
use wheels_apps::video::VideoSession;
use wheels_geo::trip::DrivePlan;
use wheels_netsim::bulk::{BulkTransferTest, ThroughputSample};
use wheels_netsim::ping::{PingLinkState, RttTest};
use wheels_netsim::rtt::RttModel;
use wheels_netsim::server::{Server, ServerSelector};
use wheels_fleet::FleetUnitSketch;
use wheels_ran::cell::CellDb;
use wheels_ran::deployment::{build_all, build_ops};
use wheels_ran::fleet::{FleetLoad, FleetParams};
use wheels_ran::handover::HandoverEvent;
use wheels_ran::load::LoadParams;
use wheels_ran::operator::Operator;
use wheels_ran::tuning::OperatorTuning;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::ue::{LinkSnapshot, UeParams, UeRadio};
use wheels_ran::Direction;
use wheels_xcal::database::{AppMetrics, ConsolidatedDb, TestKind, TestRecord};
use wheels_xcal::handover_logger::PassiveLogger;
use wheels_xcal::kpi::KpiSample;
use wheels_xcal::logger::{XcalLog, XcalLogger};
use wheels_xcal::sync::{AppLog, AppStampFormat};

use wheels_netsim::rng;

use crate::checkpoint::{self, CheckpointKey, CheckpointWriter, LoadedCheckpoints};
use crate::config::CampaignConfig;
use crate::driver::{demand_for, tcp_base_rtt_s, AppLinkAdapter, LinkDriver};
use crate::executor::{merge_shard_slots, ExecInterrupt, Shard, UnitOutcome, WorkUnit};
use crate::integrity::{IntegrityReport, ResumeReport, UnitStatus};
use crate::scenario::{Schedule, ScenarioSpec};
use wheels_netsim::faults::ProcessKill;

/// One phone: a UE plus its RTT model.
struct Phone {
    op: Operator,
    ue: UeRadio,
    rtt: RttModel,
    /// Recycled snapshot storage, threaded through every test this phone
    /// runs (each [`LinkDriver`] adopts it; `finish` hands it back).
    snap_scratch: Vec<LinkSnapshot>,
}

impl Phone {
    fn new(op: Operator, db: Arc<CellDb>, params: UeParams, seed: u64) -> Self {
        Phone {
            op,
            ue: UeRadio::new(op, db, params, seed),
            // lint:allow(D4): `seed` is the unit's netsim::rng-derived
            // phone-stream seed; the salt splits off the RTT sub-stream
            rtt: RttModel::new(SmallRng::seed_from_u64(seed ^ 0x5EED_0FF1)),
            snap_scratch: Vec::new(),
        }
    }
}

/// The full result of a supervised campaign: the merged dataset plus the
/// per-unit integrity (data-completeness) report.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The consolidated dataset — with gaps where units were lost.
    pub db: ConsolidatedDb,
    /// Per-unit completeness accounting, canonical schedule order.
    pub integrity: IntegrityReport,
    /// Resume accounting when the run came from
    /// [`Campaign::run_checkpointed_jobs`] with `resume` set: how many
    /// units were restored versus recomputed and what the checkpoint scan
    /// rejected. `None` for non-checkpointed and fresh runs. (The copy in
    /// [`IntegrityReport::resume`] is exported only when the scan saw
    /// damage; this one is always present on resumed runs, for the CLI.)
    pub resume: Option<ResumeReport>,
    /// Merged fleet ground truth, `None` when the campaign ran without a
    /// subscriber population.
    pub fleet: Option<FleetSummary>,
}

/// The fleet's ground-truth load summary for a whole campaign: the
/// panel-total population plus one merged sketch per operator, canonical
/// panel order. Per-unit sketches fold in canonical unit order, so the
/// summary is byte-identical at any `--jobs` and across crash + resume.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Panel-total subscriber population.
    pub population: u64,
    /// Per-operator merged sketches, panel order.
    pub per_op: Vec<(Operator, FleetUnitSketch)>,
}

/// A fail-fast abort: some unit was lost and
/// [`CampaignConfig::fail_fast`](crate::CampaignConfig) is set.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAborted {
    /// The first lost unit, canonical schedule order.
    pub unit: String,
    /// Its terminal error.
    pub error: String,
}

impl std::fmt::Display for CampaignAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign aborted (fail-fast): unit {} lost — {}",
            self.unit, self.error
        )
    }
}

impl std::error::Error for CampaignAborted {}

/// How [`Campaign::run_checkpointed_jobs`] should treat the checkpoint
/// directory.
#[derive(Debug)]
pub struct CheckpointOptions {
    /// Directory holding the checkpoint log (created if missing).
    pub dir: std::path::PathBuf,
    /// Restore valid records before running (`false` = fresh run; any
    /// existing log is truncated).
    pub resume: bool,
    /// Chaos hook: simulate a process death after the k-th durable unit
    /// commit. Test/CI machinery — `None` in normal operation.
    pub kill: Option<ProcessKill>,
}

impl CheckpointOptions {
    /// A fresh checkpointed run writing to `dir`.
    pub fn fresh(dir: impl Into<std::path::PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            resume: false,
            kill: None,
        }
    }

    /// Resume from (and keep appending to) the log in `dir`.
    pub fn resume(dir: impl Into<std::path::PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            resume: true,
            kill: None,
        }
    }

    /// Install the kill-point chaos hook.
    pub fn with_kill(mut self, kill: ProcessKill) -> Self {
        self.kill = Some(kill);
        self
    }
}

/// Why a checkpointed campaign returned no outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// Fail-fast abort: a unit was lost (see [`CampaignAborted`]).
    Aborted(CampaignAborted),
    /// A checkpoint or output write could not be made durable.
    Io {
        /// What was being written.
        context: String,
        /// The underlying I/O error, stringified.
        error: String,
    },
    /// The [`ProcessKill`] chaos hook fired mid-run. Completed units are
    /// durable in the checkpoint log; resume to finish the campaign.
    Killed {
        /// Durable unit commits when the hook fired.
        committed: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Aborted(a) => a.fmt(f),
            CampaignError::Io { context, error } => {
                write!(f, "campaign I/O failure ({context}): {error}")
            }
            CampaignError::Killed { committed } => {
                write!(
                    f,
                    "campaign killed after {committed} durable unit commits (resume to finish)"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CampaignAborted> for CampaignError {
    fn from(a: CampaignAborted) -> Self {
        CampaignError::Aborted(a)
    }
}

/// Optional side products of a run (for log-sync verification).
#[derive(Debug, Default)]
pub struct CampaignLogs {
    /// XCAL logs, one per test.
    pub xcal: Vec<XcalLog>,
    /// App-side logs, one per test, in the same order.
    pub app: Vec<AppLog>,
}

/// The campaign: world construction + test execution.
///
/// All fields are immutable after construction (the cell databases sit
/// behind `Arc`), so a `Campaign` is `Sync` and its work units can run on
/// any number of worker threads — see [`crate::executor`].
pub struct Campaign {
    pub(crate) cfg: CampaignConfig,
    pub(crate) plan: DrivePlan,
    /// The operator panel, in schedule order.
    pub(crate) ops: Vec<Operator>,
    /// Per-operator edge-server entitlement, [`Campaign::ops`] order.
    pub(crate) edge: Vec<bool>,
    pub(crate) dbs: Vec<Arc<CellDb>>,
    /// Per-operator tuning (load scales), [`Campaign::ops`] order.
    pub(crate) tunings: Vec<OperatorTuning>,
    /// Per-operator fleet load models, [`Campaign::ops`] order; all
    /// `None` when the campaign has no subscriber population.
    pub(crate) fleet: Vec<Option<Arc<FleetLoad>>>,
    pub(crate) selector: ServerSelector,
    pub(crate) sched: Schedule,
    /// Hash of the world definition (scenario spec + output-affecting
    /// config), stamped on every checkpoint record — see
    /// [`checkpoint::world_hash`].
    pub(crate) world_hash: u64,
}

impl Campaign {
    /// Build the paper's world (route, drive plan, cell deployments) for
    /// `cfg` — the direct code path, equivalent to compiling
    /// [`ScenarioSpec::paper`] (a test asserts byte-identity).
    pub fn new(cfg: CampaignConfig) -> Self {
        let plan = DrivePlan::cross_country(cfg.seed);
        let dbs: Vec<Arc<CellDb>> = build_all(plan.route(), cfg.seed)
            .into_iter()
            .map(Arc::new)
            .collect();
        let world_hash = checkpoint::world_hash(&ScenarioSpec::paper(), &cfg);
        let ops = Operator::ALL.to_vec();
        let fleet = build_fleet(&cfg, None, &ops, &dbs);
        Campaign {
            cfg,
            plan,
            edge: ops.iter().map(|op| op.has_edge_servers()).collect(),
            tunings: ops.iter().map(|_| OperatorTuning::NEUTRAL).collect(),
            fleet,
            ops,
            dbs,
            selector: ServerSelector::new(),
            sched: Schedule::paper(),
            world_hash,
        }
    }

    /// Build the world a [`ScenarioSpec`] describes. The `paper` spec
    /// reproduces [`Campaign::new`] byte-for-byte; other specs swap in
    /// their own route, operator panel, server fleet, and schedule.
    ///
    /// # Panics
    /// Panics on an invalid spec; call [`ScenarioSpec::validate`] first
    /// when the spec comes from outside.
    pub fn from_spec(spec: &ScenarioSpec, cfg: CampaignConfig) -> Self {
        let world = spec.build(cfg.seed);
        let panel: Vec<_> = world.ops.iter().map(|&(op, tuning, _)| (op, tuning)).collect();
        let dbs: Vec<Arc<CellDb>> = build_ops(world.plan.route(), cfg.seed, &panel)
            .into_iter()
            .map(Arc::new)
            .collect();
        let world_hash = checkpoint::world_hash(spec, &cfg);
        let ops: Vec<Operator> = world.ops.iter().map(|&(op, _, _)| op).collect();
        let fleet = build_fleet(&cfg, world.subscribers, &ops, &dbs);
        Campaign {
            cfg,
            plan: world.plan,
            edge: world.ops.iter().map(|&(_, _, e)| e).collect(),
            tunings: world.ops.iter().map(|&(_, t, _)| t).collect(),
            fleet,
            ops,
            dbs,
            selector: world.selector,
            sched: world.schedule,
            world_hash,
        }
    }

    /// The drive plan in use.
    pub fn plan(&self) -> &DrivePlan {
        &self.plan
    }

    /// The operator panel, in schedule order.
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// Whether the app suite runs (config and scenario both opt in).
    pub(crate) fn apps_enabled(&self) -> bool {
        self.cfg.run_apps && self.sched.run_apps
    }

    /// The cell database of one operator.
    pub fn db_for(&self, op: Operator) -> Arc<CellDb> {
        let (_, db) = self
            .ops
            .iter()
            .zip(&self.dbs)
            .find(|(&o, _)| o == op)
            // lint:allow(D7): every work unit is generated from self.ops, so the operator is always on the panel
            .expect("operator in panel");
        Arc::clone(db)
    }

    /// One operator's tuning.
    fn tuning_for(&self, op: Operator) -> &OperatorTuning {
        let (_, tuning) = self
            .ops
            .iter()
            .zip(&self.tunings)
            .find(|(&o, _)| o == op)
            // lint:allow(D7): every work unit is generated from self.ops, so the operator is always on the panel
            .expect("operator in panel");
        tuning
    }

    /// One operator's fleet load model, when the campaign has one.
    fn fleet_for(&self, op: Operator) -> Option<Arc<FleetLoad>> {
        let (_, fleet) = self
            .ops
            .iter()
            .zip(&self.fleet)
            .find(|(&o, _)| o == op)
            // lint:allow(D7): every work unit is generated from self.ops, so the operator is always on the panel
            .expect("operator in panel");
        fleet.clone()
    }

    /// The panel-total subscriber population (0 without a fleet).
    pub fn fleet_population(&self) -> u64 {
        self.fleet
            .iter()
            .flatten()
            .map(|f| f.population())
            .sum()
    }

    /// One operator's edge-server entitlement.
    fn has_edge(&self, op: Operator) -> bool {
        let (_, edge) = self
            .ops
            .iter()
            .zip(&self.edge)
            .find(|(&o, _)| o == op)
            // lint:allow(D7): every work unit is generated from self.ops, so the operator is always on the panel
            .expect("operator in panel");
        *edge
    }

    /// Execute the campaign and return the consolidated database.
    pub fn run(&self) -> ConsolidatedDb {
        self.run_jobs(1)
    }

    /// Execute the campaign on `jobs` worker threads.
    ///
    /// The output is byte-identical to [`Campaign::run`] for every `jobs`
    /// value: both paths run the same per-unit schedule with per-unit
    /// derived RNG streams and merge shards in canonical unit order (see
    /// `tests/parallel_equivalence.rs`). This tolerant path never aborts
    /// — lost units simply leave gaps (it ignores
    /// [`CampaignConfig::fail_fast`]; use [`Campaign::run_supervised_jobs`]
    /// for fail-fast semantics and the integrity report).
    pub fn run_jobs(&self, jobs: usize) -> ConsolidatedDb {
        self.execute_and_merge(jobs).db
    }

    /// [`Campaign::run_supervised_jobs`] on the caller's thread.
    pub fn run_supervised(&self) -> Result<CampaignOutcome, CampaignAborted> {
        self.run_supervised_jobs(1)
    }

    /// Execute the campaign under supervision on `jobs` worker threads,
    /// returning the dataset *and* the per-unit integrity report.
    ///
    /// With [`CampaignConfig::fail_fast`] set, a campaign with any
    /// [`UnitStatus::Lost`] unit aborts with [`CampaignAborted`] naming
    /// the first lost unit in canonical order (deterministic regardless
    /// of `jobs`); otherwise lost units degrade to gaps in the dataset
    /// and the run always succeeds.
    pub fn run_supervised_jobs(&self, jobs: usize) -> Result<CampaignOutcome, CampaignAborted> {
        let outcome = self.execute_and_merge(jobs);
        if self.cfg.fail_fast {
            if let Some(u) = outcome
                .integrity
                .units
                .iter()
                .find(|u| u.status == UnitStatus::Lost)
            {
                return Err(CampaignAborted {
                    unit: u.unit.clone(),
                    error: u.error.clone().unwrap_or_else(|| "unknown".into()),
                });
            }
        }
        Ok(outcome)
    }

    /// Run the full supervised schedule and fold the surviving shards
    /// plus the per-unit reports into a [`CampaignOutcome`].
    fn execute_and_merge(&self, jobs: usize) -> CampaignOutcome {
        let units = self.plan_units();
        let outcomes = self.execute_units(&units, jobs);
        self.fold_outcomes(&units, outcomes)
    }

    /// Fold per-unit outcomes (canonical order) into the merged dataset
    /// and integrity report. Restored and freshly computed outcomes fold
    /// identically — this is where resume regains byte-identity.
    fn fold_outcomes(&self, units: &[WorkUnit], outcomes: Vec<UnitOutcome>) -> CampaignOutcome {
        let mut slots = Vec::with_capacity(outcomes.len());
        let mut reports = Vec::with_capacity(outcomes.len());
        // Fleet sketches merge in canonical unit order (`outcomes` is in
        // `units` order regardless of worker scheduling), grouped by the
        // unit's operator.
        let mut per_op: Vec<Option<FleetUnitSketch>> = self.ops.iter().map(|_| None).collect();
        for (unit, mut o) in units.iter().zip(outcomes) {
            if let Some(shard) = o.shard.as_mut() {
                if let Some(sketch) = shard.fleet.take() {
                    let op = match *unit {
                        WorkUnit::Drive { op, .. }
                        | WorkUnit::Static { op, .. }
                        | WorkUnit::Passive { op } => op,
                    };
                    let slot = self
                        .ops
                        .iter()
                        .position(|&o2| o2 == op)
                        .and_then(|idx| per_op.get_mut(idx))
                        // lint:allow(D7): every work unit is generated from self.ops, so the operator is always on the panel
                        .expect("operator in panel");
                    match slot {
                        Some(acc) => acc.merge(&sketch),
                        slot => *slot = Some(sketch),
                    }
                }
            }
            slots.push(o.shard);
            reports.push(o.report);
        }
        let fleet = if self.fleet.iter().any(Option::is_some) {
            Some(FleetSummary {
                population: self.fleet_population(),
                per_op: self
                    .ops
                    .iter()
                    .zip(per_op)
                    .map(|(&op, s)| (op, s.unwrap_or_else(FleetUnitSketch::empty)))
                    .collect(),
            })
        } else {
            None
        };
        CampaignOutcome {
            db: merge_shard_slots(slots),
            integrity: IntegrityReport {
                profile: self.cfg.fault_profile.label().to_string(),
                seed: self.cfg.seed,
                max_retries: self.cfg.max_retries,
                units: reports,
                resume: None,
            },
            resume: None,
            fleet,
        }
    }

    /// The identity stamped on this campaign's checkpoint records: a
    /// record is restorable only if its world hash, seed, and scale all
    /// match — anything else is another run's data.
    pub fn checkpoint_key(&self) -> CheckpointKey {
        CheckpointKey {
            world_hash: self.world_hash,
            seed: self.cfg.seed,
            scale_bits: self.cfg.scale.to_bits(),
        }
    }

    /// [`Campaign::run_supervised_jobs`] with durable per-unit
    /// checkpoints — the crash-safe way to run a long campaign.
    ///
    /// Every completed unit is appended to
    /// `opts.dir/`[`checkpoint::LOG_NAME`] and fsynced before the next
    /// unit starts counting; if the process dies (or the
    /// [`CheckpointOptions::kill`] chaos hook fires), a later run with
    /// [`CheckpointOptions::resume`] set restores every valid record,
    /// recomputes only what's missing or corrupt, and returns a
    /// [`CampaignOutcome`] **byte-identical** to an uninterrupted run —
    /// unit outputs are pure functions of `(config, unit)`, so where the
    /// work happened (before the crash, after it, on which worker) leaves
    /// no trace in the dataset.
    ///
    /// Fresh runs (`resume == false`) truncate any existing log: a
    /// non-resume run must never inherit another run's records. Resumed
    /// runs first compact the log — corrupt, foreign, and torn-tail bytes
    /// are healed out (atomically) so newly appended records stay
    /// reachable. Scan damage is accounted in the returned
    /// [`CampaignOutcome::resume`] and, when records were actually
    /// rejected, in [`IntegrityReport::resume`].
    pub fn run_checkpointed_jobs(
        &self,
        jobs: usize,
        opts: &CheckpointOptions,
    ) -> Result<CampaignOutcome, CampaignError> {
        let io_err = |context: String| {
            move |e: std::io::Error| CampaignError::Io {
                context,
                error: e.to_string(),
            }
        };
        let key = self.checkpoint_key();
        let units = self.plan_units();
        let mut restored: std::collections::BTreeMap<[u64; 3], UnitOutcome> =
            std::collections::BTreeMap::new();
        let mut resume_report = None;
        if opts.resume {
            let loaded = LoadedCheckpoints::load(&opts.dir, key)
                .map_err(io_err(format!("scanning checkpoints in {}", opts.dir.display())))?;
            loaded
                .compact_to(&opts.dir)
                .map_err(io_err(format!("compacting checkpoint log in {}", opts.dir.display())))?;
            let scheduled: std::collections::BTreeSet<[u64; 3]> =
                units.iter().map(|u| u.fault_words()).collect();
            let mut foreign = loaded.foreign_records;
            let mut notes = loaded.notes;
            for (words, ck) in loaded.units {
                if scheduled.contains(&words) {
                    restored.insert(words, ck.into_outcome());
                } else {
                    // Matching key but no such unit: treat as foreign.
                    foreign += 1;
                    notes.push(format!("record for unscheduled unit {words:?}; ignored"));
                }
            }
            resume_report = Some(ResumeReport {
                restored_units: restored.len(),
                recomputed_units: units.len() - restored.len(),
                corrupt_records: loaded.corrupt_records,
                foreign_records: foreign,
                notes,
            });
        }
        let writer = CheckpointWriter::open(&opts.dir, key, !opts.resume)
            .map_err(io_err(format!("opening checkpoint log in {}", opts.dir.display())))?;
        let outcomes = self
            .execute_units_hooked(&units, jobs, restored, Some(&writer), opts.kill.as_ref())
            .map_err(|i| match i {
                ExecInterrupt::Io { context, error } => CampaignError::Io { context, error },
                ExecInterrupt::Killed { committed } => CampaignError::Killed { committed },
            })?;
        let mut outcome = self.fold_outcomes(&units, outcomes);
        if let Some(r) = resume_report {
            // Export the accounting only when the scan rejected records:
            // a clean resume's integrity report must stay byte-identical
            // to the uninterrupted run's (CI `cmp`s them).
            if r.saw_damage() {
                outcome.integrity.resume = Some(r.clone());
            }
            outcome.resume = Some(r);
        }
        if self.cfg.fail_fast {
            if let Some(u) = outcome
                .integrity
                .units
                .iter()
                .find(|u| u.status == UnitStatus::Lost)
            {
                return Err(CampaignError::Aborted(CampaignAborted {
                    unit: u.unit.clone(),
                    error: u.error.clone().unwrap_or_else(|| "unknown".into()),
                }));
            }
        }
        Ok(outcome)
    }

    /// Execute and also reconstruct the raw XCAL/app logs for log-sync
    /// verification (costs extra memory; use at reduced scale).
    pub fn run_with_logs(&self) -> (ConsolidatedDb, CampaignLogs) {
        let db = self.run();
        let logs = self.build_logs(&db);
        (db, logs)
    }

    /// Reconstruct what the two logging sides would have produced for
    /// each record, in final (merged) record order.
    fn build_logs(&self, db: &ConsolidatedDb) -> CampaignLogs {
        let mut logs = CampaignLogs::default();
        for record in &db.records {
            let mut xl = XcalLogger::start(record.op, record.kind.label(), record.start_s);
            for k in &record.kpi {
                xl.log_sample(*k);
            }
            for h in &record.handovers {
                xl.log_handover(h);
            }
            logs.xcal.push(xl.finish(record.timezone));
            // Apps alternate stamp formats, like the paper's mixed tooling.
            let fmt = if record.id.is_multiple_of(2) {
                AppStampFormat::Utc
            } else {
                AppStampFormat::Local(record.timezone)
            };
            logs.app.push(AppLog::stamped(
                record.kind.label(),
                record.op,
                record.start_s,
                fmt,
            ));
        }
        logs
    }

    /// Run one work unit's payload to a shard. Deterministic in
    /// `(config, unit)`: every stream is derived from the campaign seed
    /// and the unit key. Fault injection and panic handling sit above
    /// this, in [`Campaign::run_unit`](crate::executor) — the payload
    /// itself never knows whether the world is hostile.
    ///
    /// Public so benchmarks and diagnostics can run one unit in isolation;
    /// campaign execution goes through the supervised path.
    pub fn run_unit_payload(&self, unit: &WorkUnit) -> Shard {
        match *unit {
            WorkUnit::Drive { op, day } => self.run_drive_day(op, day),
            WorkUnit::Static { op, site_od } => self.run_static_site(op, site_od),
            WorkUnit::Passive { op } => Shard {
                records: Vec::new(),
                passive: Some((op, self.run_passive(op))),
                fleet: None,
            },
        }
    }

    /// One operator's round-robin cycles over one drive day.
    fn run_drive_day(&self, op: Operator, day_idx: usize) -> Shard {
        let mut records = Vec::new();
        let mut next_id: u32 = 0;
        let mut phone = Phone::new(
            op,
            self.db_for(op),
            UeParams {
                load: LoadParams::driving().scaled(&self.tuning_for(op).load),
                fleet: self.fleet_for(op),
                ..Default::default()
            },
            rng::derive_seed(self.cfg.seed, rng::DOMAIN_PHONE, &[op as u64, day_idx as u64]),
        );
        // The three phones sit in the same vehicle and run the same
        // round-robin simultaneously (§3), so the cycle-skip stream is
        // keyed by day only, NOT by operator — Fig. 6 compares operators
        // on concurrently collected samples, and all three Drive units of
        // a day replay the identical skip sequence.
        let mut cycle_rng = rng::stream(self.cfg.seed, rng::DOMAIN_CYCLE, &[day_idx as u64]);
        let cycle_len = self.cycle_duration_s();
        // Total lookup: a day index past the plan yields an empty shard
        // (the work-unit generator only emits in-plan indices).
        let (day_start_s, day_end_s) = match self.plan.days().get(day_idx) {
            Some(day) => (day.start_time_s as f64, day.end_time_s as f64),
            None => (0.0, 0.0),
        };
        let mut t = day_start_s + 60.0;
        while t + cycle_len < day_end_s {
            if cycle_rng.gen::<f64>() < self.cfg.scale {
                t = self.run_cycle(&mut phone, t, None, &mut records, &mut next_id);
            } else {
                t += cycle_len;
            }
        }
        // The drive unit is the fleet's accounting unit: it folds the
        // operator's ground-truth load over the day's span (static and
        // passive units fold nothing, so campaign totals count each
        // subscriber-hour exactly once).
        let fleet = self.fleet_for(op).map(|f| {
            let mut sketch = FleetUnitSketch::empty();
            f.fold_span(day_start_s, day_end_s, &mut sketch);
            sketch
        });
        Shard {
            records,
            passive: None,
            fleet,
        }
    }

    /// Length of one full round-robin cycle including gaps, seconds.
    pub fn cycle_duration_s(&self) -> f64 {
        let g = self.cfg.gap_s;
        let s = &self.sched;
        let net = s.tput_s + g + s.tput_s + g + s.rtt_s + g;
        if self.apps_enabled() {
            net + 4.0 * (s.app_offload_s + g) + s.video_s + g + s.game_s + g
        } else {
            net
        }
    }

    fn run_cycle(
        &self,
        phone: &mut Phone,
        t0: f64,
        static_od: Option<f64>,
        records: &mut Vec<TestRecord>,
        next_id: &mut u32,
    ) -> f64 {
        let g = self.cfg.gap_s;
        let mut t = t0;
        for dir in Direction::BOTH {
            let r = self.run_tput(phone, *next_id, t, dir, static_od);
            t = r.start_s + r.duration_s + g;
            self.push(records, next_id, r);
        }
        let r = self.run_rtt(phone, *next_id, t, static_od);
        t = r.start_s + r.duration_s + g;
        self.push(records, next_id, r);
        if self.apps_enabled() {
            for (kind, compressed) in [
                (TestKind::AppAr, true),
                (TestKind::AppAr, false),
                (TestKind::AppCav, true),
                (TestKind::AppCav, false),
            ] {
                let r = self.run_offload_app(phone, *next_id, t, kind, compressed, static_od);
                t = r.start_s + r.duration_s + g;
                self.push(records, next_id, r);
            }
            let r = self.run_video(phone, *next_id, t, static_od);
            t = r.start_s + r.duration_s + g;
            self.push(records, next_id, r);
            let r = self.run_gaming(phone, *next_id, t, static_od);
            t = r.start_s + r.duration_s + g;
            self.push(records, next_id, r);
        }
        t
    }

    /// Append a record under the next shard-local id (final ids are
    /// reassigned at merge time).
    fn push(&self, records: &mut Vec<TestRecord>, next_id: &mut u32, record: TestRecord) {
        records.push(record);
        *next_id += 1;
    }

    fn server_for(&self, op: Operator, t0: f64, static_od: Option<f64>) -> Server {
        let (pos, tz) = match static_od {
            Some(od) => (
                self.plan.route().point_at(od).pos,
                self.plan.route().timezone_at(od),
            ),
            None => {
                let state = self.plan.state_at(t0);
                (state.pos, state.timezone)
            }
        };
        self.selector.select_for(self.has_edge(op), pos, tz)
    }

    fn run_tput(
        &self,
        phone: &mut Phone,
        id: u32,
        t0: f64,
        dir: Direction,
        static_od: Option<f64>,
    ) -> TestRecord {
        let server = self.server_for(phone.op, t0, static_od);
        let demand = TrafficDemand::Backlog(dir);
        let scratch = std::mem::take(&mut phone.snap_scratch);
        let mut driver = match static_od {
            Some(od) => LinkDriver::static_at(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s, od),
            None => LinkDriver::driving(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s),
        }
        .reusing(scratch);
        let plan = &self.plan;
        let static_pos = static_od.map(|od| plan.route().point_at(od).pos);
        let test = BulkTransferTest {
            duration_s: self.sched.tput_s,
            ..Default::default()
        };
        let samples = test.run(t0, |t| {
            let s = driver.at(t);
            let pos = match static_pos {
                Some(p) => p,
                None => plan.pos_at(t),
            };
            let cap = match dir {
                Direction::Downlink => s.cap_dl_mbps,
                Direction::Uplink => s.cap_ul_mbps,
            };
            (cap, tcp_base_rtt_s(&s, pos, &server))
        });
        let kind = match dir {
            Direction::Downlink => TestKind::ThroughputDl,
            Direction::Uplink => TestKind::ThroughputUl,
        };
        self.finish(
            id,
            phone.op,
            kind,
            t0,
            self.sched.tput_s,
            server,
            static_od,
            driver,
            Some(&samples),
            Vec::new(),
            None,
            &mut phone.snap_scratch,
        )
    }

    fn run_rtt(&self, phone: &mut Phone, id: u32, t0: f64, static_od: Option<f64>) -> TestRecord {
        let server = self.server_for(phone.op, t0, static_od);
        let scratch = std::mem::take(&mut phone.snap_scratch);
        let mut driver = match static_od {
            Some(od) => LinkDriver::static_at(&mut phone.ue, &self.plan, TrafficDemand::Ping, self.cfg.snapshot_tick_s, od),
            None => LinkDriver::driving(&mut phone.ue, &self.plan, TrafficDemand::Ping, self.cfg.snapshot_tick_s),
        }
        .reusing(scratch);
        let plan = &self.plan;
        let static_pos = static_od.map(|od| plan.route().point_at(od).pos);
        let rtt_model = &mut phone.rtt;
        let test = RttTest {
            duration_s: self.sched.rtt_s,
            ..Default::default()
        };
        let samples = test.run(t0, &server, rtt_model, |t| {
            let s = driver.at(t);
            let pos = match static_pos {
                Some(p) => p,
                None => plan.pos_at(t),
            };
            PingLinkState {
                pos,
                tech: s.tech,
                sinr_db: s.sinr_dl_db,
                speed_mps: s.speed_mps,
                in_handover: s.in_handover,
            }
        });
        let rtts: Vec<f32> = samples.iter().map(|s| s.rtt_ms as f32).collect();
        self.finish(
            id,
            phone.op,
            TestKind::Rtt,
            t0,
            self.sched.rtt_s,
            server,
            static_od,
            driver,
            None,
            rtts,
            None,
            &mut phone.snap_scratch,
        )
    }

    fn run_offload_app(
        &self,
        phone: &mut Phone,
        id: u32,
        t0: f64,
        kind: TestKind,
        compressed: bool,
        static_od: Option<f64>,
    ) -> TestRecord {
        let server = self.server_for(phone.op, t0, static_od);
        let demand = demand_for(kind);
        let scratch = std::mem::take(&mut phone.snap_scratch);
        let mut driver = match static_od {
            Some(od) => LinkDriver::static_at(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s, od),
            None => LinkDriver::driving(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s),
        }
        .reusing(scratch);
        let mut metrics = AppMetrics {
            compressed: Some(compressed),
            ..Default::default()
        };
        {
            let mut link = AppLinkAdapter {
                driver: &mut driver,
                rtt: &mut phone.rtt,
                server,
                efficiency: 0.85,
            };
            match kind {
                TestKind::AppAr => {
                    let r = ArApp::default().run(t0, compressed, &mut link);
                    metrics.e2e_ms_mean = Some(r.offload.e2e_mean_ms as f32);
                    metrics.e2e_ms_median = Some(r.offload.e2e_median_ms as f32);
                    metrics.offload_fps = Some(r.offload.offload_fps as f32);
                    metrics.map_accuracy = Some(r.map_accuracy as f32);
                }
                TestKind::AppCav => {
                    let r = CavApp::default().run(t0, compressed, &mut link);
                    metrics.e2e_ms_mean = Some(r.offload.e2e_mean_ms as f32);
                    metrics.e2e_ms_median = Some(r.offload.e2e_median_ms as f32);
                    metrics.offload_fps = Some(r.offload.offload_fps as f32);
                }
                // lint:allow(D7): run_offload_app is dispatched only for the AR/CAV kinds matched above
                _ => unreachable!("run_offload_app only handles AR/CAV"),
            }
        }
        self.finish(
            id,
            phone.op,
            kind,
            t0,
            self.sched.app_offload_s,
            server,
            static_od,
            driver,
            None,
            Vec::new(),
            Some(metrics),
            &mut phone.snap_scratch,
        )
    }

    fn run_video(&self, phone: &mut Phone, id: u32, t0: f64, static_od: Option<f64>) -> TestRecord {
        let server = self.server_for(phone.op, t0, static_od);
        let demand = demand_for(TestKind::AppVideo);
        let scratch = std::mem::take(&mut phone.snap_scratch);
        let mut driver = match static_od {
            Some(od) => LinkDriver::static_at(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s, od),
            None => LinkDriver::driving(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s),
        }
        .reusing(scratch);
        let summary = {
            let mut link = AppLinkAdapter {
                driver: &mut driver,
                rtt: &mut phone.rtt,
                server,
                efficiency: 0.85,
            };
            VideoSession::default().run(t0, &mut link)
        };
        let metrics = AppMetrics {
            qoe: Some(summary.qoe as f32),
            avg_bitrate_mbps: Some(summary.avg_bitrate_mbps as f32),
            rebuffer_frac: Some(summary.rebuffer_frac as f32),
            ..Default::default()
        };
        self.finish(
            id,
            phone.op,
            TestKind::AppVideo,
            t0,
            self.sched.video_s,
            server,
            static_od,
            driver,
            None,
            Vec::new(),
            Some(metrics),
            &mut phone.snap_scratch,
        )
    }

    fn run_gaming(&self, phone: &mut Phone, id: u32, t0: f64, static_od: Option<f64>) -> TestRecord {
        let server = self.server_for(phone.op, t0, static_od);
        let demand = demand_for(TestKind::AppGaming);
        let scratch = std::mem::take(&mut phone.snap_scratch);
        let mut driver = match static_od {
            Some(od) => LinkDriver::static_at(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s, od),
            None => LinkDriver::driving(&mut phone.ue, &self.plan, demand, self.cfg.snapshot_tick_s),
        }
        .reusing(scratch);
        let summary = {
            let mut link = AppLinkAdapter {
                driver: &mut driver,
                rtt: &mut phone.rtt,
                server,
                efficiency: 0.85,
            };
            GamingSession::default().run(t0, &mut link)
        };
        let metrics = AppMetrics {
            send_bitrate_mbps: Some(summary.send_bitrate_mbps as f32),
            net_latency_ms: Some(summary.net_latency_ms as f32),
            frame_drop_frac: Some(summary.frame_drop_frac as f32),
            ..Default::default()
        };
        self.finish(
            id,
            phone.op,
            TestKind::AppGaming,
            t0,
            self.sched.game_s,
            server,
            static_od,
            driver,
            None,
            Vec::new(),
            Some(metrics),
            &mut phone.snap_scratch,
        )
    }

    /// Assemble a [`TestRecord`] from a finished driver. The driver's
    /// snapshot buffer is handed back through `scratch` for the next test.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        id: u32,
        op: Operator,
        kind: TestKind,
        t0: f64,
        duration_s: f64,
        server: Server,
        static_od: Option<f64>,
        driver: LinkDriver<'_>,
        tput: Option<&[ThroughputSample]>,
        rtt_ms: Vec<f32>,
        app: Option<AppMetrics>,
        scratch: &mut Vec<LinkSnapshot>,
    ) -> TestRecord {
        let frac_hs5g = driver.frac_hs5g() as f32;
        let kpi = kpi_windows(&driver.snapshots, &driver.handovers, t0, duration_s, tput, kind);
        let (start_od, end_od, tz) = match static_od {
            Some(od) => (od, od, self.plan.route().timezone_at(od)),
            None => {
                let s0 = self.plan.state_at(t0);
                (
                    s0.odometer_m,
                    self.plan.state_at(t0 + duration_s).odometer_m,
                    s0.timezone,
                )
            }
        };
        let record = TestRecord {
            id,
            op,
            kind,
            start_s: t0,
            duration_s,
            server_kind: server.kind,
            server_name: server.name.to_string(),
            is_static: static_od.is_some(),
            start_odometer_m: start_od,
            end_odometer_m: end_od,
            timezone: tz,
            frac_hs5g,
            kpi,
            rtt_ms,
            handovers: driver.handovers,
            app,
        };
        *scratch = driver.snapshots;
        scratch.clear();
        record
    }

    /// One operator's static baseline at one city site. Retries get
    /// fresh UEs (walking around looking for the beam, as the authors
    /// did); each attempt's streams are keyed by `(op, site, attempt)`.
    fn run_static_site(&self, op: Operator, site_od: f64) -> Shard {
        let db = self.db_for(op);
        let mut records = Vec::new();
        let mut next_id: u32 = 0;
        // Test while passing/parked near the city.
        let t_base = self
            .plan
            .time_at_odometer(site_od)
            .unwrap_or_else(|| {
                self.plan
                    .days()
                    .first()
                    .map_or(0.0, |d| d.start_time_s as f64)
            });
        for attempt in 0..3u64 {
            let seed = rng::derive_seed(
                self.cfg.seed,
                rng::DOMAIN_STATIC,
                &[op as u64, site_od as u64, attempt],
            );
            let mut phone = Phone::new(
                op,
                Arc::clone(&db),
                UeParams {
                    load: LoadParams::static_urban().scaled(&self.tuning_for(op).load),
                    clutter_scale: 0.25,
                    fleet: self.fleet_for(op),
                    ..Default::default()
                },
                seed,
            );
            // Probe run to check the operator actually elevates us.
            let probe = self.run_tput(&mut phone, next_id, t_base, Direction::Downlink, Some(site_od));
            if probe.frac_hs5g < 0.6 {
                continue;
            }
            self.push(&mut records, &mut next_id, probe);
            let mut t = t_base + self.sched.tput_s + self.cfg.gap_s;
            let r = self.run_tput(&mut phone, next_id, t, Direction::Uplink, Some(site_od));
            t = r.start_s + r.duration_s + self.cfg.gap_s;
            self.push(&mut records, &mut next_id, r);
            let r = self.run_rtt(&mut phone, next_id, t, Some(site_od));
            t = r.start_s + r.duration_s + self.cfg.gap_s;
            self.push(&mut records, &mut next_id, r);
            if self.apps_enabled() {
                for (kind, compressed) in [
                    (TestKind::AppAr, true),
                    (TestKind::AppAr, false),
                    (TestKind::AppCav, true),
                    (TestKind::AppCav, false),
                ] {
                    let r = self.run_offload_app(&mut phone, next_id, t, kind, compressed, Some(site_od));
                    t = r.start_s + r.duration_s + self.cfg.gap_s;
                    self.push(&mut records, &mut next_id, r);
                }
                let r = self.run_video(&mut phone, next_id, t, Some(site_od));
                t = r.start_s + r.duration_s + self.cfg.gap_s;
                self.push(&mut records, &mut next_id, r);
                let r = self.run_gaming(&mut phone, next_id, t, Some(site_od));
                self.push(&mut records, &mut next_id, r);
            }
            break;
        }
        Shard {
            records,
            passive: None,
            fleet: None,
        }
    }

    /// The passive handover-logger phone for one operator.
    fn run_passive(&self, op: Operator) -> PassiveLogger {
        let mut ue = UeRadio::new(
            op,
            self.db_for(op),
            UeParams {
                load: LoadParams::driving().scaled(&self.tuning_for(op).load),
                fleet: self.fleet_for(op),
                ..Default::default()
            },
            rng::derive_seed(self.cfg.seed, rng::DOMAIN_PASSIVE, &[op as u64]),
        );
        let mut log = PassiveLogger::new();
        for day in self.plan.days() {
            let mut t = day.start_time_s as f64;
            while t < day.end_time_s as f64 {
                let state = self.plan.state_at(t);
                let snap = ue.step(t, &state, TrafficDemand::Ping);
                log.log(&snap, state.pos.lon);
                t += self.cfg.passive_tick_s;
            }
        }
        log
    }
}

/// Compile the effective fleet template — the scenario's `subscribers`
/// axis overridden by [`CampaignConfig::population`] — into per-operator
/// load models. The panel total is apportioned evenly with the remainder
/// going to earlier slots (so the sum is exact), and each operator's
/// attachment stream is derived from the campaign seed under
/// [`rng::DOMAIN_FLEET`]. Returns all `None` (the strict no-op path)
/// when the effective population is zero.
fn build_fleet(
    cfg: &CampaignConfig,
    template: Option<FleetParams>,
    ops: &[Operator],
    dbs: &[Arc<CellDb>],
) -> Vec<Option<Arc<FleetLoad>>> {
    let params = match cfg.population {
        Some(0) => None,
        Some(n) => {
            let mut p = template.unwrap_or_default();
            p.population = n;
            Some(p)
        }
        None => template.filter(|p| p.population > 0),
    };
    let Some(params) = params else {
        return ops.iter().map(|_| None).collect();
    };
    let n = ops.len() as u64;
    let base = params.population / n;
    let rem = params.population % n;
    ops.iter()
        .zip(dbs)
        .enumerate()
        .map(|(i, (&op, db))| {
            let mut p = params.clone();
            p.population = base + u64::from((i as u64) < rem);
            let seed = rng::derive_seed(cfg.seed, rng::DOMAIN_FLEET, &[op as u64]);
            Some(Arc::new(FleetLoad::build(op, db, &p, seed)))
        })
        .collect()
}

/// Downsample raw snapshots into 500 ms KPI windows, joining throughput
/// samples and counting handovers per window.
fn kpi_windows(
    snapshots: &[LinkSnapshot],
    handovers: &[HandoverEvent],
    t0: f64,
    duration_s: f64,
    tput: Option<&[ThroughputSample]>,
    kind: TestKind,
) -> Vec<KpiSample> {
    const WINDOW_S: f64 = 0.5;
    let n = (duration_s / WINDOW_S).round() as usize;
    let mut out = Vec::with_capacity(n);
    let mut snap_i = 0usize;
    for w in 0..n {
        let w_end = t0 + (w + 1) as f64 * WINDOW_S;
        // Last snapshot at or before the window end.
        while snapshots
            .get(snap_i + 1)
            .map_or(false, |s| s.time_s <= w_end)
        {
            snap_i += 1;
        }
        let Some(snap) = snapshots.get(snap_i) else {
            break;
        };
        let hos = handovers
            .iter()
            .filter(|h| h.time_s > w_end - WINDOW_S && h.time_s <= w_end)
            .count() as u8;
        let tput_mbps = tput.and_then(|t| {
            t.iter()
                .find(|s| (s.time_s - w_end).abs() < WINDOW_S / 2.0)
                .map(|s| s.mbps as f32)
        });
        let sample = match kind.direction() {
            Some(Direction::Uplink) => KpiSample::from_snapshot_ul(snap, tput_mbps, hos),
            _ => KpiSample::from_snapshot_dl(snap, tput_mbps, hos),
        };
        out.push(KpiSample {
            time_s: w_end,
            ..sample
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        let mut cfg = CampaignConfig::quick_network_only(42);
        cfg.scale = 0.01;
        cfg.run_static = false;
        cfg.run_passive = false;
        Campaign::new(cfg)
    }

    #[test]
    fn tiny_run_produces_records() {
        let db = tiny_campaign().run();
        assert!(!db.records.is_empty());
        // Every operator gets tests.
        for op in Operator::ALL {
            assert!(
                db.records.iter().any(|r| r.op == op),
                "no records for {op}"
            );
        }
    }

    #[test]
    fn tput_records_have_60_kpi_windows_with_throughput() {
        let db = tiny_campaign().run();
        let r = db
            .records
            .iter()
            .find(|r| r.kind == TestKind::ThroughputDl)
            .expect("at least one DL test");
        assert_eq!(r.kpi.len(), 60);
        let with_tput = r.kpi.iter().filter(|k| k.tput_mbps.is_some()).count();
        assert!(with_tput >= 55, "{with_tput}");
    }

    #[test]
    fn rtt_records_have_100_samples() {
        let db = tiny_campaign().run();
        let r = db
            .records
            .iter()
            .find(|r| r.kind == TestKind::Rtt)
            .expect("at least one RTT test");
        assert_eq!(r.rtt_ms.len(), 100);
        assert!(r.kpi.iter().all(|k| k.tput_mbps.is_none()));
    }

    #[test]
    fn deterministic_runs() {
        let a = tiny_campaign().run();
        let b = tiny_campaign().run();
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.start_s, y.start_s);
            assert_eq!(x.mean_tput_mbps(), y.mean_tput_mbps());
        }
    }

    #[test]
    fn static_suite_produces_high_speed_baselines() {
        let mut cfg = CampaignConfig::quick_network_only(7);
        cfg.scale = 0.0; // static only
        cfg.run_passive = false;
        let db = Campaign::new(cfg).run();
        let statics: Vec<_> = db.records.iter().filter(|r| r.is_static).collect();
        assert!(statics.len() >= 10, "{} static records", statics.len());
        for r in &statics {
            assert!(r.frac_hs5g >= 0.0);
        }
        // Accepted DL baselines are high-speed by construction.
        let dl: Vec<_> = statics
            .iter()
            .filter(|r| r.kind == TestKind::ThroughputDl)
            .collect();
        assert!(dl.iter().all(|r| r.frac_hs5g >= 0.6));
    }

    #[test]
    fn logs_match_via_correct_sync() {
        let mut cfg = CampaignConfig::quick_network_only(9);
        cfg.scale = 0.005;
        cfg.run_static = false;
        cfg.run_passive = false;
        let (db, logs) = Campaign::new(cfg).run_with_logs();
        assert_eq!(logs.xcal.len(), db.records.len());
        let matches = wheels_xcal::sync::match_logs(&logs.app, &logs.xcal);
        for (i, m) in matches.iter().enumerate() {
            assert_eq!(*m, Some(i), "app log {i} mismatched");
        }
    }
}
