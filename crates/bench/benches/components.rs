//! Component microbenchmarks: the hot paths of the simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use wheels_geo::route::Route;
use wheels_geo::trip::DrivePlan;
use wheels_netsim::cubic::Cubic;
use wheels_netsim::event::EventQueue;
use wheels_netsim::tcp::FluidTcp;
use wheels_ran::deployment::build_cells;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::ue::{UeParams, UeRadio};
use wheels_ran::{Direction, Operator};

fn bench_route(c: &mut Criterion) {
    let route = Route::cross_country();
    c.bench_function("route/point_at", |b| {
        let mut od = 0.0;
        b.iter(|| {
            od = (od + 1_234.5) % route.total_m();
            black_box(route.point_at(od))
        })
    });
    c.bench_function("route/region_at", |b| {
        let mut od = 0.0;
        b.iter(|| {
            od = (od + 1_234.5) % route.total_m();
            black_box(route.region_at(od))
        })
    });
}

fn bench_drive_plan(c: &mut Criterion) {
    c.bench_function("trip/generate_8day_plan", |b| {
        b.iter(|| black_box(DrivePlan::cross_country(7)))
    });
    let plan = DrivePlan::cross_country(7);
    c.bench_function("trip/state_at", |b| {
        let mut t = 30_000.0;
        b.iter(|| {
            t += 17.0;
            if t > 500_000.0 {
                t = 30_000.0;
            }
            black_box(plan.state_at(t))
        })
    });
}

fn bench_deployment(c: &mut Criterion) {
    let route = Route::cross_country();
    c.bench_function("ran/build_cells_verizon", |b| {
        b.iter(|| black_box(build_cells(&route, Operator::Verizon, 7, 0)))
    });
}

fn bench_ue_step(c: &mut Criterion) {
    let plan = DrivePlan::cross_country(7);
    let db = Arc::new(build_cells(plan.route(), Operator::TMobile, 7, 0));
    c.bench_function("ran/ue_step_100ms", |b| {
        let mut ue = UeRadio::new(Operator::TMobile, Arc::clone(&db), UeParams::default(), 9);
        let t0 = plan.days()[0].start_time_s as f64;
        let mut t = t0;
        b.iter(|| {
            t += 0.1;
            let state = plan.state_at(t);
            black_box(ue.step(t, &state, TrafficDemand::Backlog(Direction::Downlink)))
        })
    });
}

fn bench_tcp(c: &mut Criterion) {
    c.bench_function("netsim/fluid_tcp_tick", |b| {
        let mut flow = FluidTcp::new(Box::new(Cubic::new()));
        let mut t = 0.0;
        b.iter(|| {
            t += 0.02;
            black_box(flow.tick(t, 0.02, 120.0, 0.05))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("netsim/event_queue_push_pop", |b| {
        let mut q = EventQueue::new();
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            q.schedule(t + 10.0, 42u32);
            q.schedule(t + 5.0, 43u32);
            black_box(q.pop())
        })
    });
}

criterion_group!(
    benches,
    bench_route,
    bench_drive_plan,
    bench_deployment,
    bench_ue_step,
    bench_tcp,
    bench_event_queue
);
criterion_main!(benches);
