//! Fleet-scale subscriber populations driving live cell load.
//!
//! The paper's six probes measure an opaque network; [`crate::load`]
//! models everyone else on the cell as a hidden stochastic process. The
//! fleet closes that loop: a seeded synthetic population attaches to the
//! operator's cells, and its aggregate demand *calibrates* the load share
//! each probe sees — the stochastic fluctuation shape stays, but its
//! level is set by actual demand, so load and upgrade policy react to how
//! many subscribers a cell carries at that hour.
//!
//! Everything here is a pure function of `(operator, world, fleet seed)`:
//! subscribers attach per cell with one seeded log-normal draw keyed by
//! the cell id (order-free, so any work-unit split sees identical
//! populations), demand follows a 24-hour diurnal profile, and per-unit
//! observation folds into the integer-domain sketches of `wheels-fleet`.
//! No per-subscriber state is ever stored: memory is O(cells).

use rand::rngs::SmallRng;
use rand::Rng;

use wheels_fleet::{CellHourObs, FleetUnitSketch, MICRO};
use wheels_radio::band::Technology;

use crate::cell::{CellDb, CellId};
use crate::config::link_config_ref;
use crate::operator::Operator;
use crate::selection::sub_rng;
use crate::Direction;

/// Default 24-hour activity profile (fraction of subscribers active per
/// local hour), shaped like the classic cellular busy-hour curve: a
/// night trough, a morning ramp, and an evening peak.
pub const DEFAULT_DIURNAL: [f64; 24] = [
    0.25, 0.18, 0.14, 0.12, 0.12, 0.15, 0.25, 0.45, 0.65, 0.75, 0.80, 0.85, 0.90, 0.88, 0.85,
    0.82, 0.85, 0.95, 1.00, 0.95, 0.85, 0.70, 0.50, 0.35,
];

/// Busy-hour demand of an active video-dominated subscriber, Mbps.
pub const DEMAND_VIDEO_MBPS: f64 = 3.0;
/// Busy-hour demand of an active web-browsing subscriber, Mbps.
pub const DEMAND_WEB_MBPS: f64 = 0.5;
/// Busy-hour demand of a background-only subscriber, Mbps.
pub const DEMAND_BACKGROUND_MBPS: f64 = 0.05;

/// Blend the per-class demand rates by a (video, web, background) mix.
pub fn demand_per_sub_mbps(video: f64, web: f64, background: f64) -> f64 {
    video * DEMAND_VIDEO_MBPS + web * DEMAND_WEB_MBPS + background * DEMAND_BACKGROUND_MBPS
}

/// Nominal SINR (dB) at which a cell's reference capacity is evaluated
/// when converting aggregate demand into utilization.
const REF_SINR_DB: f64 = 18.0;

/// How strongly a fully-utilized technology layer discourages the
/// upgrade policy from promoting onto it.
const PROMO_CONGESTION_WEIGHT: f64 = 0.6;

/// Relative attachment preference per technology layer (device mix:
/// everyone has LTE, few devices camp on mmWave), [`Technology::ALL`]
/// order.
const ATTACH_TECH_WEIGHT: [f64; 5] = [1.0, 0.9, 0.5, 0.35, 0.03];

/// Parameters of one operator's subscriber fleet.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Subscribers attached to this operator.
    pub population: u64,
    /// Mean busy-hour demand per active subscriber, Mbps (see
    /// [`demand_per_sub_mbps`]).
    pub demand_per_sub_mbps: f64,
    /// 24-hour activity profile (fraction active per hour of day).
    pub diurnal: [f64; 24],
    /// Log-normal σ of the per-cell attachment weights (spatial
    /// clustering strength).
    pub attach_sigma: f64,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            population: 0,
            demand_per_sub_mbps: demand_per_sub_mbps(0.55, 0.35, 0.10),
            diurnal: DEFAULT_DIURNAL,
            attach_sigma: 0.6,
        }
    }
}

/// One cell's share of the fleet (indexed by cell id offset).
#[derive(Debug, Clone, Copy)]
struct CellSlot {
    tech: u8,
    subs: u64,
    /// Utilization at diurnal peak 1.0: `subs × demand / ref-capacity`.
    base_util: f64,
}

/// The compiled, immutable fleet state for one operator: per-cell
/// subscriber counts and base utilization, plus per-technology
/// aggregates. Shared read-only (`Arc`) by every probe of the operator.
#[derive(Debug)]
pub struct FleetLoad {
    op: Operator,
    population: u64,
    min_id: u32,
    slots: Vec<Option<CellSlot>>,
    diurnal: [f64; 24],
    /// Mean base utilization per technology layer, [`Technology::ALL`]
    /// order (drives the promotion-policy congestion response).
    tech_base_util: [f64; 5],
}

fn gauss(rng: &mut SmallRng) -> f64 {
    let mut s = 0.0;
    for _ in 0..12 {
        s += rng.gen::<f64>();
    }
    s - 6.0
}

fn hour_of_day(t_s: f64) -> usize {
    ((t_s / 3600.0).floor() as i64).rem_euclid(24) as usize
}

impl FleetLoad {
    /// Compile the fleet for one operator's deployment. `seed` must come
    /// from the campaign's `DOMAIN_FLEET` stream keyed by the operator,
    /// so per-cell draws are independent of any work-unit split.
    pub fn build(op: Operator, db: &CellDb, params: &FleetParams, seed: u64) -> FleetLoad {
        // One seeded log-normal weight per cell, keyed by cell id alone:
        // attachment is a function of the world, not of evaluation order.
        let mut entries: Vec<(u32, u8, f64)> = Vec::new();
        for (ti, tech) in Technology::ALL.iter().enumerate() {
            let layer = db.layer(*tech);
            for &id in layer.ids() {
                let mut rng = sub_rng(seed, id.0 as u64);
                let w = ATTACH_TECH_WEIGHT[ti] * (params.attach_sigma * gauss(&mut rng)).exp();
                entries.push((id.0, ti as u8, w));
            }
        }
        entries.sort_unstable_by_key(|e| e.0);

        let total_w: f64 = entries.iter().map(|e| e.2).sum();
        let mut subs = vec![0u64; entries.len()];
        if params.population > 0 && total_w > 0.0 {
            // Largest-remainder apportionment: Σ subs == population
            // exactly, deterministically (remainder ties break on the
            // lower cell id).
            let mut assigned = 0u64;
            let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(entries.len());
            for (i, e) in entries.iter().enumerate() {
                let quota = params.population as f64 * e.2 / total_w;
                let base = quota.floor() as u64;
                subs[i] = base;
                assigned += base;
                fracs.push((quota - base as f64, i));
            }
            fracs.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let leftover = params.population.saturating_sub(assigned);
            for k in 0..leftover as usize {
                subs[fracs[k % fracs.len()].1] += 1;
            }
        }

        let mut ref_cap = [0.0f64; 5];
        for (ti, tech) in Technology::ALL.iter().enumerate() {
            let c = link_config_ref(op, *tech, Direction::Downlink);
            ref_cap[ti] = c
                .capacity_model(c.max_cc())
                .capacity(REF_SINR_DB, 0.0, 1.0)
                .mbps
                .max(1.0);
        }

        let min_id = entries.first().map(|e| e.0).unwrap_or(0);
        let max_id = entries.last().map(|e| e.0).unwrap_or(0);
        let mut slots: Vec<Option<CellSlot>> =
            vec![None; (max_id - min_id) as usize + usize::from(!entries.is_empty())];
        let mut tech_util_sum = [0.0f64; 5];
        let mut tech_cells = [0u64; 5];
        for (i, &(id, tech, _)) in entries.iter().enumerate() {
            let base_util =
                subs[i] as f64 * params.demand_per_sub_mbps / ref_cap[tech as usize];
            slots[(id - min_id) as usize] = Some(CellSlot { tech, subs: subs[i], base_util });
            tech_util_sum[tech as usize] += base_util;
            tech_cells[tech as usize] += 1;
        }
        let mut tech_base_util = [0.0f64; 5];
        for ti in 0..5 {
            if tech_cells[ti] > 0 {
                tech_base_util[ti] = tech_util_sum[ti] / tech_cells[ti] as f64;
            }
        }

        FleetLoad { op, population: params.population, min_id, slots, diurnal: params.diurnal, tech_base_util }
    }

    /// The operator this fleet is attached to.
    pub fn op(&self) -> Operator {
        self.op
    }

    /// Subscribers attached to this operator.
    pub fn population(&self) -> u64 {
        self.population
    }

    fn slot(&self, cell: CellId) -> Option<&CellSlot> {
        let i = cell.0.checked_sub(self.min_id)? as usize;
        self.slots.get(i)?.as_ref()
    }

    /// Demand-driven utilization of a cell at time `t_s` (0 for unknown
    /// cells, e.g. during outage sentinels).
    pub fn util_at(&self, cell: CellId, t_s: f64) -> f64 {
        match self.slot(cell) {
            Some(s) => s.base_util * self.diurnal[hour_of_day(t_s)],
            None => 0.0,
        }
    }

    /// Multiplier that calibrates a probe's hidden load share to this
    /// cell's live demand: the stochastic process keeps its fluctuation
    /// shape, but its median is moved from `median_share` to the
    /// demand-implied target `1 / (1 + util)` (empty cell → the probe
    /// gets nearly everything; overloaded cell → starved).
    pub fn share_factor(&self, cell: CellId, t_s: f64, median_share: f64) -> f64 {
        let target = 1.0 / (1.0 + self.util_at(cell, t_s));
        target / median_share.max(1e-6)
    }

    /// Multiplier on the upgrade policy's promotion probability: a
    /// congested technology layer attracts fewer promotions.
    pub fn promo_factor(&self, tech: Technology, t_s: f64) -> f64 {
        let ti = crate::cell::tech_index(tech);
        let c = (self.tech_base_util[ti] * self.diurnal[hour_of_day(t_s)]).min(1.0);
        1.0 - PROMO_CONGESTION_WEIGHT * c
    }

    /// Fold the whole fleet's activity over `[start_s, end_s)` into a
    /// sketch, one observation per (cell × absolute hour slice). A work
    /// unit's span is fixed by its key, so the unit produces the same
    /// sketch bytes at any `--jobs`, and merging per-unit sketches in
    /// canonical unit order is byte-reproducible. (Disjoint spans that
    /// meet at an hour boundary additionally merge to exactly the
    /// single-fold union; mid-hour cuts may differ by one fixed-point
    /// ulp from a single fold, which production never performs.)
    pub fn fold_span(&self, start_s: f64, end_s: f64, sketch: &mut FleetUnitSketch) {
        if end_s <= start_s {
            return;
        }
        sketch.population = sketch.population.max(self.population);
        let h0 = (start_s / 3600.0).floor() as i64;
        let h1 = (end_s / 3600.0).ceil() as i64;
        for (off, slot) in self.slots.iter().enumerate() {
            let Some(s) = slot else { continue };
            for h in h0..h1 {
                let hs = h as f64 * 3600.0;
                let overlap = (end_s.min(hs + 3600.0) - start_s.max(hs)).max(0.0);
                if overlap <= 0.0 {
                    continue;
                }
                let hod = h.rem_euclid(24) as usize;
                let d = self.diurnal[hod];
                let span_hours = overlap / 3600.0;
                sketch.observe(&CellHourObs {
                    cell: self.min_id + off as u32,
                    tech: s.tech,
                    hour_of_day: hod as u8,
                    subs: s.subs,
                    active_micro: (s.subs as f64 * d * span_hours * MICRO as f64).round()
                        as u64,
                    util: s.base_util * d,
                    span_micro: (span_hours * MICRO as f64).round() as u64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellSite;

    fn db(op: Operator, n_per_layer: u32) -> CellDb {
        let mut sites = Vec::new();
        let mut id = 100u32;
        for tech in Technology::ALL {
            for k in 0..n_per_layer {
                sites.push(CellSite {
                    id: CellId(id),
                    op,
                    tech,
                    odometer_m: k as f64 * 2_000.0,
                    lateral_m: 150.0,
                    eirp_re_dbm: 60.0,
                });
                id += 1;
            }
        }
        CellDb::new(op, sites)
    }

    fn params(population: u64) -> FleetParams {
        FleetParams { population, ..FleetParams::default() }
    }

    #[test]
    fn population_is_conserved_exactly() {
        let db = db(Operator::Verizon, 7);
        for pop in [1u64, 3, 1_000, 12_345] {
            let f = FleetLoad::build(Operator::Verizon, &db, &params(pop), 99);
            let total: u64 = f
                .slots
                .iter()
                .filter_map(|s| s.as_ref().map(|c| c.subs))
                .sum();
            assert_eq!(total, pop);
        }
    }

    #[test]
    fn attachment_is_independent_of_seed_only_through_cells() {
        let db = db(Operator::Att, 5);
        let a = FleetLoad::build(Operator::Att, &db, &params(5_000), 7);
        let b = FleetLoad::build(Operator::Att, &db, &params(5_000), 7);
        for (x, y) in a.slots.iter().zip(&b.slots) {
            assert_eq!(x.map(|c| c.subs), y.map(|c| c.subs));
        }
        let c = FleetLoad::build(Operator::Att, &db, &params(5_000), 8);
        let same: usize = a
            .slots
            .iter()
            .zip(&c.slots)
            .filter(|(x, y)| x.map(|s| s.subs) == y.map(|s| s.subs))
            .count();
        assert!(same < a.slots.len(), "different fleet seed changed nothing");
    }

    #[test]
    fn share_factor_moves_with_demand() {
        let db = db(Operator::TMobile, 4);
        let heavy = FleetLoad::build(Operator::TMobile, &db, &params(4_000_000), 3);
        let light = FleetLoad::build(Operator::TMobile, &db, &params(10), 3);
        let cell = CellId(100);
        let t = 18.5 * 3600.0; // evening peak
        let median = 0.34;
        assert!(heavy.share_factor(cell, t, median) < light.share_factor(cell, t, median));
        // An essentially empty network hands the probe ~full capacity.
        assert!(light.share_factor(cell, t, median) > 2.0);
    }

    #[test]
    fn diurnal_shapes_utilization() {
        let db = db(Operator::Verizon, 4);
        let f = FleetLoad::build(Operator::Verizon, &db, &params(2_000_000), 3);
        let cell = CellId(101);
        let night = f.util_at(cell, 3.0 * 3600.0);
        let peak = f.util_at(cell, 18.0 * 3600.0);
        assert!(peak > night, "peak {peak} night {night}");
    }

    #[test]
    fn promo_factor_penalizes_congested_layers() {
        let db = db(Operator::Att, 4);
        let heavy = FleetLoad::build(Operator::Att, &db, &params(20_000_000), 3);
        let p = heavy.promo_factor(Technology::Lte, 18.0 * 3600.0);
        assert!(p < 1.0);
        assert!(p >= 1.0 - PROMO_CONGESTION_WEIGHT - 1e-12);
        let empty = FleetLoad::build(Operator::Att, &db, &params(0), 3);
        assert_eq!(empty.promo_factor(Technology::Lte, 18.0 * 3600.0), 1.0);
    }

    #[test]
    fn fold_span_partitions_exactly() {
        let db = db(Operator::Verizon, 6);
        let f = FleetLoad::build(Operator::Verizon, &db, &params(10_000), 5);
        // The cut is hour-aligned, as campaign drive days are whole units.
        let (a, b, c) = (10_000.0, 13.0 * 3600.0, 90_000.0);
        let mut whole = FleetUnitSketch::empty();
        f.fold_span(a, c, &mut whole);
        let mut left = FleetUnitSketch::empty();
        f.fold_span(a, b, &mut left);
        let mut right = FleetUnitSketch::empty();
        f.fold_span(b, c, &mut right);
        left.merge(&right);
        assert_eq!(left, whole);
        assert!(whole.sub_hours() > 0.0);
    }
}
