//! The ICMP RTT test.
//!
//! §5: *"To measure the RTT between the UE and an edge/cloud server, we
//! used the ICMP-based ping utility. Each test ran for 20 s and sent one
//! ICMP packet every 200 ms."*

use wheels_geo::coord::LatLon;
use wheels_radio::band::Technology;

use crate::rtt::RttModel;
use crate::server::Server;

/// One ping result.
#[derive(Debug, Clone, Copy)]
pub struct RttSample {
    /// Absolute send time, seconds.
    pub time_s: f64,
    /// Round-trip time, milliseconds.
    pub rtt_ms: f64,
}

/// Link state the RTT model needs at one ping instant.
#[derive(Debug, Clone, Copy)]
pub struct PingLinkState {
    /// UE position.
    pub pos: LatLon,
    /// Serving technology.
    pub tech: Technology,
    /// Downlink wideband SINR, dB.
    pub sinr_db: f64,
    /// Vehicle speed, m/s.
    pub speed_mps: f64,
    /// Whether a handover interruption is in progress.
    pub in_handover: bool,
}

/// Configuration of an RTT test.
#[derive(Debug, Clone, Copy)]
pub struct RttTest {
    /// Test duration, seconds (paper: 20 s).
    pub duration_s: f64,
    /// Ping interval, seconds (paper: 0.2 s).
    pub interval_s: f64,
}

impl Default for RttTest {
    fn default() -> Self {
        RttTest {
            duration_s: 20.0,
            interval_s: 0.2,
        }
    }
}

impl RttTest {
    /// Run the test starting at `t0_s` against `server`, querying `link`
    /// for the UE state at each ping instant.
    pub fn run(
        &self,
        t0_s: f64,
        server: &Server,
        model: &mut RttModel,
        mut link: impl FnMut(f64) -> PingLinkState,
    ) -> Vec<RttSample> {
        let n = (self.duration_s / self.interval_s) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = t0_s + i as f64 * self.interval_s;
            let st = link(t);
            let rtt_ms = model.sample_ms(
                t,
                st.pos,
                server,
                st.tech,
                st.sinr_db,
                st.speed_mps,
                st.in_handover,
            );
            out.push(RttSample { time_s: t, rtt_ms });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CLOUD_OHIO;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn state() -> PingLinkState {
        PingLinkState {
            pos: LatLon::new(41.0, -96.0),
            tech: Technology::LteA,
            sinr_db: 15.0,
            speed_mps: 30.0,
            in_handover: false,
        }
    }

    #[test]
    fn hundred_samples_per_20s_test() {
        let test = RttTest::default();
        let mut model = RttModel::new(SmallRng::seed_from_u64(1));
        let samples = test.run(0.0, &CLOUD_OHIO, &mut model, |_| state());
        assert_eq!(samples.len(), 100);
    }

    #[test]
    fn samples_spaced_200ms() {
        let test = RttTest::default();
        let mut model = RttModel::new(SmallRng::seed_from_u64(1));
        let samples = test.run(50.0, &CLOUD_OHIO, &mut model, |_| state());
        assert!((samples[1].time_s - samples[0].time_s - 0.2).abs() < 1e-9);
        assert!((samples[0].time_s - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rtts_positive_and_bounded() {
        let test = RttTest::default();
        let mut model = RttModel::new(SmallRng::seed_from_u64(2));
        let samples = test.run(0.0, &CLOUD_OHIO, &mut model, |_| state());
        for s in samples {
            assert!(s.rtt_ms > 5.0 && s.rtt_ms <= 3_000.0, "{}", s.rtt_ms);
        }
    }
}
