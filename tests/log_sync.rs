//! §B end to end: the campaign's app logs pair with its XCAL logs across
//! timezones and timestamp formats — and the naive matcher demonstrably
//! fails west of Eastern time.
//!
//! Note: `CampaignLogs` vectors are in execution order (app[i] belongs to
//! xcal[i]); the consolidated database is time-sorted, so tests work on
//! the logs alone.

use wheels::campaign::runner::CampaignLogs;
use wheels::campaign::{Campaign, CampaignConfig};
use wheels::xcal::logger::XcalLog;
use wheels::xcal::sync::{match_logs, match_logs_naive};
use wheels::xcal::timestamp::Timestamp;

fn logs() -> CampaignLogs {
    let mut cfg = CampaignConfig::quick_network_only(8);
    cfg.scale = 0.015;
    cfg.run_static = false;
    cfg.run_passive = false;
    let (_db, logs) = Campaign::new(cfg).run_with_logs();
    logs
}

/// Hours the XCAL filename stamp lags the (EDT) content stamp — 0 in the
/// Eastern zone, negative further west.
fn filename_offset_hours(x: &XcalLog) -> i64 {
    let stem = x.file_name.strip_suffix(".drm").unwrap();
    let mut parts = stem.rsplitn(3, '_');
    let hms = parts.next().unwrap();
    let day = parts.next().unwrap();
    let mut h = hms.split('-');
    let s = format!(
        "2022-08-{} {}:{}:{}.000",
        day,
        h.next().unwrap(),
        h.next().unwrap(),
        h.next().unwrap()
    );
    let file_as_edt = Timestamp::parse_edt(&s).unwrap().plan_s;
    let content = Timestamp::parse_edt(&x.content_start_edt).unwrap().plan_s;
    ((file_as_edt - content) / 3_600.0).round() as i64
}

#[test]
fn campaign_logs_sync_perfectly_with_correct_matcher() {
    let logs = logs();
    assert!(logs.xcal.len() > 30, "need tests across multiple timezones");
    // The campaign crosses timezones (the hard part of §B): the filename
    // stamps lag the EDT contents by 0 to -3 hours along the way.
    let mut offsets: Vec<i64> = logs.xcal.iter().map(filename_offset_hours).collect();
    offsets.sort_unstable();
    offsets.dedup();
    assert!(offsets.len() >= 3, "only {offsets:?} timezone offsets seen");

    let matches = match_logs(&logs.app, &logs.xcal);
    for (i, m) in matches.iter().enumerate() {
        assert_eq!(*m, Some(i), "app log {i} paired wrongly");
    }
}

#[test]
fn naive_matcher_loses_western_logs() {
    let logs = logs();
    let naive = match_logs_naive(&logs.app, &logs.xcal);
    let mut wrong_west = 0usize;
    let mut west = 0usize;
    for (i, x) in logs.xcal.iter().enumerate() {
        if filename_offset_hours(x) != 0 {
            west += 1;
            if naive[i] != Some(i) {
                wrong_west += 1;
            }
        } else {
            // In EDT the filename stamp happens to be correct.
            assert_eq!(naive[i], Some(i), "naive matcher should work in EDT");
        }
    }
    assert!(west > 10);
    assert!(
        wrong_west as f64 > west as f64 * 0.9,
        "naive matching should fail for ~all western logs: {wrong_west}/{west}"
    );
}
