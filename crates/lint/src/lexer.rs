//! A line-oriented Rust lexer that separates code from string/comment
//! content.
//!
//! The rules in [`crate::rules`] are token matchers; to keep them honest
//! they must never fire on a forbidden token that only appears inside a
//! string literal, a comment, or a doc comment (`"Instant::now"` in a log
//! message is not a wall-clock read). The lexer walks the source once
//! with a small state machine covering line comments, nested block
//! comments, string literals (with escapes), raw strings (`r#"..."#`
//! with any hash count), byte/char literals, and lifetimes, and emits per
//! physical line:
//!
//! * `code` — the line with every string/char/comment byte replaced by a
//!   space (delimiters included), so token scans see only real code;
//! * `comment` — the concatenated comment text of the line, which is
//!   where `lint:allow(...)` suppression directives live.
//!
//! Positions are preserved: `code` has exactly the same length (in
//! characters) as the input line, so column arithmetic stays valid.

/// One physical source line, split into its code and comment parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Code content; string/char/comment characters blanked to spaces.
    pub code: String,
    /// Comment text (line + block comments), delimiters stripped.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Inside `"..."`.
    Str,
    /// Inside `r##"..."##`; the payload is the hash count.
    RawStr(u32),
    /// Inside `'...'` (char or byte literal).
    Char,
}

/// Strip `src` into per-line code/comment parts.
pub fn strip(src: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for raw in src.split('\n') {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let mut i = 0usize;
        // A line comment never survives a newline.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.push_str(&raw_tail(&chars, i + 2));
                        // Blank the rest of the line in the code view.
                        for _ in i..chars.len() {
                            code.push(' ');
                        }
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        state = State::RawStr(hashes);
                        // Blank `r` + hashes + opening quote.
                        let span = 2 + hashes as usize;
                        for _ in 0..span.min(chars.len() - i) {
                            code.push(' ');
                        }
                        i += span;
                    }
                    'b' if next == Some('"') => {
                        state = State::Str;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    'b' if next == Some('r') && is_raw_string_start(&chars, i + 1) => {
                        let hashes = count_hashes(&chars, i + 2);
                        state = State::RawStr(hashes);
                        let span = 3 + hashes as usize;
                        for _ in 0..span.min(chars.len() - i) {
                            code.push(' ');
                        }
                        i += span;
                    }
                    '\'' => {
                        // Disambiguate char literal from lifetime: a char
                        // literal is `'x'` or `'\...'`; a lifetime is `'`
                        // followed by an identifier with no closing quote.
                        if next == Some('\\') {
                            state = State::Char;
                            code.push(' ');
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            // `'x'` — but `'a'` could also be a lifetime
                            // followed by a char literal in pathological
                            // generics; plain `'x'` is by far the common
                            // case and the safe read for token blanking.
                            code.push(' ');
                            code.push(' ');
                            code.push(' ');
                            i += 3;
                        } else {
                            // Lifetime: keep the tick, it can't form a
                            // rule token.
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => unreachable!("consumed above"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        // Skip the escaped char (possibly the closing
                        // quote or another backslash).
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else {
                        if c == '"' {
                            state = State::Code;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && has_hashes(&chars, i + 1, hashes) {
                        state = State::Code;
                        let span = 1 + hashes as usize;
                        for _ in 0..span.min(chars.len() - i) {
                            code.push(' ');
                        }
                        i += span;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => {
                    if c == '\\' {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else {
                        if c == '\'' {
                            state = State::Code;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        out.push(Line { code, comment });
    }
    out
}

fn raw_tail(chars: &[char], from: usize) -> String {
    chars[from.min(chars.len())..].iter().collect()
}

/// Is `chars[i] == 'r'` the start of a raw string (`r"`, `r#"`, ...)?
/// Requires `r` not to be part of a longer identifier (e.g. `for`, `var`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if chars.get(i) != Some(&'r') {
        return false;
    }
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn has_hashes(chars: &[char], mut i: usize, n: u32) -> bool {
    for _ in 0..n {
        if chars.get(i) != Some(&'#') {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        strip(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comment_moves_to_comment_part() {
        let lines = strip("let x = 1; // lint:allow(D2): reason\nlet y = 2;");
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("lint:allow"));
        assert!(lines[0].comment.contains("lint:allow(D2): reason"));
        assert_eq!(lines[1].comment, "");
    }

    #[test]
    fn string_content_is_blanked() {
        let c = code_of("let s = \"Instant::now HashMap\"; s.len();");
        assert!(!c[0].contains("Instant::now"));
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let s ="));
        assert!(c[0].contains("s.len();"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let c = code_of(r#"let s = "a\"partial_cmp\"b"; sort_by(x);"#);
        assert!(!c[0].contains("partial_cmp"));
        assert!(c[0].contains("sort_by(x);"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"thread_rng \"quoted\" HashSet\"#; after();";
        let c = code_of(src);
        assert!(!c[0].contains("thread_rng"));
        assert!(!c[0].contains("HashSet"));
        assert!(c[0].contains("after();"));
    }

    #[test]
    fn raw_string_spanning_lines() {
        let src = "let s = r\"line one HashMap\nline two Instant::now\"; tail();";
        let c = code_of(src);
        assert!(!c[0].contains("HashMap"));
        assert!(!c[1].contains("Instant::now"));
        assert!(c[1].contains("tail();"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a(); /* outer HashMap /* inner */ still comment */ b();\nc(); /* open\nSystemTime::now\n*/ d();";
        let c = code_of(src);
        assert!(c[0].contains("a();") && c[0].contains("b();"));
        assert!(!c[0].contains("HashMap"));
        assert!(c[1].contains("c();"));
        assert!(!c[2].contains("SystemTime"));
        assert!(c[3].contains("d();"));
    }

    #[test]
    fn block_comment_text_is_captured() {
        let lines = strip("x(); /* lint:allow(D4): keyed */ y();");
        assert!(lines[0].comment.contains("lint:allow(D4): keyed"));
        assert!(lines[0].code.contains("y();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = code_of("fn f<'a>(x: &'a str) -> &'a str { x } g();");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        assert!(c[0].contains("g();"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let c = code_of("let q = '\"'; let e = '\\''; let n = '\\n'; done();");
        assert!(c[0].contains("done();"), "char-literal quotes must not open strings: {}", c[0]);
        assert!(!c[0].contains('"'));
    }

    #[test]
    fn code_length_is_preserved() {
        let src = "let s = \"abc\"; // tail";
        let lines = strip(src);
        assert_eq!(lines[0].code.chars().count(), src.chars().count());
    }

    #[test]
    fn multi_line_statement_survives() {
        // The rule scans join lines; the lexer just has to keep the code.
        let src = "v.sort_by(|a, b| {\n    a.partial_cmp(b)\n        .unwrap()\n});";
        let c = code_of(src);
        assert!(c[0].contains("sort_by"));
        assert!(c[1].contains("partial_cmp"));
        assert!(c[2].contains(".unwrap()"));
    }

    #[test]
    fn line_comment_inside_string_is_code() {
        let c = code_of("let url = \"http://x\"; real();");
        assert!(c[0].contains("real();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let c = code_of("let var = over\"s\"; next();");
        // `over"s"` — the `r` belongs to `over`, so the string is just "s".
        assert!(c[0].contains("next();"));
        assert!(c[0].contains("let var = over"));
    }
}
