//! Serving-cell candidate evaluation: RSRP with path loss, shadowing and
//! neighbor interference.
//!
//! For each technology layer this module answers: what is the best cell at
//! the UE's current position, how strong is it, and how strong is the
//! runner-up (which doubles as the dominant interferer for SINR)?

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wheels_geo::region::RegionKind;
use wheels_radio::band::Technology;
use wheels_radio::pathloss::PathLossModel;
use wheels_radio::shadowing::ShadowBank;

use crate::cell::{tech_index, CellDb, CellId};

/// Clutter factor for a region kind, feeding [`PathLossModel`].
pub fn clutter(region: RegionKind) -> f64 {
    match region {
        RegionKind::UrbanCore => 0.9,
        RegionKind::Urban => 0.7,
        RegionKind::Suburban => 0.4,
        RegionKind::Highway => 0.15,
    }
}

/// Minimum RSRP (dBm) for a layer to be considered available. High bands
/// need more signal to be useful.
pub fn min_rsrp_dbm(tech: Technology) -> f64 {
    match tech {
        Technology::Lte => -118.0,
        Technology::LteA => -115.0,
        Technology::Nr5gLow => -118.0,
        Technology::Nr5gMid => -110.0,
        Technology::Nr5gMmWave => -105.0,
    }
}

/// The best cell of a layer at a location.
#[derive(Debug, Clone, Copy)]
pub struct LayerCandidate {
    /// Best cell id.
    pub cell: CellId,
    /// Its RSRP, dBm.
    pub rsrp_dbm: f64,
    /// RSRP of the second-best cell, dBm (dominant interferer), if any.
    pub second_rsrp_dbm: Option<f64>,
    /// Id of the second-best cell (load-balancing handover target).
    pub second_cell: Option<CellId>,
}

/// Shadowing parameters (σ dB, decorrelation distance m) per technology.
/// mmWave shadowing is harsher and changes faster (blockage).
pub fn shadow_params(tech: Technology) -> (f64, f64) {
    match tech {
        Technology::Nr5gMmWave => (7.0, 25.0),
        Technology::Nr5gMid => (6.0, 60.0),
        _ => (5.5, 90.0),
    }
}

/// Per-UE store of shadowing fields, one per cell actually evaluated.
///
/// Fields are seeded from (UE seed, cell id) so every UE sees its own
/// deterministic shadowing realization per cell, evaluated monotonically in
/// odometer distance as the vehicle advances. Storage is one
/// position-indexed [`ShadowBank`] per technology layer (the caller passes
/// the cell's position in its layer's sorted array), so the per-tick scan
/// advances the whole audible window in one batched call.
#[derive(Debug)]
pub struct ShadowStore {
    seed: u64,
    banks: [ShadowBank; 5],
    steps_since_prune: u32,
}

impl ShadowStore {
    /// Create a store for one UE.
    pub fn new(seed: u64) -> Self {
        ShadowStore {
            seed,
            banks: Technology::ALL.map(|t| {
                let (sigma, corr) = shadow_params(t);
                ShadowBank::new(sigma, corr)
            }),
            steps_since_prune: 0,
        }
    }

    /// Advance the fields for the cells at layer positions `positions`
    /// (ids indexed by position) to odometer `od_m`; returns their values
    /// in position order.
    pub fn advance_span(
        &mut self,
        tech: Technology,
        positions: std::ops::Range<usize>,
        ids: &[CellId],
        od_m: f64,
    ) -> &[f64] {
        let ue_seed = self.seed;
        self.banks[tech_index(tech)].advance_span(positions, od_m, |pos| {
            ue_seed ^ u64::from(ids[pos].0).wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        })
    }

    /// Shadowing in dB for the cell at layer position `pos` (with id
    /// `cell`, which seeds the field) at odometer `od_m`.
    pub fn shadow_at(&mut self, tech: Technology, pos: usize, cell: CellId, od_m: f64) -> f64 {
        let seed = self.seed ^ u64::from(cell.0).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        self.banks[tech_index(tech)].advance_one(pos, od_m, seed)
    }

    /// Drop fields for cells left far behind; call occasionally.
    ///
    /// Every cell within radio range of the vehicle is re-queried on every
    /// step, so a field's `last_od_m` tracks the vehicle as long as its cell
    /// is reachable; once a cell falls out of its layer's query window the
    /// (non-decreasing) odometer guarantees it can never re-enter. Dropping
    /// fields last touched more than `keep_window_m` behind `od_m` is thus
    /// byte-identical to never pruning, provided `keep_window_m` exceeds
    /// every layer's query window (max `nominal_range_m() * 2.0` = 14 km).
    pub fn maybe_prune(&mut self, od_m: f64, keep_window_m: f64) {
        self.steps_since_prune += 1;
        if self.steps_since_prune < 2_000 {
            return;
        }
        self.steps_since_prune = 0;
        for bank in &mut self.banks {
            bank.retire_before(od_m - keep_window_m);
        }
    }

    /// Number of live shadowing fields (diagnostics).
    pub fn len(&self) -> usize {
        self.banks.iter().map(ShadowBank::live_count).sum()
    }

    /// Whether the store holds no fields yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluate the best candidate on `tech`'s layer at odometer `od_m`.
///
/// Returns `None` if no cell is in range or the best is below the layer's
/// availability threshold.
pub fn evaluate_layer(
    db: &CellDb,
    tech: Technology,
    od_m: f64,
    region: RegionKind,
    clutter_scale: f64,
    shadows: &mut ShadowStore,
) -> Option<LayerCandidate> {
    let pl = PathLossModel::new(tech.band(), layer_clutter(tech, region, clutter_scale));
    evaluate_layer_with(db, tech, od_m, &pl, shadows)
}

/// Effective clutter factor of one layer at one region: what
/// [`evaluate_layer`] feeds [`PathLossModel::new`]. Exposed so per-UE
/// callers can cache the model while the region is unchanged.
pub fn layer_clutter(tech: Technology, region: RegionKind, clutter_scale: f64) -> f64 {
    if tech == Technology::Nr5gMmWave {
        // mmWave cells are deployed for street-level LOS; effective clutter
        // is far below the macro environment's.
        clutter(region) * 0.25 * clutter_scale
    } else {
        clutter(region) * clutter_scale
    }
}

/// [`evaluate_layer`] with a caller-supplied path-loss model (cached per
/// layer while the clutter environment is unchanged — the hot path).
pub fn evaluate_layer_with(
    db: &CellDb,
    tech: Technology,
    od_m: f64,
    pl: &PathLossModel,
    shadows: &mut ShadowStore,
) -> Option<LayerCandidate> {
    let window = tech.nominal_range_m() * 1.6;
    let range = db.window_range(tech, od_m, window);
    evaluate_layer_span(db, tech, range, od_m, pl, shadows)
}

/// [`evaluate_layer_with`] with the audible window already located —
/// per-UE steppers track it incrementally with a
/// [`crate::cell::WindowCursor`] instead of re-running the binary
/// searches every tick. `range` must equal what
/// [`CellDb::window_range`] returns for `tech`'s window at `od_m`.
pub fn evaluate_layer_span(
    db: &CellDb,
    tech: Technology,
    range: std::ops::Range<usize>,
    od_m: f64,
    pl: &PathLossModel,
    shadows: &mut ShadowStore,
) -> Option<LayerCandidate> {
    if range.is_empty() {
        return None;
    }
    let layer = db.layer(tech);
    let (ids, ods, lat_sq, eirp) = (
        layer.ids(),
        layer.od_m(),
        layer.lat_sq_m2(),
        layer.eirp_re_dbm(),
    );
    // The shadowing advance is unconditional for every audible cell —
    // pruned-from-scoring or not — or the per-field RNG streams shift.
    let sh = shadows.advance_span(tech, range.start..range.end, ids, od_m);
    let mut best: Option<(CellId, f64)> = None;
    let mut second: Option<(CellId, f64)> = None;
    for (j, i) in range.enumerate() {
        let shv = sh[j];
        let along = od_m - ods[i];
        let d2 = along * along + lat_sq[i];
        if let Some((_, s)) = second {
            // Contender skip: `loss_lb_db` is strictly below the exact
            // loss, so `ub` strictly exceeds the exact RSRP; a cell with
            // `ub <= second` can change neither best nor second (ties do
            // not displace the incumbent), and its RSRP is never output.
            let ub = eirp[i] - pl.loss_lb_db(d2) + shv;
            if ub <= s {
                continue;
            }
        }
        let rsrp = eirp[i] - pl.loss_db(d2.sqrt()) + shv;
        match best {
            None => best = Some((ids[i], rsrp)),
            Some((b_id, b)) if rsrp > b => {
                second = Some((b_id, b));
                best = Some((ids[i], rsrp));
            }
            Some(_) => {
                if second.is_none_or(|(_, s)| rsrp > s) {
                    second = Some((ids[i], rsrp));
                }
            }
        }
    }
    let (cell, rsrp_dbm) = best.expect("nonempty cell list yields a best");
    if rsrp_dbm < min_rsrp_dbm(tech) {
        return None;
    }
    Some(LayerCandidate {
        cell,
        rsrp_dbm,
        second_rsrp_dbm: second.map(|(_, r)| r),
        second_cell: second.map(|(id, _)| id),
    })
}

/// Wideband SINR (dB) for a candidate: signal over thermal floor plus the
/// dominant interferer discounted by an activity factor.
pub fn sinr_db(cand: &LayerCandidate, tech: Technology, noise_eff_dbm: f64, rng: &mut SmallRng) -> f64 {
    sinr_db_with_noise_lin(cand, tech, 10f64.powf(noise_eff_dbm / 10.0), rng)
}

/// [`sinr_db`] with the noise floor already converted to linear —
/// `10^(noise_eff_dbm/10)` is constant per (operator, technology,
/// direction), so the per-tick path precomputes it (see
/// [`crate::config::link_noise_lin`]).
pub fn sinr_db_with_noise_lin(
    cand: &LayerCandidate,
    tech: Technology,
    noise_lin: f64,
    rng: &mut SmallRng,
) -> f64 {
    let activity_db = match tech {
        // Beamformed mmWave neighbors rarely point at you.
        Technology::Nr5gMmWave => 12.0,
        _ => 3.0,
    };
    let interf_lin = cand
        .second_rsrp_dbm
        .map_or(0.0, |s| 10f64.powf((s - activity_db) / 10.0));
    let denom_dbm = 10.0 * (noise_lin + interf_lin).log10();
    // Small fast-fading residual.
    cand.rsrp_dbm - denom_dbm + rng.gen_range(-1.5..1.5)
}

/// Deterministic helper to build a per-purpose RNG from a UE seed.
pub fn sub_rng(seed: u64, salt: u64) -> SmallRng {
    // lint:allow(D4): the UE seed is netsim::rng-derived upstream; this
    // helper only splits per-purpose sub-streams off it
    SmallRng::seed_from_u64(seed ^ salt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellSite;
    use crate::operator::Operator;

    fn db_with(cells: Vec<(u32, Technology, f64, f64)>) -> CellDb {
        CellDb::new(
            Operator::Verizon,
            cells
                .into_iter()
                .map(|(id, tech, od, lat)| CellSite {
                    id: CellId(id),
                    op: Operator::Verizon,
                    tech,
                    odometer_m: od,
                    lateral_m: lat,
                    eirp_re_dbm: 32.0,
                })
                .collect(),
        )
    }

    #[test]
    fn nearest_cell_wins_without_shadowing_luck() {
        let db = db_with(vec![
            (1, Technology::Lte, 1_000.0, 100.0),
            (2, Technology::Lte, 6_000.0, 100.0),
        ]);
        let mut sh = ShadowStore::new(1);
        let c = evaluate_layer(&db, Technology::Lte, 1_200.0, RegionKind::Suburban, 1.0, &mut sh)
            .expect("cell in range");
        assert_eq!(c.cell, CellId(1));
        assert!(c.second_rsrp_dbm.is_some());
        assert!(c.rsrp_dbm > c.second_rsrp_dbm.unwrap());
    }

    #[test]
    fn empty_layer_gives_none() {
        let db = db_with(vec![(1, Technology::Lte, 1_000.0, 100.0)]);
        let mut sh = ShadowStore::new(1);
        assert!(evaluate_layer(
            &db,
            Technology::Nr5gMmWave,
            1_000.0,
            RegionKind::UrbanCore,
            1.0,
            &mut sh
        )
        .is_none());
    }

    #[test]
    fn out_of_range_mmwave_unavailable() {
        let db = db_with(vec![(1, Technology::Nr5gMmWave, 0.0, 50.0)]);
        let mut sh = ShadowStore::new(1);
        // 2 km from a mmWave cell: far outside its ~280 m range.
        assert!(evaluate_layer(
            &db,
            Technology::Nr5gMmWave,
            2_000.0,
            RegionKind::UrbanCore,
            1.0,
            &mut sh
        )
        .is_none());
    }

    #[test]
    fn mmwave_rsrp_in_papers_range() {
        // At 80-250 m from a mmWave cell, RSRP should land in the -70..-110
        // dBm window the paper describes.
        let db = db_with(vec![(1, Technology::Nr5gMmWave, 0.0, 40.0)]);
        let mut sh = ShadowStore::new(2);
        for od in [80.0, 150.0, 230.0] {
            if let Some(c) =
                evaluate_layer(&db, Technology::Nr5gMmWave, od, RegionKind::UrbanCore, 1.0, &mut sh)
            {
                // eirp 32 here is a generic macro value; real mmWave eirp is
                // set by deployment::eirp_re_dbm. Just check monotonic decay
                // and plausible magnitude.
                assert!((-115.0..-55.0).contains(&c.rsrp_dbm), "{}", c.rsrp_dbm);
            }
        }
    }

    #[test]
    fn lte_macro_rsrp_plausible_at_2km() {
        let db = db_with(vec![(1, Technology::Lte, 0.0, 200.0)]);
        let mut sh = ShadowStore::new(3);
        let c = evaluate_layer(&db, Technology::Lte, 2_000.0, RegionKind::Suburban, 1.0, &mut sh)
            .expect("in range");
        assert!((-115.0..-75.0).contains(&c.rsrp_dbm), "{}", c.rsrp_dbm);
    }

    #[test]
    fn sinr_reduced_by_strong_interferer() {
        let mut rng = sub_rng(1, 2);
        let strong_interf = LayerCandidate {
            cell: CellId(1),
            rsrp_dbm: -90.0,
            second_rsrp_dbm: Some(-92.0),
            second_cell: Some(CellId(2)),
        };
        let weak_interf = LayerCandidate {
            cell: CellId(1),
            rsrp_dbm: -90.0,
            second_rsrp_dbm: Some(-115.0),
            second_cell: Some(CellId(2)),
        };
        let s1 = sinr_db(&strong_interf, Technology::Lte, -110.0, &mut rng);
        let s2 = sinr_db(&weak_interf, Technology::Lte, -110.0, &mut rng);
        assert!(s1 < s2 - 5.0, "{s1} vs {s2}");
    }

    #[test]
    fn cell_edge_sinr_is_low() {
        let mut rng = sub_rng(4, 4);
        let edge = LayerCandidate {
            cell: CellId(1),
            rsrp_dbm: -100.0,
            second_rsrp_dbm: Some(-101.0),
            second_cell: Some(CellId(2)),
        };
        let s = sinr_db(&edge, Technology::Lte, -110.0, &mut rng);
        assert!(s < 8.0, "{s}");
    }

    #[test]
    fn shadow_store_prunes_cells_left_behind() {
        let mut sh = ShadowStore::new(5);
        for i in 0..600 {
            let _ = sh.shadow_at(Technology::Lte, i as usize, CellId(i), i as f64 * 100.0);
        }
        for _ in 0..2_001 {
            sh.maybe_prune(1_000_000.0, 10_000.0);
        }
        assert!(sh.is_empty(), "all cells lie ~940+ km behind the window");
    }

    #[test]
    fn shadow_store_prune_keeps_window() {
        let mut sh = ShadowStore::new(5);
        for i in 0..600 {
            let _ = sh.shadow_at(Technology::Lte, i as usize, CellId(i), i as f64 * 100.0);
        }
        // Vehicle at 59.9 km; a 10 km window keeps cells touched at ≥ 49.9 km
        // (inclusive): positions 499..=599.
        for _ in 0..2_001 {
            sh.maybe_prune(59_900.0, 10_000.0);
        }
        assert_eq!(sh.len(), 101);
    }

    #[test]
    fn shadow_store_prune_is_transparent() {
        // A pruned store must return exactly the values an unpruned store
        // does: fields are only dropped once their cell can no longer be
        // queried, and re-derivation never happens for live cells.
        let run = |keep_window_m: f64| {
            let mut sh = ShadowStore::new(9);
            let mut vals = Vec::new();
            for step in 0..30_000u32 {
                let od = step as f64 * 2.0; // 60 km of travel
                // Query the cells "in range": one per km, ±6 km around us.
                let center = (od / 1_000.0) as i64;
                for c in (center - 6).max(0)..=center + 6 {
                    vals.push(sh.shadow_at(Technology::Lte, c as usize, CellId(c as u32), od));
                }
                sh.maybe_prune(od, keep_window_m);
            }
            (vals, sh.len())
        };
        let (pruned, live) = run(20_000.0);
        let (unpruned, all) = run(f64::INFINITY);
        assert_eq!(pruned, unpruned);
        assert!(live < all, "prune never dropped anything ({live} vs {all})");
    }

    #[test]
    fn shadow_at_deterministic_for_same_cell_identity() {
        // The field realization depends on (UE seed, cell id) and the query
        // distances — never on the layer position used to address it.
        let mut a = ShadowStore::new(77);
        let mut b = ShadowStore::new(77);
        let mut d = 0.0;
        for _ in 0..200 {
            d += 5.0;
            let va = a.shadow_at(Technology::Nr5gMid, 3, CellId(1234), d);
            let vb = b.shadow_at(Technology::Nr5gMid, 9, CellId(1234), d);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
}
