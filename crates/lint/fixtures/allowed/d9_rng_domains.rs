//! The D9-clean counterpart: call sites key pinned domains with the
//! registered arity, variable-length domains pass a named word slice
//! (structural check only), and the one deliberate odd site carries an
//! allow with a reason.

fn derive_seed(_campaign_seed: u64, _domain: u64, _words: &[u64]) -> u64 {
    0
}

pub fn phone_stream(seed: u64, op: u64, day: u64) -> u64 {
    // Pinned arity 2: [operator, day].
    derive_seed(seed, DOMAIN_PHONE, &[op, day])
}

pub fn cycle_stream(seed: u64, day: u64) -> u64 {
    derive_seed(seed, DOMAIN_CYCLE, &[day])
}

pub fn fault_stream(seed: u64, words: &[u64]) -> u64 {
    // DOMAIN_FAULT is unpinned: a variable-length key is fine.
    derive_seed(seed, DOMAIN_FAULT, words)
}

pub fn calibration_stream(seed: u64) -> u64 {
    // lint:allow(D9): one-off calibration draw predates the two-word key; keyed by constant zero on purpose
    derive_seed(seed, DOMAIN_PHONE, &[0])
}

use crate::rng::{DOMAIN_CYCLE, DOMAIN_FAULT, DOMAIN_PHONE};
