//! # wheels-radio
//!
//! Physical-layer primitives for the *Cellular Networks on the Wheels*
//! replication: radio technologies and bands, path loss, spatially
//! correlated shadowing, mmWave beam models, SINR → MCS / spectral-efficiency
//! / BLER link maps, and carrier-aggregation capacity.
//!
//! The paper logs five KPIs per 500 ms interval via XCAL (Table 2): primary
//! cell RSRP, primary cell MCS, carrier aggregation, primary cell BLER, and
//! handovers. This crate produces the first four from first principles so
//! that the correlation structure in Table 2 *emerges* (weak positive RSRP
//! and MCS correlations, near-zero BLER, Verizon's mmWave RSRP paradox)
//! instead of being sampled from the paper's numbers.
//!
//! Conventions: power in dBm, gains/losses in dB, distances in meters,
//! bandwidth in MHz, capacity in Mbps. All randomness is caller-seeded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod beam;
pub mod bler;
pub mod capacity;
pub mod mcs;
pub mod pathloss;
pub mod shadowing;

pub use band::{Band, Technology};
pub use beam::BeamProfile;
pub use bler::bler_from_sinr;
pub use capacity::{CapacityModel, LinkCapacity};
pub use mcs::{gapped_shannon_bound, mcs_from_bound, mcs_from_sinr, spectral_efficiency, MAX_MCS};
pub use pathloss::PathLossModel;
pub use shadowing::ShadowingField;

/// Convert a dB value to a linear power ratio.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear power ratio to dB.
#[inline]
pub fn linear_to_db(lin: f64) -> f64 {
    10.0 * lin.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn three_db_doubles() {
        assert!((db_to_linear(3.0103) - 2.0).abs() < 1e-3);
    }
}
