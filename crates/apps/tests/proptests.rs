//! Property tests for the killer-app models.

use proptest::prelude::*;

use wheels_apps::ar::ArApp;
use wheels_apps::cav::CavApp;
use wheels_apps::config::{AR_CONFIG, CAV_CONFIG};
use wheels_apps::gaming::GamingSession;
use wheels_apps::map_table::map_for_latency;
use wheels_apps::offload::OffloadRun;
use wheels_apps::video::qoe::{session_qoe, ChunkScore};
use wheels_apps::video::{VideoSession, BITRATES_MBPS};
use wheels_apps::{ConstantLink, LinkObs};

fn arb_link() -> impl Strategy<Value = ConstantLink> {
    (0.5f64..1_000.0, 0.2f64..300.0, 5.0f64..300.0).prop_map(|(dl, ul, rtt)| ConstantLink {
        obs: LinkObs {
            dl_mbps: dl,
            ul_mbps: ul,
            rtt_ms: rtt,
            in_handover: false,
        },
    })
}

proptest! {
    #[test]
    fn map_table_bounded(ft in 0.0f64..100.0, comp in any::<bool>()) {
        let m = map_for_latency(ft, comp);
        prop_assert!((13.0..=38.45).contains(&m));
    }

    #[test]
    fn offload_fps_bounded_by_source(mut link in arb_link(), comp in any::<bool>()) {
        for cfg in [AR_CONFIG, CAV_CONFIG] {
            let s = OffloadRun { config: cfg, compressed: comp }.execute(0.0, &mut link);
            prop_assert!(s.offload_fps <= cfg.fps + 1e-9);
            prop_assert!(s.offload_fps >= 0.0);
            // E2E at least the fixed pipeline cost.
            let floor = if comp {
                cfg.compression_ms + cfg.inference_ms + cfg.decompression_ms
            } else {
                cfg.inference_ms
            };
            for f in &s.frames {
                prop_assert!(f.e2e_ms >= floor - 1e-9);
            }
        }
    }

    #[test]
    fn ar_accuracy_within_table(mut link in arb_link(), comp in any::<bool>()) {
        let r = ArApp::default().run(0.0, comp, &mut link);
        prop_assert!((13.0..=38.46).contains(&r.map_accuracy));
    }

    #[test]
    fn cav_deadline_fraction_valid(mut link in arb_link()) {
        let r = CavApp::default().run(0.0, true, &mut link);
        prop_assert!((0.0..=1.0).contains(&r.deadline_hit_frac));
    }

    #[test]
    fn faster_uplink_never_hurts_offload(ul1 in 1.0f64..100.0, ul2 in 1.0f64..100.0) {
        let (slow, fast) = if ul1 <= ul2 { (ul1, ul2) } else { (ul2, ul1) };
        let mk = |ul| ConstantLink {
            obs: LinkObs { dl_mbps: 100.0, ul_mbps: ul, rtt_ms: 50.0, in_handover: false },
        };
        let a = ArApp::default().run(0.0, true, &mut mk(slow));
        let b = ArApp::default().run(0.0, true, &mut mk(fast));
        prop_assert!(b.offload.e2e_median_ms <= a.offload.e2e_median_ms + 1e-6);
    }

    #[test]
    fn video_invariants(mut link in arb_link()) {
        let s = VideoSession { duration_s: 60.0 }.run(0.0, &mut link);
        prop_assert!(s.qoe <= 100.0 + 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.rebuffer_frac));
        prop_assert!(s.avg_bitrate_mbps <= 100.0 + 1e-9);
        prop_assert!(s.switches <= s.chunks);
        for c in &s.per_chunk {
            prop_assert!(BITRATES_MBPS.contains(&c.bitrate_mbps));
        }
    }

    #[test]
    fn qoe_formula_matches_manual(bitrates in prop::collection::vec(0usize..4, 1..50),
                                  stalls in prop::collection::vec(0.0f64..3.0, 1..50)) {
        let n = bitrates.len().min(stalls.len());
        let chunks: Vec<ChunkScore> = (0..n)
            .map(|i| ChunkScore {
                bitrate_mbps: BITRATES_MBPS[bitrates[i]],
                prev_bitrate_mbps: if i == 0 { None } else { Some(BITRATES_MBPS[bitrates[i - 1]]) },
                rebuffer_s: stalls[i],
            })
            .collect();
        let mut manual = 0.0;
        for (i, c) in chunks.iter().enumerate() {
            let switch = if i == 0 { 0.0 } else { (c.bitrate_mbps - chunks[i - 1].bitrate_mbps).abs() };
            manual += c.bitrate_mbps - switch - 100.0 * c.rebuffer_s;
        }
        manual /= n as f64;
        prop_assert!((session_qoe(&chunks) - manual).abs() < 1e-9);
    }

    #[test]
    fn gaming_invariants(mut link in arb_link()) {
        let s = GamingSession { duration_s: 20.0 }.run(0.0, &mut link);
        prop_assert!(s.send_bitrate_mbps <= 100.0 + 1e-9);
        prop_assert!(s.send_bitrate_mbps >= 1.0 - 1e-9);
        prop_assert!((0.0..=1.0).contains(&s.frame_drop_frac));
        prop_assert!(s.effective_fps <= 60.0 + 1e-9);
        prop_assert!(s.net_latency_ms >= link.obs.rtt_ms - 1e-6);
    }
}
