//! Offline stand-in for `serde_json`.
//!
//! Deterministic JSON writer (compact and 2-space pretty forms, matching
//! serde_json's layout) and a recursive-descent parser, both over the
//! vendored `serde` [`Value`] model. Number tokens parsed from text are
//! kept verbatim ([`serde::Num::Raw`]) so parse→serialize is byte-stable,
//! and native floats are written with Rust's shortest round-trip `Display`
//! so serialize→parse is value-exact. The campaign's byte-identical
//! export guarantee (sequential == parallel) is tested against this
//! writer's output.

#![forbid(unsafe_code)]

pub use serde::Error;
use serde::{Deserialize, Num, Serialize, Value};

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON (`{"a":1,"b":[2,3]}`).
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent, serde_json layout).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.i)));
    }
    T::from_value(&v)
}

// ------------------------------------------------------------------- writer

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(n, out),
        Value::Str(s) => write_str(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in pairs.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_str(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..depth * w {
            out.push(' ');
        }
    }
}

fn write_num(n: &Num, out: &mut String) {
    match n {
        // Non-finite floats have no JSON form; serde_json errors, we emit
        // null (the simulation never produces them).
        Num::F64(x) if !x.is_finite() => out.push_str("null"),
        Num::F32(x) if !x.is_finite() => out.push_str("null"),
        Num::F64(x) => out.push_str(&fmt_float(*x)),
        Num::F32(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{:.1}", x));
            } else {
                out.push_str(&format!("{}", x));
            }
        }
        Num::U64(x) => out.push_str(&x.to_string()),
        Num::I64(x) => out.push_str(&x.to_string()),
        Num::Raw(s) => out.push_str(s),
    }
}

/// serde_json writes integral floats as `1.0`, not `1`; keep that so the
/// number's float-ness survives a round-trip.
fn fmt_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{}", x)
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parser

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.i) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.i)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.i
            ))),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| Error::msg("non-utf8 number"))?;
        if tok.is_empty() || tok == "-" || tok.parse::<f64>().is_err() {
            return Err(Error::msg(format!("bad number at byte {start}")));
        }
        Ok(Value::Num(Num::Raw(tok.to_string())))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            // Find the next byte of interest, copying UTF-8 through.
            let start = self.i;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.i += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.i])
                    .map_err(|_| Error::msg("non-utf8 string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            if self.i + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.i..self.i + 4])
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 3; // the final +1 below completes the 4
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num(Num::U64(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Num(Num::F64(2.0)), Value::Null]),
            ),
        ]);
        let mut c = String::new();
        write_value(&v, None, 0, &mut c);
        assert_eq!(c, "{\"a\":1,\"b\":[2.0,null]}");
        let mut p = String::new();
        write_value(&v, Some(2), 0, &mut p);
        assert_eq!(p, "{\n  \"a\": 1,\n  \"b\": [\n    2.0,\n    null\n  ]\n}");
    }

    #[test]
    fn parse_roundtrip_is_byte_stable() {
        let text = "{\"x\":-1.25e3,\"y\":[true,false,\"a\\nb\"],\"z\":null}";
        let v: Value = {
            let mut p = Parser { bytes: text.as_bytes(), i: 0 };
            p.value(0).unwrap()
        };
        let mut out = String::new();
        write_value(&v, None, 0, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn float_display_roundtrips() {
        for x in [0.1f64, 1.0, -3.5e-9, 123456.789, 1e15, 0.30000000000000004] {
            let s = fmt_float(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
