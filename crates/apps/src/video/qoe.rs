//! The QoE model of Yin et al. (SIGCOMM'15), as configured in §D.1.
//!
//! `QoE_k = B_k − λ·|B_k − B_{k−1}| − μ·T_k` with λ = 1 and μ = 100, where
//! `B_k` is chunk k's bitrate (Mbps) and `T_k` the rebuffering time (s)
//! incurred while downloading it. A session's QoE is the mean over its
//! chunks; the theoretical maximum with this ladder is 100.

/// Bitrate-switch penalty weight (λ).
pub const LAMBDA: f64 = 1.0;
/// Rebuffering penalty weight (μ), per second of stall.
pub const MU: f64 = 100.0;

/// Per-chunk inputs to the QoE formula.
#[derive(Debug, Clone, Copy)]
pub struct ChunkScore {
    /// Bitrate of this chunk, Mbps.
    pub bitrate_mbps: f64,
    /// Bitrate of the previous chunk, if any.
    pub prev_bitrate_mbps: Option<f64>,
    /// Stall time while downloading this chunk, seconds.
    pub rebuffer_s: f64,
}

impl ChunkScore {
    /// QoE of this chunk.
    pub fn qoe(&self) -> f64 {
        let switch = self
            .prev_bitrate_mbps
            .map_or(0.0, |p| (self.bitrate_mbps - p).abs());
        self.bitrate_mbps - LAMBDA * switch - MU * self.rebuffer_s
    }
}

/// Mean QoE over a session's chunks (0 for an empty session).
pub fn session_qoe(chunks: &[ChunkScore]) -> f64 {
    if chunks.is_empty() {
        return 0.0;
    }
    chunks.iter().map(ChunkScore::qoe).sum::<f64>() / chunks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_session_scores_100() {
        let chunks: Vec<ChunkScore> = (0..90)
            .map(|i| ChunkScore {
                bitrate_mbps: 100.0,
                prev_bitrate_mbps: if i == 0 { None } else { Some(100.0) },
                rebuffer_s: 0.0,
            })
            .collect();
        assert!((session_qoe(&chunks) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn one_second_stall_costs_100() {
        let c = ChunkScore {
            bitrate_mbps: 5.0,
            prev_bitrate_mbps: Some(5.0),
            rebuffer_s: 1.0,
        };
        assert!((c.qoe() - (5.0 - 100.0)).abs() < 1e-9);
    }

    #[test]
    fn switch_penalty_is_symmetric() {
        let up = ChunkScore {
            bitrate_mbps: 50.0,
            prev_bitrate_mbps: Some(10.0),
            rebuffer_s: 0.0,
        };
        let down = ChunkScore {
            bitrate_mbps: 10.0,
            prev_bitrate_mbps: Some(50.0),
            rebuffer_s: 0.0,
        };
        assert!((up.qoe() - 10.0).abs() < 1e-9);
        assert!((down.qoe() - (-30.0)).abs() < 1e-9);
    }

    #[test]
    fn first_chunk_has_no_switch_penalty() {
        let c = ChunkScore {
            bitrate_mbps: 100.0,
            prev_bitrate_mbps: None,
            rebuffer_s: 0.0,
        };
        assert_eq!(c.qoe(), 100.0);
    }

    #[test]
    fn empty_session_is_zero() {
        assert_eq!(session_qoe(&[]), 0.0);
    }
}
