//! Cloud gaming à la Steam Remote Play (§7.3, §E).
//!
//! The paper streams 4K/60FPS games from an AWS GPU instance via Steam
//! Remote Play and reports three metrics: send bitrate (the adapter caps
//! at 100 Mbps), network latency, and frame-drop rate. Its key behavioural
//! observation: *"Steam Remote Play tries to keep the frame drop rate low
//! (by adapting the frame rate) even at a cost of very high latency."*
//!
//! [`GamingSession`] models exactly that: an EWMA capacity estimator feeds
//! a conservative bitrate adapter; when the channel underdelivers, frames
//! queue (latency grows) and the frame-rate adapter sheds load before
//! frames are dropped outright.

pub mod bitrate;

use crate::AppLink;
use bitrate::BitrateAdapter;

/// Nominal streaming frame rate.
pub const TARGET_FPS: f64 = 60.0;
/// Session length, seconds.
pub const SESSION_S: f64 = 60.0;

/// Summary of one cloud-gaming session.
#[derive(Debug, Clone)]
pub struct GamingSummary {
    /// Mean send bitrate, Mbps.
    pub send_bitrate_mbps: f64,
    /// Median network latency, ms.
    pub net_latency_ms: f64,
    /// 95th-percentile network latency, ms.
    pub net_latency_p95_ms: f64,
    /// Fraction of frames dropped.
    pub frame_drop_frac: f64,
    /// Mean streamed frame rate after adaptation, FPS.
    pub effective_fps: f64,
    /// Per-second traces (bitrate, latency, fps) for deeper analysis.
    pub trace: Vec<(f64, f64, f64)>,
}

/// One cloud-gaming session.
#[derive(Debug, Clone, Copy)]
pub struct GamingSession {
    /// Session length, seconds.
    pub duration_s: f64,
}

impl Default for GamingSession {
    fn default() -> Self {
        GamingSession {
            duration_s: SESSION_S,
        }
    }
}

impl GamingSession {
    /// Play the session starting at absolute time `t0_s`.
    pub fn run(&self, t0_s: f64, link: &mut dyn AppLink) -> GamingSummary {
        let mut adapter = BitrateAdapter::default();
        let step = 0.25;
        let mut t = 0.0;
        let mut queued_bits = 0.0_f64;
        let mut latencies = Vec::new();
        let mut bitrates = Vec::new();
        let mut trace = Vec::new();
        let mut frames_sent = 0.0_f64;
        let mut frames_dropped = 0.0_f64;
        while t < self.duration_s {
            let obs = link.sample(t0_s + t);
            let cap_mbps = if obs.in_handover { 0.0 } else { obs.dl_mbps };
            let bitrate = adapter.update(cap_mbps, queued_bits > 0.0);
            // Video bits produced this step vs channel drain.
            queued_bits += bitrate * 1e6 * step;
            queued_bits = (queued_bits - cap_mbps * 1e6 * step).max(0.0);
            // Latency = propagation + encoder queue drain time.
            let queue_ms = if cap_mbps > 0.1 {
                queued_bits / (cap_mbps * 1e6) * 1_000.0
            } else {
                500.0
            };
            let latency = obs.rtt_ms + queue_ms.min(1_500.0);
            // Frame-rate adaptation: shed frames when latency balloons
            // (the paper's "keep drops low at the cost of latency").
            let fps = if latency > 250.0 {
                30.0
            } else if latency > 120.0 {
                45.0
            } else {
                TARGET_FPS
            };
            // Residual drops: only when the queue is badly backed up even
            // after fps adaptation.
            let overload = (queue_ms / 1_000.0).clamp(0.0, 1.0);
            let drop_frac_now = (overload - 0.3).max(0.0) * 0.25;
            frames_sent += fps * step;
            frames_dropped += fps * step * drop_frac_now;
            latencies.push(latency);
            bitrates.push(bitrate);
            trace.push((t0_s + t, bitrate, fps));
            t += step;
        }
        latencies.sort_by(f64::total_cmp);
        // Total: `len / 2` and `floor(0.95 * len)` are both in range for
        // any nonempty vec, and a zero-step session falls back to 0.
        let med = latencies.get(latencies.len() / 2).copied().unwrap_or(0.0);
        let p95 = latencies
            .get((latencies.len() as f64 * 0.95) as usize)
            .copied()
            .unwrap_or(med);
        GamingSummary {
            send_bitrate_mbps: bitrates.iter().sum::<f64>() / bitrates.len() as f64,
            net_latency_ms: med,
            net_latency_p95_ms: p95,
            frame_drop_frac: if frames_sent > 0.0 {
                frames_dropped / frames_sent
            } else {
                0.0
            },
            effective_fps: frames_sent / self.duration_s,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantLink, LinkObs};

    #[test]
    fn static_run_matches_paper_baseline() {
        // Paper best static: bitrate 98.5 Mbps (the 100 Mbps cap), latency
        // 17 ms, drop rate 0.5 %.
        let s = GamingSession::default().run(0.0, &mut ConstantLink::good());
        assert!(s.send_bitrate_mbps > 85.0, "{}", s.send_bitrate_mbps);
        assert!(s.net_latency_ms < 30.0, "{}", s.net_latency_ms);
        assert!(s.frame_drop_frac < 0.01, "{}", s.frame_drop_frac);
        assert!((s.effective_fps - 60.0).abs() < 1.0);
    }

    #[test]
    fn bitrate_never_exceeds_cap() {
        let mut link = ConstantLink {
            obs: LinkObs {
                dl_mbps: 2_000.0,
                ul_mbps: 100.0,
                rtt_ms: 5.0,
                in_handover: false,
            },
        };
        let s = GamingSession::default().run(0.0, &mut link);
        assert!(s.send_bitrate_mbps <= 100.0 + 1e-9);
        for (_, b, _) in &s.trace {
            assert!(*b <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn poor_link_keeps_drops_low_but_latency_high() {
        // The paper's observation (2): the platform protects frame rate,
        // paying in latency.
        let s = GamingSession::default().run(0.0, &mut ConstantLink::poor());
        assert!(s.send_bitrate_mbps < 15.0, "{}", s.send_bitrate_mbps);
        assert!(s.frame_drop_frac < 0.15, "{}", s.frame_drop_frac);
        // On a *stable* poor link the adapter settles under capacity, so
        // latency ≈ RTT (90 ms here) — well above the 17 ms static floor
        // the paper reports. Spiky latency needs a varying link (see
        // blackouts_spike_latency).
        assert!(s.net_latency_ms > 80.0, "{}", s.net_latency_ms);
    }

    #[test]
    fn blackouts_spike_latency() {
        struct Blinky;
        impl crate::AppLink for Blinky {
            fn sample(&mut self, t_s: f64) -> LinkObs {
                LinkObs {
                    dl_mbps: 40.0,
                    ul_mbps: 10.0,
                    rtt_ms: 40.0,
                    in_handover: (t_s % 10.0) < 1.0,
                }
            }
        }
        let s = GamingSession::default().run(0.0, &mut Blinky);
        assert!(s.net_latency_p95_ms > 150.0, "{}", s.net_latency_p95_ms);
    }
}
