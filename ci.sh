#!/usr/bin/env bash
# Tier-1 CI gate. Everything runs --offline: the workspace vendors its
# external dependencies under vendor/ (see Cargo.toml [patch.crates-io]).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline

echo "== tests (root package) =="
cargo test -q --offline

echo "== tests (full workspace) =="
cargo test -q --offline --workspace

echo "== sequential vs parallel equivalence (2 seeds x jobs {1,2,4}) =="
cargo test -q --offline --test parallel_equivalence

echo "== fault-injection equivalence (harsh profile, jobs 1 vs 4, 2 seeds) =="
# Determinism must survive injected apparatus faults: the exported dataset
# AND the per-unit integrity report are byte-identical at every job count,
# and the harsh profile must actually degrade at least one unit.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for seed in 11 42; do
  ./target/release/repro --scale smoke --seed "$seed" --fault-profile harsh \
    --jobs 1 --export "$tmp/j1-$seed.json" table1 > /dev/null
  ./target/release/repro --scale smoke --seed "$seed" --fault-profile harsh \
    --jobs 4 --export "$tmp/j4-$seed.json" table1 > /dev/null
  cmp "$tmp/j1-$seed.json" "$tmp/j4-$seed.json"
  cmp "$tmp/j1-$seed.json.integrity.json" "$tmp/j4-$seed.json.integrity.json"
  grep -q -e '"Degraded"' -e '"Lost"' "$tmp/j1-$seed.json.integrity.json" || {
    echo "seed $seed: harsh profile left every unit clean"; exit 1;
  }
done

echo "== report byte-equivalence (quarter scale, fig-jobs 1 vs 4) =="
# The figure fan-out must not change a single byte of `repro all`.
./target/release/repro --scale quarter --fig-jobs 1 all \
  > "$tmp/report-f1.txt" 2> /dev/null
./target/release/repro --scale quarter --fig-jobs 4 --timings \
  --timings-json BENCH_report.json all \
  > "$tmp/report-f4.txt"
cmp "$tmp/report-f1.txt" "$tmp/report-f4.txt"
echo "report timings:"
cat BENCH_report.json

echo "CI OK"
