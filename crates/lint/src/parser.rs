//! A lightweight item parser over the token stream.
//!
//! This is not a Rust grammar — it is the minimal structural model the
//! rules need: where functions begin and end (so findings can name their
//! enclosing function and D8 can scan exactly one body), how `impl` and
//! `mod` scopes nest (so a method can be reported as `Type::name`),
//! which regions are test-only (`#[cfg(test)]` / `#[test]` scopes plus
//! `tests/` files, which D7/D8/D9 must skip), and which identifiers each
//! function calls (D8's one-level transitive closure).
//!
//! The parser walks the token stream once with an explicit scope stack.
//! It is intentionally forgiving: token soup that does not look like an
//! item simply contributes no structure, and unbalanced braces cannot
//! panic — at worst a function's end is clamped to the end of file.

use crate::lexer::{Token, TokenKind};

/// A call site inside a function body: `name(...)` at `line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee identifier (last path segment: `Vec::new` records `new`
    /// and the qualifier separately via [`CallSite::qual`]).
    pub name: String,
    /// Path qualifier immediately before the name (`Vec` in
    /// `Vec::new(..)`), empty for bare calls.
    pub qual: String,
    /// 1-based source line of the callee identifier.
    pub line: usize,
    /// True for `receiver.name(..)` method calls. The receiver's type
    /// is unknown to a token-level analysis, so cross-file resolution
    /// must not bind these by bare name.
    pub method: bool,
}

impl CallSite {
    /// The display form rules match against: `qual::name` or `name`.
    pub fn path(&self) -> String {
        if self.qual.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.qual, self.name)
        }
    }
}

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FunctionInfo {
    /// Bare function name.
    pub name: String,
    /// Qualified name: `Type::name` inside an `impl Type` block, else
    /// the bare name.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the closing brace (clamped to EOF if unbalanced).
    pub end_line: usize,
    /// Token index range of the body (between the braces, exclusive).
    pub body: std::ops::Range<usize>,
    /// True when the function is test-only code: under `#[cfg(test)]`,
    /// annotated `#[test]`, or in a whole-file test context.
    pub is_test: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
}

/// The structural model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// All functions, in source order (nested fns appear after their
    /// parent in the list but carry their own ranges).
    pub functions: Vec<FunctionInfo>,
    /// `test_lines[i]` is true when 1-based line `i + 1` is inside a
    /// test-only region.
    pub test_lines: Vec<bool>,
}

impl FileModel {
    /// Is 1-based `line` inside a test-only region?
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The innermost function containing 1-based `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FunctionInfo> {
        self.functions
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }
}

/// Keywords that can never be call sites or type names.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

/// Is `s` a Rust keyword (per the small set the rules care about)?
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Block,
    Mod,
    Impl,
    Fn,
}

struct ScopeFrame {
    kind: ScopeKind,
    /// Everything inside this scope is test-only.
    test: bool,
    /// `impl` type name, carried so nested fns can qualify.
    impl_ty: Option<String>,
    /// Index into `functions` when `kind == Fn`.
    fn_idx: Option<usize>,
    /// 1-based line of the opening brace.
    start_line: usize,
}

#[derive(Debug, Clone)]
enum Pending {
    Mod { test: bool },
    Impl { ty: String, test: bool },
    Fn { name: String, qual: String, test: bool, start_line: usize },
}

/// Parse the token stream of a file with `n_lines` physical lines.
/// `whole_file_test` marks every line test-only (used for files under
/// `tests/`, `benches/`, or `proptests/` directories).
pub fn parse(tokens: &[Token], n_lines: usize, whole_file_test: bool) -> FileModel {
    let mut model = FileModel {
        functions: Vec::new(),
        test_lines: vec![whole_file_test; n_lines],
    };
    let mut stack: Vec<ScopeFrame> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut pending_test_attr = false;

    let in_test = |stack: &[ScopeFrame]| -> bool {
        whole_file_test || stack.last().map(|f| f.test).unwrap_or(false)
    };
    let impl_ty = |stack: &[ScopeFrame]| -> Option<String> {
        stack.iter().rev().find_map(|f| f.impl_ty.clone())
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct if t.is_punct('#') && next_is_punct(tokens, i + 1, '[') => {
                let (end, is_test_attr) = scan_attribute(tokens, i + 1);
                if is_test_attr {
                    pending_test_attr = true;
                }
                i = end;
                continue;
            }
            TokenKind::Ident if t.text == "mod" => {
                pending = Some(Pending::Mod {
                    test: pending_test_attr,
                });
                pending_test_attr = false;
            }
            TokenKind::Ident if t.text == "impl" => {
                let ty = impl_type_name(tokens, i + 1);
                pending = Some(Pending::Impl {
                    ty,
                    test: pending_test_attr,
                });
                pending_test_attr = false;
            }
            TokenKind::Ident if t.text == "fn" => {
                // Only a definition when followed by a name; `fn(u32)`
                // pointer types have `(` next and define nothing.
                if let Some(name_tok) = tokens.get(i + 1) {
                    if name_tok.kind == TokenKind::Ident && !is_keyword(&name_tok.text) {
                        let name = name_tok.text.clone();
                        let qual = match impl_ty(&stack) {
                            Some(ty) => format!("{ty}::{name}"),
                            None => name.clone(),
                        };
                        pending = Some(Pending::Fn {
                            name,
                            qual,
                            test: pending_test_attr,
                            start_line: t.line,
                        });
                    }
                }
                pending_test_attr = false;
            }
            TokenKind::Ident
                if pending_test_attr
                    && matches!(
                        t.text.as_str(),
                        "use" | "const" | "static" | "type" | "struct" | "enum" | "trait"
                    ) =>
            {
                // `#[cfg(test)]` guarding a single non-scope item: mark
                // from the item keyword to its terminator (`;` or the
                // matching close brace of an inline body).
                let end_line = single_item_end(tokens, i);
                mark_test(&mut model.test_lines, t.line, end_line);
                pending_test_attr = false;
            }
            TokenKind::Punct if t.is_punct('{') => {
                let enclosing_test = in_test(&stack);
                let mut frame = ScopeFrame {
                    kind: ScopeKind::Block,
                    test: enclosing_test,
                    impl_ty: None,
                    fn_idx: None,
                    start_line: t.line,
                };
                match pending.take() {
                    Some(Pending::Mod { test }) => {
                        frame.kind = ScopeKind::Mod;
                        frame.test = enclosing_test || test;
                    }
                    Some(Pending::Impl { ty, test }) => {
                        frame.kind = ScopeKind::Impl;
                        frame.test = enclosing_test || test;
                        frame.impl_ty = Some(ty);
                    }
                    Some(Pending::Fn {
                        name,
                        qual,
                        test,
                        start_line,
                    }) => {
                        frame.kind = ScopeKind::Fn;
                        frame.test = enclosing_test || test;
                        frame.fn_idx = Some(model.functions.len());
                        model.functions.push(FunctionInfo {
                            name,
                            qual,
                            start_line,
                            end_line: t.line,
                            body: (i + 1)..(i + 1),
                            is_test: frame.test,
                            calls: Vec::new(),
                        });
                    }
                    None => {}
                }
                stack.push(frame);
            }
            TokenKind::Punct if t.is_punct('}') => {
                if let Some(frame) = stack.pop() {
                    if frame.test && !whole_file_test {
                        mark_test(&mut model.test_lines, frame.start_line, t.line);
                    }
                    if let Some(idx) = frame.fn_idx {
                        if let Some(f) = model.functions.get_mut(idx) {
                            f.end_line = t.line;
                            f.body.end = i;
                        }
                    }
                }
            }
            TokenKind::Punct if t.is_punct(';') => {
                // `mod foo;`, trait method without a body, etc.
                pending = None;
            }
            _ => {}
        }
        i += 1;
    }
    // Unbalanced braces: clamp any still-open function to EOF.
    let eof_line = n_lines.max(1);
    while let Some(frame) = stack.pop() {
        if frame.test && !whole_file_test {
            mark_test(&mut model.test_lines, frame.start_line, eof_line);
        }
        if let Some(idx) = frame.fn_idx {
            if let Some(f) = model.functions.get_mut(idx) {
                f.end_line = eof_line;
                f.body.end = tokens.len();
            }
        }
    }

    collect_calls(tokens, &mut model);
    model
}

fn next_is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).map(|t| t.is_punct(c)).unwrap_or(false)
}

/// Scan an attribute starting at the `[` token index. Returns the token
/// index just past the matching `]` and whether the attribute is a test
/// marker: `#[test]`, `#[cfg(test)]`, or a `cfg` whose first argument is
/// `test` (`#[cfg(all(test, ...))]` is deliberately NOT matched — only a
/// plain leading `test` counts; `not(test)` never matches).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut end = tokens.len();
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                end = j + 1;
                break;
            }
        }
        j += 1;
    }
    let body = &tokens[open..end.min(tokens.len())];
    // `#[test]` (possibly with arguments, e.g. proptest's `#[test]`
    // inside its macro): first ident in the attribute is `test`.
    let first_ident = body.iter().find(|t| t.kind == TokenKind::Ident);
    let is_test = match first_ident {
        Some(t) if t.text == "test" => true,
        Some(t) if t.text == "cfg" => {
            // `cfg ( test ...` — `test` must immediately follow the
            // open paren so `cfg(not(test))` does not match.
            let mut it = body.iter().skip_while(|x| !x.is_ident("cfg"));
            it.next();
            matches!(
                (it.next(), it.next()),
                (Some(p), Some(arg)) if p.is_punct('(') && arg.is_ident("test")
            )
        }
        _ => false,
    };
    (end, is_test)
}

/// The type name an `impl` introduces: last path segment of the
/// implemented-for type (`impl Foo`, `impl<'a> Trait for Foo<'a>`,
/// `impl crate::x::Foo` all yield `Foo`).
fn impl_type_name(tokens: &[Token], mut i: usize) -> String {
    // Skip generic parameters directly after `impl`.
    if next_is_punct(tokens, i, '<') {
        let mut depth = 0i32;
        while i < tokens.len() {
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if tokens[i].is_punct('>') {
                depth -= 1;
                if depth <= 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Scan to `{` (or `;`), tracking the last ident seen at angle-depth
    // zero; a `for` keyword resets — the type is what follows it.
    let mut depth = 0i32;
    let mut last = String::new();
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if depth <= 0 && t.kind == TokenKind::Ident {
            if t.text == "for" {
                last.clear();
            } else if !is_keyword(&t.text) {
                last = t.text.clone();
            }
        }
        i += 1;
    }
    last
}

/// End line of a single `#[cfg(test)]`-guarded non-scope item starting
/// at token `i`: the `;` at brace-depth zero, or the close of an inline
/// `{}` body (struct/enum), clamped to the item's start line on soup.
fn single_item_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth <= 0 {
                return t.line;
            }
        } else if t.is_punct(';') && depth == 0 {
            return t.line;
        }
        j += 1;
    }
    tokens.get(i).map(|t| t.line).unwrap_or(1)
}

fn mark_test(test_lines: &mut [bool], start_line: usize, end_line: usize) {
    let lo = start_line.saturating_sub(1);
    let hi = end_line.min(test_lines.len());
    for flag in test_lines.iter_mut().take(hi).skip(lo) {
        *flag = true;
    }
}

/// Second pass: record `name(...)` call sites inside each function body.
fn collect_calls(tokens: &[Token], model: &mut FileModel) {
    for f in &mut model.functions {
        let lo = f.body.start.min(tokens.len());
        let hi = f.body.end.min(tokens.len());
        for idx in lo..hi {
            let t = &tokens[idx];
            if t.kind != TokenKind::Ident || is_keyword(&t.text) {
                continue;
            }
            // A call is `name(` — or `name::<T>(` with a turbofish,
            // which matters for D8 (`collect::<Vec<_>>()` allocates).
            let direct = next_is_punct(tokens, idx + 1, '(');
            let turbofish = !direct
                && next_is_punct(tokens, idx + 1, ':')
                && next_is_punct(tokens, idx + 2, ':')
                && next_is_punct(tokens, idx + 3, '<')
                && {
                    let mut depth = 0i32;
                    let mut j = idx + 3;
                    let mut after = None;
                    while j < hi {
                        if tokens[j].is_punct('<') {
                            depth += 1;
                        } else if tokens[j].is_punct('>') {
                            depth -= 1;
                            if depth <= 0 {
                                after = Some(j + 1);
                                break;
                            }
                        }
                        j += 1;
                    }
                    after.map(|a| next_is_punct(tokens, a, '(')).unwrap_or(false)
                };
            if !direct && !turbofish {
                continue;
            }
            // `fn inner(` — a nested definition, not a call.
            if idx > 0 && tokens[idx - 1].is_ident("fn") {
                continue;
            }
            // `Vec::new(` — capture the qualifier for path matching.
            let qual = if idx >= 3
                && tokens[idx - 1].is_punct(':')
                && tokens[idx - 2].is_punct(':')
                && tokens[idx - 3].kind == TokenKind::Ident
                && !is_keyword(&tokens[idx - 3].text)
            {
                tokens[idx - 3].text.clone()
            } else {
                String::new()
            };
            let method = idx > 0 && tokens[idx - 1].is_punct('.');
            f.calls.push(CallSite {
                name: t.text.clone(),
                qual,
                line: t.line,
                method,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn model_of(src: &str) -> FileModel {
        let lex = tokenize(src);
        parse(&lex.tokens, lex.lines.len(), false)
    }

    #[test]
    fn free_function_boundaries() {
        let m = model_of("fn alpha() {\n    beta();\n}\nfn gamma() { }\n");
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.functions[0].qual, "alpha");
        assert_eq!((m.functions[0].start_line, m.functions[0].end_line), (1, 3));
        assert_eq!(m.functions[1].qual, "gamma");
        assert!(!m.functions[0].is_test);
    }

    #[test]
    fn impl_methods_are_qualified() {
        let m = model_of("impl ShadowBank {\n    fn advance_span(&mut self) {\n        self.fill();\n    }\n}\n");
        assert_eq!(m.functions[0].qual, "ShadowBank::advance_span");
    }

    #[test]
    fn trait_impl_uses_self_type() {
        let m = model_of("impl<'a> Iterator for Scan<'a> {\n    fn next(&mut self) -> Option<u8> { None }\n}\n");
        assert_eq!(m.functions[0].qual, "Scan::next");
    }

    #[test]
    fn path_impl_uses_last_segment() {
        let m = model_of("impl crate::radio::ShadowBank {\n    fn tick(&self) {}\n}\n");
        assert_eq!(m.functions[0].qual, "ShadowBank::tick");
    }

    #[test]
    fn cfg_test_module_marks_lines() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let m = model_of(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(4));
        assert!(m.is_test_line(5));
        assert!(!m.is_test_line(6));
        let helper = m.functions.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.is_test);
    }

    #[test]
    fn test_attr_marks_one_function() {
        let src = "#[test]\nfn probe() {\n    body();\n}\nfn live() { body(); }\n";
        let m = model_of(src);
        let probe = m.functions.iter().find(|f| f.name == "probe").unwrap();
        assert!(probe.is_test);
        assert!(m.is_test_line(3));
        let live = m.functions.iter().find(|f| f.name == "live").unwrap();
        assert!(!live.is_test);
        assert!(!m.is_test_line(5));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_scope() {
        let m = model_of("#[cfg(not(test))]\nfn live() { body(); }\n");
        assert!(!m.functions[0].is_test);
        assert!(!m.is_test_line(2));
    }

    #[test]
    fn single_guarded_item_marks_through_terminator() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let m = model_of(src);
        assert!(m.is_test_line(2));
        assert!(!m.is_test_line(3));
    }

    #[test]
    fn call_sites_record_names_and_quals() {
        let src = "fn hot() {\n    let v = Vec::new();\n    helper(1);\n    x.to_string();\n}\n";
        let m = model_of(src);
        let calls: Vec<String> = m.functions[0].calls.iter().map(|c| c.path()).collect();
        assert!(calls.contains(&"Vec::new".to_string()));
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&"to_string".to_string()));
    }

    #[test]
    fn nested_fn_is_its_own_function() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n";
        let m = model_of(src);
        assert_eq!(m.functions.len(), 2);
        // `inner` is pushed when its brace opens (after outer's), so it
        // appears second; enclosing_fn picks the innermost by span.
        let inner = m.enclosing_fn(2).unwrap();
        assert_eq!(inner.name, "inner");
    }

    #[test]
    fn fn_pointer_type_defines_nothing() {
        let m = model_of("fn take(f: fn(u32) -> u32) { f(1); }\n");
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "take");
    }

    #[test]
    fn whole_file_test_marks_everything() {
        let lex = tokenize("fn anything() { body(); }\n");
        let m = parse(&lex.tokens, lex.lines.len(), true);
        assert!(m.is_test_line(1));
        assert!(m.functions[0].is_test);
    }

    #[test]
    fn unbalanced_braces_clamp_to_eof() {
        // Trailing `\n` yields a final empty line; EOF is line 3.
        let m = model_of("fn open() {\n    a();\n");
        assert_eq!(m.functions[0].end_line, 3);
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "impl T {\n    fn outer(&self) {\n        inner_call();\n    }\n}\n";
        let m = model_of(src);
        assert_eq!(m.enclosing_fn(3).unwrap().qual, "T::outer");
        assert!(m.enclosing_fn(5).is_none());
    }
}
