//! Clean counterpart of `bad/d2_hashmap_iteration.rs`: ordered
//! collections lint clean; an order-insensitive hash map survives with a
//! written-down justification; test-only hash maps are exempt.

use std::collections::{BTreeMap, BTreeSet};
// lint:allow(D2): membership-only intern pool, never iterated
use std::collections::HashSet;

fn shares(samples: &[(u8, f64)]) -> Vec<(u8, f64)> {
    let mut acc: BTreeMap<u8, f64> = BTreeMap::new();
    for &(k, v) in samples {
        *acc.entry(k).or_insert(0.0) += v;
    }
    acc.into_iter().collect()
}

fn dedup(xs: &[u64]) -> usize {
    let set: BTreeSet<u64> = xs.iter().copied().collect();
    set.len()
}

fn interned(pool: &mut HashSet<&'static str>, s: &'static str) -> bool {
    pool.insert(s)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_maps_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u8, 2u8);
        assert_eq!(m.len(), 1);
    }
}
