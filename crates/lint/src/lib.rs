//! `wheels-lint` — static analysis for the wheels workspace.
//!
//! Every table and figure this repo reproduces rests on two invariants:
//! output is a pure function of `(seed, scenario, scale)`, byte-identical
//! at any `--jobs`/`--fig-jobs` count and under injected faults; and an
//! injected fault degrades a unit instead of aborting the campaign. The
//! equivalence gates in `ci.sh` prove both *dynamically*; this crate
//! enforces them *at the source level* with a token-level analyzer (a
//! spanned tokenizer in [`lexer`], a lightweight item parser in
//! [`parser`]) so a `HashMap` iteration, a stray `unwrap` in the
//! executor, or an allocation in a hot span loop is caught by review
//! tooling instead of by a probabilistic CI failure. Rules:
//!
//! | rule | guards against |
//! |------|----------------|
//! | D1   | float `partial_cmp` as a sort/min/max/binary-search key     |
//! | D2   | `std::collections::HashMap`/`HashSet` in non-test code      |
//! | D3   | ambient nondeterminism: wall clocks, OS entropy, env vars   |
//! | D4   | RNG construction outside `netsim::rng` stream derivation    |
//! | D5   | `partial_cmp(..).unwrap()/.expect(..)` NaN panics           |
//! | D6   | bare `fs::write`/`File::create` (torn-output hazard)        |
//! | D7   | panic surface (`unwrap`/`expect`/`panic!`/slice index) in   |
//! |      | the fault-tolerant trees (executor, checkpoint, export,     |
//! |      | apps)                                                       |
//! | D8   | allocation in registered hot paths (`lint-hotpaths.toml`),  |
//! |      | one call level deep                                         |
//! | D9   | RNG-domain provenance: `derive_seed`/`stream` sites must    |
//! |      | use domains declared once in `netsim::rng`, at a consistent |
//! |      | key arity (`lint-rng-domains.toml`)                         |
//!
//! Suppression is an adjacent `// lint:allow(Dn): <reason>` comment —
//! same line, or a comment-only line directly above the offending code.
//! The reason is mandatory: an allow without one does not suppress.
//!
//! Diagnostics are machine-readable: every finding carries a stable
//! [`Finding::fingerprint`] (rule + relative path + enclosing function +
//! stripped line text + ordinal — never the line number, so unrelated
//! edits do not invalidate entries), and pre-existing debt is tracked in
//! a checked-in `lint-baseline.json` ratchet (see [`baseline`] and
//! [`apply_baseline`]): new findings fail CI, and so do stale baseline
//! entries, forcing the file to shrink monotonically.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use config::LintConfig;

/// The rules. `D1` < `D2` < ... orders report output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Float `partial_cmp` keying an ordering sink.
    D1,
    /// Hash-ordered std collections in non-test code.
    D2,
    /// Ambient nondeterminism (clocks, entropy, environment).
    D3,
    /// RNG construction outside the derivation layer.
    D4,
    /// `partial_cmp` unwrap/expect (NaN panic).
    D5,
    /// Bare `fs::write`/`File::create` in non-test code: a crash
    /// mid-write leaves a torn file under its final name.
    D6,
    /// Panic surface in the fault-tolerant trees: `unwrap`/`expect`,
    /// panic-family macros, and slice indexes that abort a unit instead
    /// of degrading it.
    D7,
    /// Allocation inside a registered hot-path function (directly or one
    /// call level deep).
    D8,
    /// RNG-domain provenance: undeclared/duplicated domain constants or
    /// inconsistent key arity at `derive_seed`/`stream` sites.
    D9,
}

impl Rule {
    /// All rules, report order.
    pub const ALL: [Rule; 9] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::D6,
        Rule::D7,
        Rule::D8,
        Rule::D9,
    ];

    /// The rule's identifier, as written in `lint:allow(..)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::D8 => "D8",
            Rule::D9 => "D9",
        }
    }

    /// Parse `"D2"` → [`Rule::D2`].
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding, after suppression resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in (as given to the linter).
    pub file: PathBuf,
    /// Workspace-relative, `/`-separated path (fingerprint input).
    pub rel: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the anchoring token.
    pub col: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// Qualified name of the enclosing function, empty at item level.
    pub context: String,
    /// Stable identity for baselining; see [`baseline::fingerprint`].
    pub fingerprint: String,
    /// `Some(reason)` when an allow directive (or the built-in module
    /// allowlist) suppresses this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    /// Whether this finding should fail the build (before baselining).
    pub fn is_unsuppressed(&self) -> bool {
        self.suppressed.is_none()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Modules with a standing exemption from one rule. Paths are
/// `/`-separated suffixes of the workspace-relative file path.
///
/// Kept deliberately tiny: the only ambient-nondeterminism consumers in
/// the tree are the `--timings` instrumentation in the repro driver and
/// the linter's own wall-time report (clock reads are *reported*, never
/// fed back into simulation state), and the only legitimate bare RNG
/// constructors are the stream-derivation layer itself and scenario
/// compilation.
pub const BUILTIN_ALLOW: &[(&str, Rule, &str)] = &[
    (
        "crates/bench/src/bin/repro.rs",
        Rule::D3,
        "--timings instrumentation: wall-clock reads are reported, never \
         fed into simulation state",
    ),
    (
        "crates/netsim/src/rng.rs",
        Rule::D4,
        "the stream-derivation layer itself",
    ),
    (
        "crates/campaign/src/scenario.rs",
        Rule::D4,
        "scenario compilation derives the panel seeds",
    ),
];

/// Directory names the workspace walker never descends into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", "node_modules"];

/// An allow directive parsed from a comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: Rule,
    reason: String,
}

/// Parse every well-formed `lint:allow(Dn): reason` in a comment. A
/// directive without a (nonempty) reason is ignored — suppressions must
/// say why.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule_id = rest[..close].trim();
        let after = &rest[close + 1..];
        if let Some(rule) = Rule::parse(rule_id) {
            if let Some(colon) = after.strip_prefix(':') {
                // The reason runs to the next directive (if any) or EOL.
                let end = colon.find("lint:allow(").unwrap_or(colon.len());
                let reason = colon[..end].trim().trim_end_matches('.').to_string();
                if !reason.is_empty() {
                    out.push(Allow {
                        rule,
                        reason: reason.to_string(),
                    });
                }
            }
        }
        rest = after;
    }
    out
}

/// `true` when a path component marks the file as test-only source
/// (integration tests, benches). `src/foo_tests.rs` is *not* test-only —
/// only directory names count.
fn path_is_test(path: &Path) -> bool {
    path.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("proptests")
        )
    })
}

/// Normalize a path for matching and fingerprints: workspace-relative
/// when `root` strips cleanly, always `/`-separated.
fn rel_path(path: &Path, root: Option<&Path>) -> String {
    let p = root
        .and_then(|r| path.strip_prefix(r).ok())
        .unwrap_or(path);
    p.to_string_lossy().replace('\\', "/")
}

/// One file queued for analysis.
struct FileEntry {
    path: PathBuf,
    rel: String,
    src: String,
}

/// The full engine: lex/parse every file, run D1–D7 per file, D8/D9
/// across the set, resolve suppressions, and assign fingerprints.
fn lint_set(entries: Vec<FileEntry>, cfg: &LintConfig) -> Vec<Finding> {
    // Analyze every file.
    let analyzed: Vec<rules::AnalyzedFile> = entries
        .iter()
        .map(|e| rules::analyze(&e.rel, &e.src, path_is_test(&e.path)))
        .collect();

    // Per-file raw findings, then the cross-file rules.
    let mut raw: Vec<Vec<rules::RawFinding>> =
        analyzed.iter().map(|f| rules::run(f, cfg)).collect();
    for (idx, finding) in rules::finalize(&analyzed, cfg) {
        raw[idx].push(finding);
    }

    let mut out = Vec::new();
    for ((entry, file), mut raws) in entries.iter().zip(&analyzed).zip(raw.drain(..)) {
        raws.sort_by_key(|f| (f.line, f.rule as u8, f.col));

        // Attach allow directives: same line when it carries code,
        // otherwise the next code-bearing line (comment-above style).
        let n = file.lines.len();
        let mut allows: Vec<Vec<Allow>> = vec![Vec::new(); n.max(1)];
        for (i, line) in file.lines.iter().enumerate() {
            let parsed = parse_allows(&line.comment);
            if parsed.is_empty() {
                continue;
            }
            let target = if !file.lines[i].code.trim().is_empty() {
                Some(i)
            } else {
                (i + 1..n).find(|&j| !file.lines[j].code.trim().is_empty())
            };
            if let Some(t) = target {
                allows[t].extend(parsed);
            }
        }

        let builtin: Vec<(Rule, &str)> = BUILTIN_ALLOW
            .iter()
            .filter(|(suffix, _, _)| entry.rel.ends_with(suffix))
            .map(|&(_, rule, why)| (rule, why))
            .collect();

        // Ordinals disambiguate repeated identical (rule, context,
        // snippet) tuples within a file, in source order.
        let mut ordinals: Vec<((Rule, String, String), usize)> = Vec::new();
        for f in raws {
            let idx = f.line.saturating_sub(1);
            let snippet = file
                .lines
                .get(idx)
                .map(|l| l.code.trim().to_string())
                .unwrap_or_default();
            let context = file
                .model
                .enclosing_fn(f.line)
                .map(|func| func.qual.clone())
                .unwrap_or_default();
            let key = (f.rule, context.clone(), snippet.clone());
            let ordinal = match ordinals.iter_mut().find(|(k, _)| *k == key) {
                Some((_, count)) => {
                    *count += 1;
                    *count
                }
                None => {
                    ordinals.push((key, 0));
                    0
                }
            };
            let suppressed = allows
                .get(idx)
                .and_then(|a| a.iter().find(|a| a.rule == f.rule))
                .map(|a| a.reason.clone())
                .or_else(|| {
                    builtin
                        .iter()
                        .find(|(r, _)| *r == f.rule)
                        .map(|(_, why)| format!("builtin allowlist: {why}"))
                });
            out.push(Finding {
                file: entry.path.clone(),
                rel: entry.rel.clone(),
                line: f.line,
                col: f.col,
                rule: f.rule,
                fingerprint: baseline::fingerprint(
                    f.rule.id(),
                    &entry.rel,
                    &context,
                    &snippet,
                    ordinal,
                ),
                context,
                message: f.message,
                suppressed,
            });
        }
    }
    out.sort_by(|a, b| {
        (&a.rel, a.line, a.rule, a.col).cmp(&(&b.rel, b.line, b.rule, b.col))
    });
    out
}

/// Lint one file's source text with the builtin configuration. `path`
/// decides test-only status and the built-in allowlist; it is stored
/// verbatim in the findings. (Cross-file D9 checks that need the
/// declaring module are skipped naturally — it is not in the set.)
pub fn lint_source(path: &Path, src: &str) -> Vec<Finding> {
    lint_source_with(path, src, &LintConfig::builtin())
}

/// [`lint_source`] with an explicit configuration (fixtures use this).
pub fn lint_source_with(path: &Path, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    lint_set(
        vec![FileEntry {
            path: path.to_path_buf(),
            rel: rel_path(path, None),
            src: src.to_string(),
        }],
        cfg,
    )
}

/// Recursively collect `.rs` files under `root` in sorted order,
/// skipping build output, vendored deps, and lint fixtures.
pub fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `paths` as one cross-file analysis set.
/// `root` (when given) relativizes paths for fingerprints, so a sweep
/// from the repo root and one over absolute paths agree byte-for-byte.
/// Returns `(findings, files_scanned)`.
pub fn lint_paths(
    paths: &[PathBuf],
    root: Option<&Path>,
    cfg: &LintConfig,
) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    for p in paths {
        collect_rs_files(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut entries = Vec::with_capacity(files.len());
    for f in &files {
        entries.push(FileEntry {
            path: f.clone(),
            rel: rel_path(f, root),
            src: std::fs::read_to_string(f)?,
        });
    }
    let n = entries.len();
    Ok((lint_set(entries, cfg), n))
}

/// The result of matching findings against the ratchet baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Unsuppressed findings covered by the baseline: known debt.
    pub baselined: Vec<Finding>,
    /// Unsuppressed findings NOT in the baseline: these fail CI.
    pub fresh: Vec<Finding>,
    /// Baseline entries that no longer fire: the debt was paid but the
    /// entry was not removed — these fail CI too (ratchet-down).
    pub stale: Vec<baseline::BaselineEntry>,
}

/// Partition unsuppressed findings against the baseline and detect
/// stale entries. Suppressed findings never consume a baseline entry.
pub fn apply_baseline(
    findings: &[Finding],
    entries: &[baseline::BaselineEntry],
) -> BaselineOutcome {
    let mut out = BaselineOutcome::default();
    for f in findings.iter().filter(|f| f.is_unsuppressed()) {
        if entries.iter().any(|e| e.fingerprint == f.fingerprint) {
            out.baselined.push(f.clone());
        } else {
            out.fresh.push(f.clone());
        }
    }
    for e in entries {
        let fired = findings
            .iter()
            .any(|f| f.is_unsuppressed() && f.fingerprint == e.fingerprint);
        if !fired {
            out.stale.push(e.clone());
        }
    }
    out
}

/// Baseline entries for the current unsuppressed findings (what
/// `--write-baseline` records).
pub fn to_baseline_entries(findings: &[Finding]) -> Vec<baseline::BaselineEntry> {
    findings
        .iter()
        .filter(|f| f.is_unsuppressed())
        .map(|f| baseline::BaselineEntry {
            fingerprint: f.fingerprint.clone(),
            rule: f.rule.id().to_string(),
            file: f.rel.clone(),
            message: f.message.clone(),
        })
        .collect()
}

/// JSON-escape a string (no external deps on purpose).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, status: &str) -> String {
    format!(
        "{{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"suppressed\": {}, \"context\": \"{}\", \"fingerprint\": \"{}\", \"status\": \"{}\"}}",
        json_escape(&f.file.to_string_lossy().replace('\\', "/")),
        f.line,
        f.col,
        f.rule,
        json_escape(&f.message),
        f.suppressed
            .as_ref()
            .map_or("null".to_string(), |r| format!("\"{}\"", json_escape(r))),
        json_escape(&f.context),
        f.fingerprint,
        status,
    )
}

fn finding_status(f: &Finding, outcome: Option<&BaselineOutcome>) -> &'static str {
    if f.suppressed.is_some() {
        return "suppressed";
    }
    match outcome {
        Some(o) if o.baselined.iter().any(|b| b.fingerprint == f.fingerprint) => "baselined",
        _ => "new",
    }
}

/// Render findings as a machine-readable JSON array (stable field order).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&finding_json(f, finding_status(f, None)));
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Render the full SARIF-ish run report (`LINT_report.json`): tool
/// metadata, scan stats, every finding with its baseline status, and
/// the baseline reconciliation summary.
pub fn render_report(
    findings: &[Finding],
    files_scanned: usize,
    wall_ms: u128,
    outcome: Option<&BaselineOutcome>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"wheels-lint\",\n  \"schema\": \"wheels-lint-report/2\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    let suppressed = findings.iter().filter(|f| f.suppressed.is_some()).count();
    out.push_str(&format!(
        "  \"summary\": {{\"total\": {}, \"suppressed\": {}, \"baselined\": {}, \"new\": {}, \"stale_baseline\": {}}},\n",
        findings.len(),
        suppressed,
        outcome.map_or(0, |o| o.baselined.len()),
        outcome.map_or_else(
            || findings.iter().filter(|f| f.is_unsuppressed()).count(),
            |o| o.fresh.len()
        ),
        outcome.map_or(0, |o| o.stale.len()),
    ));
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&finding_json(f, finding_status(f, outcome)));
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"stale_baseline\": [\n");
    if let Some(o) = outcome {
        for (i, e) in o.stale.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"fingerprint\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\"}}{}\n",
                json_escape(&e.fingerprint),
                json_escape(&e.rule),
                json_escape(&e.file),
                if i + 1 < o.stale.len() { "," } else { "" },
            ));
        }
    }
    out.push_str("  ]\n}\n");
    out
}

/// Expected outcome of linting one fixture file, derived from its name:
/// `bad/d2_whatever.rs` must produce ≥1 unsuppressed finding, all D2;
/// anything under `allowed/` must produce none.
#[derive(Debug)]
pub struct FixtureResult {
    /// The fixture file.
    pub file: PathBuf,
    /// What went wrong; `None` means the fixture behaved as expected.
    pub error: Option<String>,
}

/// Run the self-check over a fixture corpus directory containing `bad/`
/// and `allowed/` subdirectories. The corpus carries its own
/// `lint-hotpaths.toml`/`lint-rng-domains.toml` so D8/D9 fixtures are
/// self-contained and independent of the workspace registries.
pub fn check_fixtures(dir: &Path) -> std::io::Result<Vec<FixtureResult>> {
    let cfg = LintConfig::load(dir)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut results = Vec::new();
    for (sub, want_findings) in [("bad", true), ("allowed", false)] {
        let mut files = Vec::new();
        collect_rs_files_unfiltered(&dir.join(sub), &mut files)?;
        files.sort();
        for f in files {
            let src = std::fs::read_to_string(&f)?;
            let findings = lint_source_with(&f, &src, &cfg);
            let unsuppressed: Vec<&Finding> =
                findings.iter().filter(|f| f.is_unsuppressed()).collect();
            let error = if want_findings {
                let stem = f.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                let expect = stem
                    .split('_')
                    .next()
                    .and_then(|p| Rule::parse(&p.to_uppercase()));
                match expect {
                    None => Some(format!("bad fixture `{stem}` has no dN_ rule prefix")),
                    Some(rule) => {
                        if unsuppressed.is_empty() {
                            Some(format!("expected {rule} to fire, got no findings"))
                        } else if let Some(wrong) =
                            unsuppressed.iter().find(|f| f.rule != rule)
                        {
                            Some(format!(
                                "expected only {rule}, got {} at line {}",
                                wrong.rule, wrong.line
                            ))
                        } else {
                            None
                        }
                    }
                }
            } else if let Some(first) = unsuppressed.first() {
                Some(format!(
                    "expected clean, got {} at line {}: {}",
                    first.rule, first.line, first.message
                ))
            } else {
                None
            };
            results.push(FixtureResult { file: f, error });
        }
    }
    Ok(results)
}

/// Like [`collect_rs_files`] but without the `fixtures` skip (used to
/// read the fixture corpus itself).
fn collect_rs_files_unfiltered(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root)? {
        let p = entry?.path();
        if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_allow_suppresses() {
        let f = lint_source(
            Path::new("x.rs"),
            "use std::collections::HashMap; // lint:allow(D2): lookup only\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].suppressed.as_deref(), Some("lookup only"));
    }

    #[test]
    fn comment_above_allow_suppresses() {
        let src = "// lint:allow(D4): seed derived upstream\nlet r = SmallRng::seed_from_u64(s);\n";
        let f = lint_source(Path::new("x.rs"), src);
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.is_some());
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let f = lint_source(
            Path::new("x.rs"),
            "let t = Instant::now(); // lint:allow(D3)\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].is_unsuppressed(), "reason-less allow must not count");
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let f = lint_source(
            Path::new("x.rs"),
            "let t = Instant::now(); // lint:allow(D2): wrong rule\n",
        );
        assert!(f[0].is_unsuppressed());
    }

    #[test]
    fn d7_allow_suppresses_with_reason() {
        let f = lint_source(
            Path::new("crates/campaign/src/x.rs"),
            "let v = slots[i]; // lint:allow(D7): i < slots.len() checked above\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D7);
        assert!(f[0].suppressed.is_some());
    }

    #[test]
    fn builtin_allowlist_suppresses_by_suffix() {
        let f = lint_source(
            Path::new("crates/bench/src/bin/repro.rs"),
            "let t0 = Instant::now();\n",
        );
        // repro.rs is in the D7 scope too, but Instant::now is only D3.
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.as_deref().unwrap().starts_with("builtin"));
    }

    #[test]
    fn builtin_allowlist_is_per_rule() {
        // repro.rs is allowlisted for D3, not for D2.
        let f = lint_source(
            Path::new("crates/bench/src/bin/repro.rs"),
            "use std::collections::HashMap;\n",
        );
        assert!(f[0].is_unsuppressed());
    }

    #[test]
    fn cfg_test_module_is_exempt_from_d2() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() { let _ = HashSet::<u8>::new(); }\n}\n";
        let f = lint_source(Path::new("src/x.rs"), src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn code_after_cfg_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\nuse std::collections::HashMap;\n";
        let f = lint_source(Path::new("src/x.rs"), src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn tests_dir_files_are_test_only() {
        let f = lint_source(
            Path::new("crates/geo/tests/proptests.rs"),
            "use std::collections::HashSet;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d1_still_applies_in_test_files() {
        let f = lint_source(
            Path::new("tests/x.rs"),
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D1);
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let f = lint_source(Path::new("x.rs"), "let t = Instant::now();\n");
        let j = to_json(&f);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"rule\": \"D3\""));
        assert!(j.contains("\"suppressed\": null"));
        assert!(j.contains("\"fingerprint\": \""));
    }

    #[test]
    fn findings_carry_context_and_fingerprint() {
        let src = "impl Exec {\n    fn run(&self) {\n        let v = x.unwrap();\n    }\n}\n";
        let f = lint_source(Path::new("crates/campaign/src/executor.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].context, "Exec::run");
        assert_eq!(f[0].fingerprint.len(), 16);
    }

    #[test]
    fn fingerprint_survives_line_moves() {
        let body = "impl Exec {\n    fn run(&self) {\n        let v = x.unwrap();\n    }\n}\n";
        let moved = format!("// a new leading comment\n\n{body}");
        let path = Path::new("crates/campaign/src/executor.rs");
        let a = lint_source(path, body);
        let b = lint_source(path, &moved);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_ne!(a[0].line, b[0].line);
        assert_eq!(a[0].fingerprint, b[0].fingerprint, "line moves must not re-key");
    }

    #[test]
    fn repeated_identical_sites_get_distinct_fingerprints() {
        let src = "fn run() {\n    let a = x.unwrap();\n    let b = y.unwrap();\n    let c = x.unwrap();\n}\n";
        let f = lint_source(Path::new("crates/campaign/src/executor.rs"), src);
        assert_eq!(f.len(), 3);
        let mut fps: Vec<&str> = f.iter().map(|f| f.fingerprint.as_str()).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), 3, "all three sites must be distinct");
    }

    #[test]
    fn apply_baseline_partitions_and_ratchets() {
        let src = "fn run() {\n    let a = x.unwrap();\n    let b = y.expect(\"y\");\n}\n";
        let f = lint_source(Path::new("crates/campaign/src/executor.rs"), src);
        assert_eq!(f.len(), 2);
        // Baseline the first finding plus one entry that never fires.
        let mut entries = to_baseline_entries(&f[..1]);
        entries.push(baseline::BaselineEntry {
            fingerprint: "dead000000000000".to_string(),
            rule: "D7".to_string(),
            file: "gone.rs".to_string(),
            message: String::new(),
        });
        let outcome = apply_baseline(&f, &entries);
        assert_eq!(outcome.baselined.len(), 1);
        assert_eq!(outcome.fresh.len(), 1);
        assert_eq!(outcome.stale.len(), 1);
        assert_eq!(outcome.stale[0].file, "gone.rs");
    }

    #[test]
    fn suppressed_finding_makes_its_baseline_entry_stale() {
        let path = Path::new("crates/campaign/src/executor.rs");
        let before = lint_source(path, "fn run() {\n    let a = x.unwrap();\n}\n");
        let entries = to_baseline_entries(&before);
        assert_eq!(entries.len(), 1);
        let after = lint_source(
            path,
            "fn run() {\n    let a = x.unwrap(); // lint:allow(D7): infallible, seeded above\n}\n",
        );
        let outcome = apply_baseline(&after, &entries);
        assert!(outcome.fresh.is_empty());
        assert_eq!(outcome.stale.len(), 1, "paying debt must force entry removal");
    }

    #[test]
    fn report_counts_statuses() {
        let src = "fn run() {\n    let a = x.unwrap();\n    let b = y.unwrap(); // lint:allow(D7): checked\n}\n";
        let f = lint_source(Path::new("crates/campaign/src/executor.rs"), src);
        let outcome = apply_baseline(&f, &[]);
        let report = render_report(&f, 1, 7, Some(&outcome));
        assert!(report.contains("\"files_scanned\": 1"));
        assert!(report.contains("\"wall_ms\": 7"));
        assert!(report.contains("\"status\": \"new\""));
        assert!(report.contains("\"status\": \"suppressed\""));
        assert!(baseline::parse_json(&report).is_ok(), "report must be valid JSON");
    }
}
