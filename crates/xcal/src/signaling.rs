//! Control-plane signaling messages as captured by XCAL.
//!
//! The paper extracts handover and technology information from XCAL's
//! signaling logs (§3, addressing challenge C3). We record the events the
//! analysis needs: handover commands/completions and serving-cell changes.

use serde::{Deserialize, Serialize};

use wheels_radio::band::Technology;
use wheels_ran::cell::CellId;
use wheels_ran::handover::{HandoverEvent, HandoverKind};

/// A signaling-log entry.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum SignalingMessage {
    /// RRC reconfiguration commanding a handover.
    HandoverCommand {
        /// Plan time, seconds.
        time_s: f64,
        /// Source cell/technology.
        from_cell: CellId,
        /// Source technology.
        from_tech: Technology,
        /// Target cell.
        to_cell: CellId,
        /// Target technology.
        to_tech: Technology,
        /// Handover kind.
        kind: HandoverKind,
    },
    /// Handover completion (user plane restored).
    HandoverComplete {
        /// Plan time, seconds.
        time_s: f64,
        /// Cell now serving.
        cell: CellId,
        /// Interruption the user plane saw, ms.
        interruption_ms: f64,
    },
    /// Serving cell / technology announcement (periodic or on change).
    ServingCell {
        /// Plan time, seconds.
        time_s: f64,
        /// Serving cell.
        cell: CellId,
        /// Serving technology.
        tech: Technology,
    },
}

impl SignalingMessage {
    /// Timestamp of the message, plan seconds.
    pub fn time_s(&self) -> f64 {
        match self {
            SignalingMessage::HandoverCommand { time_s, .. }
            | SignalingMessage::HandoverComplete { time_s, .. }
            | SignalingMessage::ServingCell { time_s, .. } => *time_s,
        }
    }

    /// The command/complete pair for one executed handover.
    pub fn pair_for(ev: &HandoverEvent) -> [SignalingMessage; 2] {
        [
            SignalingMessage::HandoverCommand {
                time_s: ev.time_s,
                from_cell: ev.from.0,
                from_tech: ev.from.1,
                to_cell: ev.to.0,
                to_tech: ev.to.1,
                kind: ev.kind,
            },
            SignalingMessage::HandoverComplete {
                time_s: ev.time_s + ev.duration_ms / 1_000.0,
                cell: ev.to.0,
                interruption_ms: ev.duration_ms,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> HandoverEvent {
        HandoverEvent {
            time_s: 10.0,
            from: (CellId(1), Technology::LteA),
            to: (CellId(2), Technology::Nr5gMid),
            duration_ms: 60.0,
            kind: HandoverKind::Up4gTo5g,
        }
    }

    #[test]
    fn pair_ordering() {
        let [cmd, done] = SignalingMessage::pair_for(&event());
        assert!(cmd.time_s() < done.time_s());
        assert!((done.time_s() - 10.06).abs() < 1e-9);
    }

    #[test]
    fn roundtrips_json() {
        let [cmd, _] = SignalingMessage::pair_for(&event());
        let j = serde_json::to_string(&cmd).unwrap();
        let back: SignalingMessage = serde_json::from_str(&j).unwrap();
        assert_eq!(back.time_s(), 10.0);
    }
}
