//! Dataset export.
//!
//! The paper publishes its dataset and scripts; we export the consolidated
//! database as JSON (full fidelity) and a compact CSV of throughput
//! samples for spreadsheet-style analysis.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::ser::JsonWriter;
use serde::Serialize;

use crate::database::{ConsolidatedDb, TestRecord};

/// Serialize the full database to pretty JSON.
pub fn to_json(db: &ConsolidatedDb) -> serde_json::Result<String> {
    serde_json::to_string_pretty(db)
}

/// Serialize the full database to pretty JSON as an ordered list of
/// fragments whose concatenation is byte-identical to [`to_json`].
///
/// `db.records` — by far the bulk of the document — is sharded into
/// `jobs` contiguous chunks serialized on `std::thread::scope` workers
/// (the ordered-slot pattern: workers claim chunk indices from an
/// atomic counter and park results in per-chunk slots, so the output
/// order is canonical regardless of scheduling). Callers stream the
/// fragments straight to a writer without concatenating them into a
/// second whole-file buffer.
pub fn to_json_parts(db: &ConsolidatedDb, jobs: usize) -> Vec<String> {
    if db.records.is_empty() {
        // An empty `records` array collapses to `[]` rather than the
        // multi-line envelope below; the plain streamed form is cheap here.
        // lint:allow(D7): streaming into a String only fails on fmt::Error, which String's Write never returns
        return vec![to_json(db).expect("database serializes")];
    }
    let n = db.records.len();
    let chunks = jobs.max(1).min(n);
    let mut parts = Vec::with_capacity(chunks + 2);
    parts.push(String::from("{\n  \"records\": ["));
    if chunks == 1 {
        parts.push(records_fragment(&db.records, 0));
    } else {
        let slots: Vec<Mutex<Option<String>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..chunks {
                scope.spawn(|| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(c) else { break };
                    let lo = c * n / chunks;
                    let hi = (c + 1) * n / chunks;
                    // In range by construction: `c < chunks` implies `hi <= n`.
                    let Some(chunk) = db.records.get(lo..hi) else { break };
                    let frag = records_fragment(chunk, lo);
                    // lint:allow(D7): a poisoned slot means a sibling worker already panicked; scope re-raises it
                    *slot.lock().expect("export slot poisoned") = Some(frag);
                });
            }
        });
        for slot in slots {
            // lint:allow(D7): poisoning or a missing fragment means a worker panicked, which scope already re-raised
            let frag = slot.into_inner().expect("export slot poisoned");
            // lint:allow(D7): the worker loop fills every slot before the scope joins
            parts.push(frag.expect("every chunk serialized"));
        }
    }
    let mut tail = String::from("\n  ],\n  \"passive\": ");
    let mut w = JsonWriter::append_to(tail, Some(2), 1);
    db.passive.stream(&mut w);
    tail = w.finish();
    tail.push_str("\n}");
    parts.push(tail);
    parts
}

/// Pretty-print `records[lo..hi]` as the interior of the top-level
/// `"records"` array: each element at depth 2, preceded by `,` unless it
/// is the global first record.
fn records_fragment(records: &[TestRecord], global_start: usize) -> String {
    // lint:allow(D8): one output buffer per export flush, not per tick; JsonWriter reuses it across records
    let mut buf = String::new();
    for (k, r) in records.iter().enumerate() {
        if global_start + k > 0 {
            buf.push(',');
        }
        buf.push_str("\n    ");
        let mut w = JsonWriter::append_to(buf, Some(2), 2);
        r.stream(&mut w);
        buf = w.finish();
    }
    buf
}

/// Deserialize a database from JSON.
pub fn from_json(s: &str) -> serde_json::Result<ConsolidatedDb> {
    serde_json::from_str(s)
}

/// CSV header for the throughput-sample export.
pub const CSV_HEADER: &str =
    "test_id,op,kind,static,time_s,tput_mbps,tech,rsrp_dbm,mcs,bler,ca,speed_mph,timezone,region,handovers";

/// Write all throughput samples as CSV rows.
///
/// Rows are formatted into one reused `String` and pushed through a
/// `BufWriter`, so per-sample cost is formatting only — no per-row
/// allocation and no per-row syscall even when `w` is unbuffered.
pub fn write_tput_csv<W: Write>(db: &ConsolidatedDb, w: W) -> std::io::Result<()> {
    let mut w = std::io::BufWriter::new(w);
    writeln!(w, "{CSV_HEADER}")?;
    let mut row = String::with_capacity(160);
    for r in &db.records {
        write_record_rows(r, &mut w, &mut row)?;
    }
    w.flush()
}

fn write_record_rows<W: Write>(
    r: &TestRecord,
    w: &mut std::io::BufWriter<W>,
    row: &mut String,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    for k in &r.kpi {
        let Some(tput) = k.tput_mbps else { continue };
        row.clear();
        writeln!(
            row,
            "{},{},{},{},{:.3},{:.4},{},{:.1},{},{:.3},{},{:.1},{},{},{}",
            r.id,
            r.op.code(),
            r.kind.label(),
            u8::from(r.is_static),
            k.time_s,
            tput,
            k.tech.label(),
            k.rsrp_dbm,
            k.mcs,
            k.bler,
            k.ca,
            k.speed_mph(),
            k.timezone.label(),
            k.region.label(),
            k.handovers_in_window,
        )
        // lint:allow(D7): write! into a String only fails on fmt::Error, which String's Write never returns
        .expect("formatting into a String is infallible");
        w.write_all(row.as_bytes())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TestKind;
    use crate::kpi::KpiSample;
    use wheels_geo::region::RegionKind;
    use wheels_geo::timezone::Timezone;
    use wheels_netsim::server::ServerKind;
    use wheels_radio::band::Technology;
    use wheels_ran::cell::CellId;
    use wheels_ran::operator::Operator;

    fn tiny_db() -> ConsolidatedDb {
        ConsolidatedDb {
            records: vec![TestRecord {
                id: 7,
                op: Operator::TMobile,
                kind: TestKind::ThroughputDl,
                start_s: 0.0,
                duration_s: 30.0,
                server_kind: ServerKind::Cloud,
                server_name: "EC2 Ohio".into(),
                is_static: false,
                start_odometer_m: 0.0,
                end_odometer_m: 100.0,
                timezone: Timezone::Central,
                frac_hs5g: 0.5,
                kpi: vec![KpiSample {
                    time_s: 0.5,
                    tput_mbps: Some(42.5),
                    tech: Technology::Nr5gMid,
                    cell: CellId(9),
                    rsrp_dbm: -90.0,
                    sinr_db: 15.0,
                    mcs: 20,
                    bler: 0.08,
                    ca: 2,
                    handovers_in_window: 0,
                    speed_mps: 30.0,
                    odometer_m: 10.0,
                    region: RegionKind::Highway,
                    timezone: Timezone::Central,
                    in_handover: false,
                }],
                rtt_ms: vec![],
                handovers: vec![],
                app: None,
            }],
            passive: vec![],
        }
    }

    #[test]
    fn json_roundtrip() {
        let db = tiny_db();
        let j = to_json(&db).unwrap();
        let back = from_json(&j).unwrap();
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].kpi[0].mcs, 20);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let db = tiny_db();
        let mut buf = Vec::new();
        write_tput_csv(&db, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 2);
        assert!(lines[1].starts_with("7,T,DL,0,"));
        assert!(lines[1].contains("5G-mid"));
    }

    #[test]
    fn parts_concat_matches_to_json_at_any_job_count() {
        // Build a db with several records so multi-chunk partitions are
        // exercised (including jobs > records, which clamps).
        let mut db = tiny_db();
        let proto = db.records[0].clone();
        for id in 8..12 {
            let mut r = proto.clone();
            r.id = id;
            r.kpi[0].time_s = id as f64 * 0.25;
            db.records.push(r);
        }
        db.passive.push((Operator::Verizon, Default::default()));
        let whole = to_json(&db).unwrap();
        for jobs in [1, 2, 3, 7] {
            assert_eq!(to_json_parts(&db, jobs).concat(), whole, "jobs={jobs}");
        }
    }

    #[test]
    fn parts_handle_empty_records() {
        let mut db = tiny_db();
        db.records.clear();
        assert_eq!(to_json_parts(&db, 4).concat(), to_json(&db).unwrap());
    }

    #[test]
    fn csv_skips_samples_without_throughput() {
        let mut db = tiny_db();
        db.records[0].kpi[0].tput_mbps = None;
        let mut buf = Vec::new();
        write_tput_csv(&db, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);
    }
}
