//! A deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotonically
//! increasing sequence number breaks ties), which keeps multi-component
//! simulations reproducible regardless of float equality quirks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by time, FIFO within equal times.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time_s: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. total_cmp
        // keeps the heap order total even if a NaN time ever slips in
        // (the old `.expect` panicked the worker instead).
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Create an empty queue with room for `n` events before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Remove all pending events, keeping the backing allocation.
    ///
    /// Re-arms the tie-break sequence from zero, so a cleared queue is
    /// indistinguishable from a fresh one — long-lived simulations reuse
    /// one queue across work units instead of rebuilding the heap (and
    /// its allocation) per unit.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `payload` at absolute time `time_s`.
    ///
    /// # Panics
    /// Panics if `time_s` is not finite.
    pub fn schedule(&mut self, time_s: f64, payload: T) {
        assert!(time_s.is_finite(), "event time must be finite");
        self.heap.push(Entry {
            time_s,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pop the earliest event, if any, returning `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time_s, e.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time_s)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn clear_keeps_allocation_and_resets_ties() {
        let mut q = EventQueue::with_capacity(64);
        let cap = q.capacity();
        assert!(cap >= 64);
        for i in 0..50 {
            q.schedule(1.0, i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap, "clear must keep the backing buffer");
        // A cleared queue behaves exactly like a fresh one, including the
        // FIFO tie-break restarting from scratch.
        q.schedule(2.0, 100);
        q.schedule(2.0, 101);
        assert_eq!(q.pop(), Some((2.0, 100)));
        assert_eq!(q.pop(), Some((2.0, 101)));
    }
}
