//! CUBIC congestion control (RFC 8312), the default the paper's nuttcp
//! throughput tests used (§5).

use crate::tcp::{CongestionControl, INIT_CWND, MSS};

/// CUBIC scaling constant (RFC 8312), in segments/s³.
const C: f64 = 0.4;
/// Multiplicative decrease factor.
const BETA: f64 = 0.7;

/// CUBIC state. Window accounting is in bytes externally, segments
/// internally.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd_seg: f64,
    ssthresh_seg: f64,
    w_max_seg: f64,
    k_s: f64,
    epoch_start_s: Option<f64>,
    /// TCP-friendliness estimate (RFC 8312 §4.2).
    w_est_seg: f64,
}

impl Cubic {
    /// A fresh flow in slow start.
    pub fn new() -> Self {
        Cubic {
            cwnd_seg: INIT_CWND / MSS,
            ssthresh_seg: f64::INFINITY,
            w_max_seg: 0.0,
            k_s: 0.0,
            epoch_start_s: None,
            w_est_seg: 0.0,
        }
    }

    fn w_cubic(&self, t_s: f64) -> f64 {
        C * (t_s - self.k_s).powi(3) + self.w_max_seg
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn cwnd_bytes(&self) -> f64 {
        self.cwnd_seg * MSS
    }

    fn on_ack(&mut self, now_s: f64, acked_bytes: f64, rtt_s: f64) {
        let acked_seg = acked_bytes / MSS;
        if self.cwnd_seg < self.ssthresh_seg {
            // Slow start: one segment per acked segment.
            self.cwnd_seg += acked_seg;
            return;
        }
        let epoch = *self.epoch_start_s.get_or_insert_with(|| {
            // New congestion-avoidance epoch.
            if self.w_max_seg < self.cwnd_seg {
                self.w_max_seg = self.cwnd_seg;
            }
            self.k_s = ((self.w_max_seg * (1.0 - BETA)) / C).cbrt();
            self.w_est_seg = self.cwnd_seg;
            now_s
        });
        let t = now_s - epoch;
        // TCP-friendly region estimate.
        self.w_est_seg += 3.0 * (1.0 - BETA) / (1.0 + BETA) * (acked_seg / self.cwnd_seg);
        let target = self.w_cubic(t + rtt_s).max(self.w_est_seg);
        if target > self.cwnd_seg {
            // Grow towards target, at most one segment per acked segment.
            let grow = ((target - self.cwnd_seg) / self.cwnd_seg * acked_seg).min(acked_seg);
            self.cwnd_seg += grow.max(0.0);
        }
    }

    fn on_loss(&mut self, _now_s: f64) {
        self.w_max_seg = self.cwnd_seg;
        self.cwnd_seg = (self.cwnd_seg * BETA).max(2.0);
        self.ssthresh_seg = self.cwnd_seg;
        self.epoch_start_s = None;
    }

    fn on_timeout(&mut self, _now_s: f64) {
        self.w_max_seg = self.cwnd_seg;
        self.ssthresh_seg = (self.cwnd_seg * BETA).max(2.0);
        self.cwnd_seg = INIT_CWND / MSS;
        self.epoch_start_s = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_init_cwnd() {
        assert!((Cubic::new().cwnd_bytes() - INIT_CWND).abs() < 1e-9);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Cubic::new();
        let w0 = c.cwnd_bytes();
        // Ack a full window: slow start should double it.
        c.on_ack(0.1, w0, 0.05);
        assert!((c.cwnd_bytes() - 2.0 * w0).abs() < 1.0);
    }

    #[test]
    fn loss_multiplies_by_beta_and_exits_slow_start() {
        let mut c = Cubic::new();
        for i in 0..10 {
            c.on_ack(i as f64 * 0.05, c.cwnd_bytes(), 0.05);
        }
        let before = c.cwnd_bytes();
        c.on_loss(1.0);
        assert!((c.cwnd_bytes() - before * BETA).abs() < 1.0);
        // Next acks are congestion avoidance, not doubling.
        let w = c.cwnd_bytes();
        c.on_ack(1.05, w, 0.05);
        assert!(c.cwnd_bytes() < 1.9 * w);
    }

    #[test]
    fn concave_then_convex_growth() {
        // After a loss, growth rate should slow as cwnd approaches w_max
        // (concave region), then pick up beyond it (convex region).
        let mut c = Cubic::new();
        // Modest slow start so K stays small and both regions fit in 30 s.
        for i in 0..5 {
            c.on_ack(i as f64 * 0.05, c.cwnd_bytes(), 0.05);
        }
        c.on_loss(1.0);
        let w_max = c.w_max_seg;
        let mut t = 1.0;
        let mut prev = c.cwnd_seg;
        let mut rate_near_wmax = 0.0;
        let mut rate_late = 0.0;
        while t < 30.0 {
            c.on_ack(t, c.cwnd_bytes(), 0.05);
            let rate = c.cwnd_seg - prev;
            if (c.cwnd_seg - w_max).abs() < w_max * 0.05 {
                rate_near_wmax = rate;
            }
            if c.cwnd_seg > w_max * 1.5 {
                rate_late = rate;
                break;
            }
            prev = c.cwnd_seg;
            t += 0.05;
        }
        assert!(
            rate_late > rate_near_wmax,
            "convex region should outgrow the plateau: {rate_late} vs {rate_near_wmax}"
        );
    }

    #[test]
    fn timeout_resets_to_init() {
        let mut c = Cubic::new();
        for i in 0..10 {
            c.on_ack(i as f64 * 0.05, c.cwnd_bytes(), 0.05);
        }
        c.on_timeout(1.0);
        assert!((c.cwnd_bytes() - INIT_CWND).abs() < 1e-9);
    }

    #[test]
    fn cwnd_never_below_two_segments() {
        let mut c = Cubic::new();
        for _ in 0..50 {
            c.on_loss(0.0);
        }
        assert!(c.cwnd_bytes() >= 2.0 * MSS);
    }
}
