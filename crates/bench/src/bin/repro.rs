//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p wheels-bench --bin repro -- all
//! cargo run --release -p wheels-bench --bin repro -- fig3 table2
//! cargo run --release -p wheels-bench --bin repro -- --scale quarter all
//! cargo run --release -p wheels-bench --bin repro -- --export dataset.json all
//! cargo run --release -p wheels-bench --bin repro -- --jobs 4 --fig-jobs 4 all
//! cargo run --release -p wheels-bench --bin repro -- --fault-profile harsh table1
//! cargo run --release -p wheels-bench --bin repro -- --timings all
//! cargo run --release -p wheels-bench --bin repro -- --scenario rail-corridor all
//! cargo run --release -p wheels-bench --bin repro -- --scenario my_world.json fig2
//! cargo run --release -p wheels-bench --bin repro -- --scenario paper --scenario-dump
//! cargo run --release -p wheels-bench --bin repro -- --list
//! ```
//!
//! `--scenario NAME|FILE.json` runs the campaign in a declarative world
//! from the scenario registry (or a JSON spec file) instead of the
//! hard-wired paper constructors; `--scenario paper` is byte-identical to
//! omitting the flag. `--scenario-dump` prints the active scenario's JSON
//! and exits; `--list` prints every artifact id and registered scenario.
//!
//! `--jobs N` runs the campaign's work units on N worker threads;
//! `--fig-jobs N` fans figure/table rendering out the same way, and
//! `--export-jobs N` shards dataset serialization across N workers. The
//! dataset (and every figure) is byte-identical to the sequential run at
//! any job count.
//!
//! `--population N` seeds a panel-total fleet of N subscribers whose
//! aggregate demand drives the cell load every probe experiences
//! (`--population 0` or omitting the flag is the strict fleetless
//! baseline — byte-identical output). The fleet's ground truth is
//! rendered by the `ext-fleet` artifact.
//!
//! `--timings` prints a phase breakdown (campaign / index build / figures
//! / export) to stderr; `--timings-json FILE` writes the same breakdown
//! as JSON. Both ci.sh benchmark stages (`BENCH_report.json`,
//! `BENCH_campaign.json`) store this one canonical record shape.
//!
//! `--fault-profile none|paper|harsh` injects deterministic apparatus
//! faults (probe crashes, server outages, modem detaches, timeouts); the
//! supervisor retries failed units up to `--max-retries N` times and then
//! degrades instead of aborting — unless `--fail-fast` is given, in which
//! case a lost unit ends the run with a nonzero exit. With `--export
//! FILE`, the per-unit integrity report lands in `FILE.integrity.json`.
//!
//! `--checkpoint-dir DIR` makes the campaign crash-safe: every completed
//! work unit is appended (and fsynced) to `DIR/checkpoint.log` before the
//! run moves on. If the process dies mid-campaign, rerun with `--resume`:
//! valid checkpoints are restored, only missing or corrupt units are
//! recomputed, and the output — export, integrity report, stdout — is
//! byte-identical to an uninterrupted run. `--kill-after K` is the chaos
//! hook behind the CI crash-resume gate: it aborts the run (exit 137,
//! like a SIGKILL) after the K-th durable unit commit.
//!
//! Every file this binary writes (export JSON, integrity report, timings
//! JSON, checkpoints) goes through an atomic temp-file + fsync + rename
//! write — no crash can leave a torn output under a final name.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
// lint:allow(D3): --timings instrumentation; wall-clock phase
// durations are reported to stderr/JSON and never reach sim state
use std::time::{Duration, Instant};

use wheels_analysis::figures as figs;
use wheels_analysis::AnalysisIndex;
use wheels_bench::{
    run_campaign_checkpointed, run_campaign_supervised, run_scenario_checkpointed,
    run_scenario_supervised, FaultOpts, ReproScale, EXPERIMENTS, EXTENSIONS,
};
use wheels_campaign::stats::Table1;
use wheels_campaign::{
    atomic_write, atomic_write_with, write_all_chunked, CampaignError, CheckpointOptions,
    FaultProfile, ProcessKill, ScenarioSpec,
};

/// Write `bytes` to `path` atomically, or exit 1 with the error on
/// stderr — an output file either appears whole or not at all.
fn write_or_die(path: &str, bytes: &[u8]) {
    if let Err(e) = atomic_write(std::path::Path::new(path), bytes) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Stream pre-serialized fragments to `path` atomically (no second
/// whole-file concatenation buffer), or exit 1.
fn write_parts_or_die(path: &str, parts: &[String]) {
    let r = atomic_write_with(std::path::Path::new(path), |w| {
        for p in parts {
            write_all_chunked(w, p.as_bytes())?;
        }
        Ok(())
    });
    if let Err(e) = r {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Resolve `--scenario NAME|FILE.json`: registry names first, then a JSON
/// spec file. The spec is validated either way.
fn load_scenario(arg: &str) -> ScenarioSpec {
    let spec = if let Some(spec) = ScenarioSpec::find(arg) {
        spec
    } else if std::path::Path::new(arg).exists() {
        let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
            eprintln!("cannot read scenario file {arg}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse scenario file {arg}: {e}");
            std::process::exit(2);
        })
    } else {
        eprintln!(
            "unknown scenario {arg:?}: not a registered name ({}) and not a file",
            ScenarioSpec::registry()
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join("|")
        );
        std::process::exit(2);
    };
    if let Err(e) = spec.validate() {
        eprintln!("invalid scenario {arg}: {e}");
        std::process::exit(2);
    }
    spec
}

/// `repro --list`: every artifact id and registered scenario.
fn print_list() {
    println!("artifacts:");
    for id in EXPERIMENTS {
        println!("  {id:<10} {}", artifact_blurb(id));
    }
    println!("  {:<10} full markdown report (all artifacts + maps)", "report");
    for id in EXTENSIONS {
        println!("  {id:<10} {}", artifact_blurb(id));
    }
    println!("scenarios (use with --scenario NAME):");
    for s in ScenarioSpec::registry() {
        println!("  {:<14} {}", s.name, s.description);
    }
}

fn artifact_blurb(id: &str) -> &'static str {
    match id {
        "table1" => "driving dataset statistics",
        "fig1" => "passive vs active coverage views + route maps",
        "fig2" => "technology coverage shares",
        "fig3" => "static vs driving performance CDFs",
        "fig4" => "per-technology performance",
        "fig5" => "throughput by timezone",
        "fig6" => "operator-pair throughput diversity",
        "fig7" => "throughput vs vehicle speed",
        "fig8" => "RTT vs vehicle speed",
        "table2" => "KPI-throughput Pearson correlations",
        "fig9" => "per-test mean/stddev statistics",
        "fig10" => "performance vs time on high-speed 5G",
        "table3" => "Ookla Q3 2022 comparison",
        "fig11" => "handover rates and durations",
        "fig12" => "throughput impact of handovers",
        "table4" => "AR/CAV offload configuration",
        "table5" => "mAP vs E2E latency table",
        "fig13" => "AR offloading results",
        "fig14" => "CAV offloading results",
        "fig15" => "360° video streaming results",
        "fig16" => "cloud gaming results",
        "ext-mptcp" => "MPTCP multi-operator what-if (extension)",
        "ext-fleet" => "probe panel vs subscriber-fleet ground truth (extension)",
        _ => "",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ReproScale::Full;
    let mut seed = 2026u64;
    let mut jobs = 1usize;
    let mut fig_jobs = 1usize;
    let mut export_jobs = 1usize;
    let mut timings = false;
    let mut timings_json: Option<String> = None;
    let mut faults = FaultOpts::default();
    let mut export: Option<String> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut resume = false;
    let mut kill_after: Option<usize> = None;
    let mut population: Option<u64> = None;
    let mut scenario: Option<ScenarioSpec> = None;
    let mut scenario_dump = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while let Some(arg) = args.get(i) {
        match arg.as_str() {
            "--list" => {
                print_list();
                return;
            }
            "--scenario" => {
                i += 1;
                let arg = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--scenario needs a registry name or a JSON file path");
                    std::process::exit(2);
                });
                scenario = Some(load_scenario(&arg));
            }
            "--scenario-dump" => scenario_dump = true,
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("full") => ReproScale::Full,
                    Some("quarter") => ReproScale::Quarter,
                    Some("smoke") => ReproScale::Smoke,
                    other => {
                        eprintln!("unknown scale {other:?} (full|quarter|smoke)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        std::process::exit(2);
                    });
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive worker count");
                        std::process::exit(2);
                    });
            }
            "--fig-jobs" => {
                i += 1;
                fig_jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--fig-jobs needs a positive worker count");
                        std::process::exit(2);
                    });
            }
            "--export-jobs" => {
                i += 1;
                export_jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--export-jobs needs a positive worker count");
                        std::process::exit(2);
                    });
            }
            "--timings" => timings = true,
            "--timings-json" => {
                i += 1;
                timings_json = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--timings-json needs a path");
                    std::process::exit(2);
                }));
            }
            "--fault-profile" => {
                i += 1;
                faults.profile = args
                    .get(i)
                    .and_then(|s| FaultProfile::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown fault profile (none|paper|harsh)");
                        std::process::exit(2);
                    });
            }
            "--max-retries" => {
                i += 1;
                faults.max_retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-retries needs a non-negative count");
                        std::process::exit(2);
                    });
            }
            "--fail-fast" => faults.fail_fast = true,
            "--population" => {
                i += 1;
                population = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(
                    || {
                        eprintln!("--population needs a subscriber count");
                        std::process::exit(2);
                    },
                ));
            }
            "--checkpoint-dir" => {
                i += 1;
                checkpoint_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--checkpoint-dir needs a directory path");
                    std::process::exit(2);
                }));
            }
            "--resume" => resume = true,
            "--kill-after" => {
                i += 1;
                kill_after = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(
                    || {
                        eprintln!("--kill-after needs a unit count");
                        std::process::exit(2);
                    },
                ));
            }
            "--export" => {
                i += 1;
                export = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--export needs a path");
                    std::process::exit(2);
                }));
            }
            "all" => wanted.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if scenario_dump {
        let spec = scenario.clone().unwrap_or_else(ScenarioSpec::paper);
        println!(
            "{}",
            // lint:allow(D7): ScenarioSpec derives Serialize with no fallible fields; to_string_pretty cannot fail
            serde_json::to_string_pretty(&spec).expect("scenario serializes")
        );
        return;
    }
    if wanted.is_empty() {
        eprintln!("usage: repro [--scale full|quarter|smoke] [--seed N] [--jobs N] \
                   [--population N] \
                   [--fig-jobs N] [--export-jobs N] [--timings] [--timings-json FILE] \
                   [--fault-profile none|paper|harsh] [--max-retries N] [--fail-fast] \
                   [--checkpoint-dir DIR] [--resume] [--kill-after K] \
                   [--scenario NAME|FILE.json] [--scenario-dump] [--list] \
                   [--export FILE] <id...|all>");
        eprintln!("ids: {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    wanted.dedup();
    if (resume || kill_after.is_some()) && checkpoint_dir.is_none() {
        eprintln!("--resume and --kill-after need --checkpoint-dir DIR");
        std::process::exit(2);
    }

    eprintln!(
        "running campaign (scale {scale:?}, seed {seed}, jobs {jobs}, faults {}{})...",
        faults.profile.label(),
        scenario
            .as_ref()
            .map(|s| format!(", scenario {}", s.name))
            .unwrap_or_default()
    );
    let t0 = Instant::now(); // lint:allow(D3): phase timing, reported only
    let run = match (&checkpoint_dir, &scenario) {
        (Some(dir), spec) => {
            let mut opts = if resume {
                CheckpointOptions::resume(dir)
            } else {
                CheckpointOptions::fresh(dir)
            };
            if let Some(k) = kill_after {
                opts = opts.with_kill(ProcessKill::after_units(k));
            }
            let run = match spec {
                Some(spec) => {
                    run_scenario_checkpointed(spec, scale, seed, jobs, faults, population, &opts)
                }
                None => run_campaign_checkpointed(scale, seed, jobs, faults, population, &opts),
            };
            match run {
                Err(CampaignError::Killed { committed }) => {
                    // The chaos hook "killed the process": exit the way a
                    // SIGKILLed process would, with the completed units
                    // durable in the checkpoint log and nothing exported.
                    eprintln!(
                        "killed after {committed} durable unit commits \
                         (checkpoints in {dir}; rerun with --resume)"
                    );
                    std::process::exit(137);
                }
                other => other.map_err(|e| e.to_string()),
            }
        }
        (None, Some(spec)) => run_scenario_supervised(spec, scale, seed, jobs, faults, population)
            .map_err(|e| e.to_string()),
        (None, None) => run_campaign_supervised(scale, seed, jobs, faults, population)
            .map_err(|e| e.to_string()),
    };
    let (campaign, outcome) = match run {
        Ok(r) => r,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(1);
        }
    };
    if let Some(r) = &outcome.resume {
        eprintln!(
            "resume: {} units restored from checkpoints, {} recomputed \
             ({} corrupt, {} foreign records rejected)",
            r.restored_units, r.recomputed_units, r.corrupt_records, r.foreign_records
        );
        for note in &r.notes {
            eprintln!("resume note: {note}");
        }
    }
    let fleet = outcome.fleet;
    let db = outcome.db;
    let integrity = outcome.integrity;
    let campaign_elapsed = t0.elapsed();
    let kpi_samples = db.records.iter().map(|r| r.kpi.len()).sum::<usize>();
    let fleet_population = fleet.as_ref().map_or(0, |f| f.population);
    let subscriber_hours: f64 = fleet
        .as_ref()
        .map_or(0.0, |f| f.per_op.iter().map(|(_, s)| s.sub_hours()).sum());
    eprintln!(
        "campaign done in {:.1?}: {} test records, {} KPI samples",
        campaign_elapsed,
        db.records.len(),
        kpi_samples
    );
    eprintln!("{}", integrity.summary());

    let t1 = Instant::now(); // lint:allow(D3): phase timing, reported only
    let ix = AnalysisIndex::build_for(&db, campaign.ops().to_vec());
    let index_elapsed = t1.elapsed();

    let t2 = Instant::now(); // lint:allow(D3): phase timing, reported only
    let mut export_elapsed = Duration::ZERO;
    if let Some(path) = export {
        let parts = wheels_xcal::export::to_json_parts(&db, export_jobs);
        write_parts_or_die(&path, &parts);
        let report =
            // lint:allow(D7): IntegrityReport's hand-written Serialize writes plain maps and numbers; it cannot fail
            serde_json::to_string_pretty(&integrity).expect("integrity report serializes");
        let report_path = format!("{path}.integrity.json");
        write_or_die(&report_path, report.as_bytes());
        eprintln!("dataset exported to {path}, integrity report to {report_path}");
        export_elapsed = t2.elapsed();
    }

    // Render the requested artifacts on `fig_jobs` workers with the same
    // atomic-counter queue as the campaign executor, then print in request
    // order — stdout bytes are identical at any --fig-jobs value.
    let t3 = Instant::now(); // lint:allow(D3): phase timing, reported only
    let slots: Vec<Mutex<Option<String>>> = wanted.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = fig_jobs.min(wanted.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let (Some(id), Some(slot)) = (wanted.get(i), slots.get(i)) else {
                    break;
                };
                let text = render_one(id, &campaign, &ix, fleet.as_ref(), fig_jobs);
                // lint:allow(D7): a poisoned slot means a sibling render worker already panicked; propagate
                *slot.lock().expect("render slot poisoned") = Some(text);
            });
        }
    });
    let figures_elapsed = t3.elapsed();

    let out = std::io::stdout();
    let mut out = out.lock();
    for slot in slots {
        let text = slot
            .into_inner()
            // lint:allow(D7): a poisoned slot means a render worker panicked; propagate
            .expect("render slot poisoned")
            // lint:allow(D7): the worker queue covers every index exactly once before the scope joins
            .expect("every artifact rendered");
        // lint:allow(D7): a closed stdout leaves nowhere to report the artifact; abort is the only option
        writeln!(out, "{text}").expect("stdout");
    }
    drop(out);

    if timings {
        eprintln!(
            "timings: campaign {:.3}s, index build {:.3}s, figures {:.3}s ({} ids, {} fig jobs), export {:.3}s",
            campaign_elapsed.as_secs_f64(),
            index_elapsed.as_secs_f64(),
            figures_elapsed.as_secs_f64(),
            wanted.len(),
            fig_jobs,
            export_elapsed.as_secs_f64(),
        );
        if fleet_population > 0 {
            eprintln!(
                "fleet: {fleet_population} subscribers, {subscriber_hours:.0} subscriber-hours \
                 ({:.0}/s)",
                subscriber_hours / campaign_elapsed.as_secs_f64()
            );
        }
    }
    if let Some(path) = timings_json {
        let total = campaign_elapsed + index_elapsed + figures_elapsed + export_elapsed;
        let json = format!(
            "{{\n  \"scale\": \"{scale:?}\",\n  \"seed\": {seed},\n  \"jobs\": {jobs},\n  \"fig_jobs\": {fig_jobs},\n  \"export_jobs\": {export_jobs},\n  \"population\": {fleet_population},\n  \"artifacts\": {},\n  \"campaign_s\": {:.6},\n  \"kpi_samples\": {kpi_samples},\n  \"samples_per_s\": {:.1},\n  \"subscriber_hours_per_s\": {:.1},\n  \"index_build_s\": {:.6},\n  \"figures_s\": {:.6},\n  \"export_s\": {:.6},\n  \"total_s\": {:.6}\n}}\n",
            wanted.len(),
            campaign_elapsed.as_secs_f64(),
            kpi_samples as f64 / campaign_elapsed.as_secs_f64(),
            subscriber_hours / campaign_elapsed.as_secs_f64(),
            index_elapsed.as_secs_f64(),
            figures_elapsed.as_secs_f64(),
            export_elapsed.as_secs_f64(),
            total.as_secs_f64(),
        );
        write_or_die(&path, json.as_bytes());
        eprintln!("timings written to {path}");
    }
}

fn render_one(
    id: &str,
    campaign: &wheels_campaign::Campaign,
    ix: &AnalysisIndex<'_>,
    fleet: Option<&wheels_campaign::FleetSummary>,
    fig_jobs: usize,
) -> String {
    let db = ix.db();
    match id {
        "table1" => format!(
            "Table 1 — driving dataset statistics\n{}",
            Table1::compute_for(db, campaign.plan().route(), campaign.ops()).render()
        ),
        "fig1" => format!(
            "{}\n{}",
            figs::fig01_coverage_views::compute(ix).render(),
            wheels_analysis::map::render_fig1_maps_for(
                db,
                campaign.plan().route().total_m(),
                96,
                campaign.ops()
            )
        ),
        "fig2" => figs::fig02_coverage::compute(ix).render(),
        "fig3" => figs::fig03_static_driving::compute(ix).render(),
        "fig4" => figs::fig04_tech_perf::compute(ix).render(),
        "fig5" => figs::fig05_timezones::compute(ix).render(),
        "fig6" => figs::fig06_operator_diversity::compute(ix).render(),
        "fig7" => figs::fig07_speed_tput::compute(ix).render(),
        "fig8" => figs::fig08_speed_rtt::compute(ix).render(),
        "table2" => figs::table2_correlations::compute(ix).render(),
        "fig9" => figs::fig09_test_stats::compute(ix).render(),
        "fig10" => figs::fig10_hs5g::compute(ix).render(),
        "table3" => figs::table3_ookla::compute(ix).render(),
        "fig11" => figs::fig11_handovers::compute(ix).render(),
        "fig12" => figs::fig12_ho_impact::compute(ix).render(),
        "table4" => format!(
            "Table 4 — AR/CAV configuration\n{}",
            wheels_apps::config::render_table4()
        ),
        "table5" => render_table5(),
        "fig13" => figs::fig13_ar::compute(ix).render(),
        "fig14" => figs::fig14_cav::compute(ix).render(),
        "fig15" => figs::fig15_video::compute(ix).render(),
        "fig16" => figs::fig16_gaming::compute(ix).render(),
        "ext-mptcp" => figs::ext_multipath::compute(ix).render(),
        "ext-fleet" => figs::ext_fleet::compute(ix, fleet).render(),
        "report" => {
            wheels_analysis::report::generate_jobs(ix, campaign.plan().route(), fig_jobs)
        }
        other => format!("unknown experiment id: {other}"),
    }
}

fn render_table5() -> String {
    use wheels_apps::map_table::{MAP_NO_COMPRESSION, MAP_WITH_COMPRESSION};
    let mut s = String::from(
        "Table 5 — mAP vs E2E latency (frame times)\nbin   mAP w/o comp   mAP w/ comp\n",
    );
    let rows = MAP_NO_COMPRESSION.iter().zip(MAP_WITH_COMPRESSION.iter());
    for (i, (without, with)) in rows.enumerate() {
        s.push_str(&format!(
            "{:>2}-{:<2}   {:>8.2}      {:>8.2}\n",
            i,
            i + 1,
            without,
            with
        ));
    }
    s
}
