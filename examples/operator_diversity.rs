//! Operator diversity and the multi-connectivity argument (§5.4).
//!
//! Runs concurrent throughput tests across the three carriers and asks:
//! how often would a multi-operator (MPTCP-style) phone have beaten each
//! single carrier?
//!
//! ```text
//! cargo run --release --example operator_diversity
//! ```

use std::collections::BTreeMap;

use wheels::analysis::figures::fig06_operator_diversity::{self, PAIRS};
use wheels::analysis::AnalysisIndex;
use wheels::campaign::{Campaign, CampaignConfig};
use wheels::ran::{Direction, Operator};
use wheels::xcal::database::TestKind;

fn main() {
    println!("== operator diversity (Fig. 6) ==\n");
    let mut cfg = CampaignConfig::quick_network_only(21);
    cfg.scale = 0.15;
    cfg.run_static = false;
    let db = Campaign::new(cfg).run();

    let f = fig06_operator_diversity::compute(&AnalysisIndex::build(&db));
    for pair in PAIRS {
        for dir in Direction::BOTH {
            let d = f.get(pair, dir);
            if d.all.is_empty() {
                continue;
            }
            println!(
                "{}-{} {}: median diff {:+.1} Mbps, {} wins {:.0}% of concurrent samples",
                pair.0.code(),
                pair.1.code(),
                dir.label(),
                d.all.median(),
                pair.0.code(),
                (1.0 - d.all.frac_below(0.0)) * 100.0
            );
            for (bin, frac) in d.bin_fractions() {
                if frac > 0.001 {
                    println!("    {:<6} {:>5.1}% of samples", bin.label(), frac * 100.0);
                }
            }
        }
    }

    // The multi-connectivity thought experiment: best-of-three throughput.
    // BTreeMap, not HashMap: gain_vs sums floats in iteration order.
    let mut by_time: BTreeMap<i64, Vec<(Operator, f64)>> = BTreeMap::new();
    for r in db
        .records
        .iter()
        .filter(|r| !r.is_static && r.kind == TestKind::ThroughputDl)
    {
        if let Some(m) = r.mean_tput_mbps() {
            by_time.entry(r.start_s.round() as i64).or_default().push((r.op, m));
        }
    }
    let mut gain_vs: BTreeMap<Operator, (f64, usize)> = BTreeMap::new();
    for tests in by_time.values().filter(|v| v.len() == 3) {
        let best = tests.iter().map(|(_, m)| *m).fold(0.0, f64::max);
        for (op, m) in tests {
            let e = gain_vs.entry(*op).or_insert((0.0, 0));
            e.0 += best / m.max(0.1);
            e.1 += 1;
        }
    }
    println!("\nBest-of-three (multi-connectivity upper bound) vs each single carrier:");
    for op in Operator::ALL {
        if let Some((sum, n)) = gain_vs.get(&op) {
            println!(
                "  vs {:<9} mean gain {:>4.1}x over {} concurrent DL tests",
                op.label(),
                sum / *n as f64,
                n
            );
        }
    }
    println!("\n§5.4's recommendation: aggregate links across operators (MPTCP).");
}
