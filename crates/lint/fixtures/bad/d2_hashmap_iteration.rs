//! D2 must fire: hash-ordered std collections in non-test code, both as
//! imports and as fully-qualified paths.

use std::collections::HashMap;

fn shares(samples: &[(u8, f64)]) -> Vec<(u8, f64)> {
    let mut acc: HashMap<u8, f64> = HashMap::new();
    for &(k, v) in samples {
        *acc.entry(k).or_insert(0.0) += v;
    }
    // Iteration order here is the hasher's, not the data's.
    acc.into_iter().collect()
}

fn dedup(xs: &[u64]) -> usize {
    let set: std::collections::HashSet<u64> = xs.iter().copied().collect();
    set.len()
}
