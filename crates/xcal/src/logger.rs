//! The XCAL-style per-test logger.
//!
//! One [`XcalLogger`] is attached to a phone for the duration of one test.
//! It accumulates 500 ms KPI samples and signaling messages, and finishes
//! into an [`XcalLog`] whose *filename* carries a local-time stamp while
//! its *contents* are stamped in EDT — the exact mismatch §B of the paper
//! describes (and which [`crate::sync`] must untangle).

use wheels_geo::timezone::Timezone;
use wheels_ran::handover::HandoverEvent;
use wheels_ran::operator::Operator;

use crate::kpi::KpiSample;
use crate::signaling::SignalingMessage;
use crate::timestamp::Timestamp;

/// A finished XCAL log "file".
#[derive(Debug, Clone)]
pub struct XcalLog {
    /// Simulated `.drm` filename: stamped with the *local* time at the
    /// test's start (the misleading part).
    pub file_name: String,
    /// Start time as it appears *inside* the file: an EDT string.
    pub content_start_edt: String,
    /// The operator the probe was attached to.
    pub op: Operator,
    /// Start of the test, plan seconds (ground truth, for verification).
    pub start_plan_s: f64,
    /// KPI samples.
    pub samples: Vec<KpiSample>,
    /// Signaling messages.
    pub messages: Vec<SignalingMessage>,
}

/// Logger attached to a phone for one test.
#[derive(Debug)]
pub struct XcalLogger {
    op: Operator,
    test_label: &'static str,
    start_plan_s: f64,
    samples: Vec<KpiSample>,
    messages: Vec<SignalingMessage>,
}

impl XcalLogger {
    /// Start logging a test at `start_plan_s`.
    pub fn start(op: Operator, test_label: &'static str, start_plan_s: f64) -> Self {
        XcalLogger {
            op,
            test_label,
            start_plan_s,
            samples: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Record a 500 ms KPI sample.
    pub fn log_sample(&mut self, sample: KpiSample) {
        debug_assert!(sample.time_s >= self.start_plan_s - 1e-6);
        self.samples.push(sample);
    }

    /// Record a handover (as its command/complete signaling pair).
    pub fn log_handover(&mut self, ev: &HandoverEvent) {
        let [a, b] = SignalingMessage::pair_for(ev);
        self.messages.push(a);
        self.messages.push(b);
    }

    /// Record an arbitrary signaling message.
    pub fn log_message(&mut self, msg: SignalingMessage) {
        self.messages.push(msg);
    }

    /// Number of samples logged so far.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Finish the log. `local_tz` is the vehicle's timezone at the test
    /// start — used for the (misleading) filename stamp.
    pub fn finish(self, local_tz: Timezone) -> XcalLog {
        let ts = Timestamp::from_plan_s(self.start_plan_s);
        let local = ts.as_local(local_tz);
        let file_name = format!(
            "XCAL_{}_{}_{:02}_{:02}-{:02}-{:02}.drm",
            self.op.code(),
            self.test_label,
            local.day,
            local.hour,
            local.min,
            local.sec
        );
        XcalLog {
            file_name,
            content_start_edt: ts.as_edt().to_string(),
            op: self.op,
            start_plan_s: self.start_plan_s,
            samples: self.samples,
            messages: self.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_ran::cell::CellId;
    use wheels_ran::handover::HandoverKind;
    use wheels_radio::band::Technology;

    #[test]
    fn filename_uses_local_time_contents_use_edt() {
        // A test at plan 0 (midnight EDT) started in LA: the filename says
        // Aug 7 21:00, the contents say Aug 8 00:00.
        let log = XcalLogger::start(Operator::Verizon, "DL", 0.0).finish(Timezone::Pacific);
        assert!(log.file_name.contains("07_21-00-00"), "{}", log.file_name);
        assert!(log.content_start_edt.starts_with("2022-08-08 00:00:00"));
    }

    #[test]
    fn handover_logs_two_messages() {
        let mut l = XcalLogger::start(Operator::Att, "UL", 100.0);
        l.log_handover(&HandoverEvent {
            time_s: 105.0,
            from: (CellId(1), Technology::Lte),
            to: (CellId(2), Technology::Lte),
            duration_ms: 50.0,
            kind: HandoverKind::Horizontal4g,
        });
        let log = l.finish(Timezone::Central);
        assert_eq!(log.messages.len(), 2);
    }

    #[test]
    fn filename_carries_operator_code() {
        let log = XcalLogger::start(Operator::TMobile, "RTT", 3_600.0).finish(Timezone::Eastern);
        assert!(log.file_name.starts_with("XCAL_T_RTT_"));
    }
}
