//! Property tests for the spanned tokenizer.
//!
//! The lexer is the foundation every rule stands on, and it runs over
//! arbitrary workspace source — including files mid-edit, fixtures that
//! deliberately misuse syntax, and whatever a future crate checks in. Two
//! properties must hold unconditionally:
//!
//! 1. **Totality** — `tokenize` never panics, whatever bytes it is fed.
//! 2. **Strip idempotence** — the code view is a fixed point: stripping
//!    the stripped code changes nothing and yields no comments, because
//!    every state-inducing character (quotes, comment delimiters) is
//!    blanked out of the code view.
//!
//! Deterministic regression fixtures pin the corner cases that byte soup
//! is unlikely to hit by chance: raw strings with hash fences, nested
//! block comments containing string delimiters, unterminated literals.

use proptest::prelude::*;
use wheels_lint::lexer::{strip, tokenize, TokenKind};

/// Re-strip the joined code view and require a fixed point.
fn assert_strip_idempotent(src: &str) {
    let first = strip(src);
    let joined = first
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let second = strip(&joined);
    assert_eq!(first.len(), second.len(), "line count changed on re-strip");
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.code, b.code, "code view not a fixed point");
        assert!(b.comment.is_empty(), "re-strip invented a comment: {:?}", b.comment);
    }
}

/// Structural invariants that must hold for any input.
fn assert_lex_invariants(src: &str) {
    let lexed = tokenize(src);
    let n_lines = src.split('\n').count();
    assert_eq!(lexed.lines.len(), n_lines, "strip view must keep the line count");
    for tok in &lexed.tokens {
        assert!(tok.line >= 1 && tok.line <= n_lines, "token line out of range");
        assert!(tok.col >= 1, "token col must be 1-based");
        match tok.kind {
            // Literal content is never retained — rules must not see it.
            TokenKind::Str | TokenKind::Char => assert!(tok.text.is_empty()),
            _ => assert!(!tok.text.is_empty(), "empty token text for {:?}", tok.kind),
        }
    }
}

/// Rust-ish fragments that exercise the lexer state machine far more
/// densely than uniform bytes: every delimiter that opens or closes a
/// string/char/comment state, plus innocuous filler.
fn fragment() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("\""),
        Just("'"),
        Just("\\"),
        Just("\\\""),
        Just("/*"),
        Just("*/"),
        Just("//"),
        Just("r#\""),
        Just("r##\""),
        Just("\"#"),
        Just("\"##"),
        Just("b\""),
        Just("b'"),
        Just("\n"),
        Just("'a"),
        Just("ident"),
        Just("0x5EED"),
        Just("1.5e-3"),
        Just(".unwrap()"),
        Just("["),
        Just("]"),
        Just("é√"),
    ]
}

proptest! {
    #[test]
    fn tokenize_is_total_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_lex_invariants(&src);
    }

    #[test]
    fn strip_is_idempotent_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_strip_idempotent(&src);
    }

    #[test]
    fn tokenize_is_total_on_delimiter_soup(parts in prop::collection::vec(fragment(), 0..80)) {
        let src = parts.concat();
        assert_lex_invariants(&src);
        assert_strip_idempotent(&src);
    }
}

#[test]
fn raw_strings_with_hash_fences() {
    let src = "let a = r##\"one \"# two\"##; let b = r#\"x\"#; // tail\nlet c = r\"plain\";";
    assert_lex_invariants(src);
    assert_strip_idempotent(src);
    let lexed = tokenize(src);
    // Both raw strings collapse to content-free Str tokens.
    let strs = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).count();
    assert_eq!(strs, 3, "three raw strings expected");
    assert!(!lexed.lines[0].code.contains("two"), "raw string content leaked into code");
}

#[test]
fn nested_block_comment_holding_string_delimiters() {
    let src = "before(); /* level1 \" /* level2 ' */ still \" comment */ after();";
    assert_lex_invariants(src);
    assert_strip_idempotent(src);
    let lexed = tokenize(src);
    let idents: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["before", "after"], "comment body must not tokenize");
    assert!(lexed.lines[0].comment.contains("level2"));
}

#[test]
fn unterminated_literals_are_swallowed_not_panicked() {
    for src in [
        "let s = \"never closed",
        "let s = r##\"never closed\"#",
        "let c = '",
        "open(); /* runs off the end",
        "b\"byte string, no close",
        "tail backslash \\",
    ] {
        assert_lex_invariants(src);
        assert_strip_idempotent(src);
    }
}

#[test]
fn multiline_states_carry_across_lines() {
    let src = "let s = \"line one\nline two\"; done();\n/* a\nb */ fin();";
    assert_lex_invariants(src);
    assert_strip_idempotent(src);
    let lexed = tokenize(src);
    assert!(!lexed.lines[1].code.contains("line"), "string body leaked on line 2");
    let idents: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert!(idents.contains(&"done") && idents.contains(&"fin"));
}

#[test]
fn lifetimes_survive_the_char_literal_state() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
    assert_lex_invariants(src);
    assert_strip_idempotent(src);
    let lifetimes = tokenize(src)
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .count();
    assert_eq!(lifetimes, 3);
}

#[test]
fn crlf_and_unicode_inputs() {
    for src in [
        "a();\r\nb(); // crlf tail\r\n",
        "let π = \"ε\"; // κόσμε\nπ.len();",
        "\u{0}\u{1}mixed\u{7f}control\"\u{0}\"",
    ] {
        assert_lex_invariants(src);
        assert_strip_idempotent(src);
    }
}
