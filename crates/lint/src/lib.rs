//! `wheels-lint` — determinism-invariant static analysis for the wheels
//! workspace.
//!
//! Every table and figure this repo reproduces rests on one invariant:
//! output is a pure function of `(seed, scenario, scale)`, byte-identical
//! at any `--jobs`/`--fig-jobs` count and under injected faults. The
//! equivalence gates in `ci.sh` prove that *dynamically*; this crate
//! enforces it *at the source level*, so a `HashMap` iteration or a
//! `partial_cmp` sort is caught by review tooling instead of by a
//! probabilistic CI failure. Rules:
//!
//! | rule | guards against |
//! |------|----------------|
//! | D1   | float `partial_cmp` as a sort/min/max/binary-search key     |
//! | D2   | `std::collections::HashMap`/`HashSet` in non-test code      |
//! | D3   | ambient nondeterminism: wall clocks, OS entropy, env vars   |
//! | D4   | RNG construction outside `netsim::rng` stream derivation    |
//! | D5   | `partial_cmp(..).unwrap()/.expect(..)` NaN panics           |
//! | D6   | bare `fs::write`/`File::create` (torn-output hazard)        |
//!
//! Suppression is an adjacent `// lint:allow(Dn): <reason>` comment —
//! same line, or a comment-only line directly above the offending code.
//! The reason is mandatory: an allow without one does not suppress.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod rules;

/// The determinism rules. `D1` < `D2` < ... orders report output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Float `partial_cmp` keying an ordering sink.
    D1,
    /// Hash-ordered std collections in non-test code.
    D2,
    /// Ambient nondeterminism (clocks, entropy, environment).
    D3,
    /// RNG construction outside the derivation layer.
    D4,
    /// `partial_cmp` unwrap/expect (NaN panic).
    D5,
    /// Bare `fs::write`/`File::create` in non-test code: a crash
    /// mid-write leaves a torn file under its final name.
    D6,
}

impl Rule {
    /// All rules, report order.
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5, Rule::D6];

    /// The rule's identifier, as written in `lint:allow(..)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
        }
    }

    /// Parse `"D2"` → [`Rule::D2`].
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding, after suppression resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// `Some(reason)` when an allow directive (or the built-in module
    /// allowlist) suppresses this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    /// Whether this finding should fail the build.
    pub fn is_unsuppressed(&self) -> bool {
        self.suppressed.is_none()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} — {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Modules with a standing exemption from one rule. Paths are
/// `/`-separated suffixes of the workspace-relative file path.
///
/// Kept deliberately tiny: the only ambient-nondeterminism consumer in
/// the tree is the `--timings` instrumentation in the repro driver
/// (wall-clock phase timings are *reported*, never fed back into
/// simulation state), and the only legitimate bare RNG constructors are
/// the stream-derivation layer itself and scenario compilation.
pub const BUILTIN_ALLOW: &[(&str, Rule, &str)] = &[
    (
        "crates/bench/src/bin/repro.rs",
        Rule::D3,
        "--timings instrumentation: wall-clock reads are reported, never \
         fed into simulation state",
    ),
    (
        "crates/netsim/src/rng.rs",
        Rule::D4,
        "the stream-derivation layer itself",
    ),
    (
        "crates/campaign/src/scenario.rs",
        Rule::D4,
        "scenario compilation derives the panel seeds",
    ),
];

/// Directory names the workspace walker never descends into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", "node_modules"];

/// An allow directive parsed from a comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: Rule,
    reason: String,
}

/// Parse every well-formed `lint:allow(Dn): reason` in a comment. A
/// directive without a (nonempty) reason is ignored — suppressions must
/// say why.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rule_id = rest[..close].trim();
        let after = &rest[close + 1..];
        if let Some(rule) = Rule::parse(rule_id) {
            if let Some(colon) = after.strip_prefix(':') {
                // The reason runs to the next directive (if any) or EOL.
                let end = colon.find("lint:allow(").unwrap_or(colon.len());
                let reason = colon[..end].trim().trim_end_matches('.').to_string();
                if !reason.is_empty() {
                    out.push(Allow {
                        rule,
                        reason: reason.to_string(),
                    });
                }
            }
        }
        rest = after;
    }
    out
}

/// `true` when a path component marks the file as test-only source
/// (integration tests, benches). `src/foo_tests.rs` is *not* test-only —
/// only directory names count.
fn path_is_test(path: &Path) -> bool {
    path.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("proptests")
        )
    })
}

/// Mark the lines belonging to `#[cfg(test)] mod ... { ... }` regions.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut out = Vec::with_capacity(code.len());
    let mut depth: i32 = 0;
    // Armed after `#[cfg(test)]`, waiting for the `mod`'s opening brace.
    let mut armed = false;
    let mut region_close: Option<i32> = None;
    for line in code {
        let test_at_start = region_close.is_some();
        let trimmed = line.trim();
        if trimmed.contains("#[cfg(test)]") {
            armed = true;
        }
        let line_has_mod = {
            // A standalone `mod` token (not `model`, not a path segment).
            line.match_indices("mod").any(|(p, _)| {
                let before_ok = p == 0
                    || !line[..p]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':');
                let after = &line[p + 3..];
                let after_ok = after.chars().next().is_none_or(|c| c.is_whitespace());
                before_ok && after_ok
            })
        };
        for c in line.chars() {
            match c {
                '{' => {
                    if armed && line_has_mod && region_close.is_none() {
                        region_close = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close == Some(depth) {
                        region_close = None;
                    }
                }
                _ => {}
            }
        }
        // `#[cfg(test)]` guarding a single non-mod item (a `use`, a fn):
        // disarm once a code-bearing, non-attribute, non-mod line passes.
        if armed && !trimmed.is_empty() && !trimmed.starts_with("#[") && !line_has_mod {
            armed = false;
            // ... but that guarded line itself is test-only.
            out.push(true);
            continue;
        }
        out.push(test_at_start || region_close.is_some());
    }
    out
}

/// Lint one file's source text. `path` decides test-only status and the
/// built-in allowlist; it is stored verbatim in the findings.
pub fn lint_source(path: &Path, src: &str) -> Vec<Finding> {
    let lines = lexer::strip(src);
    let code: Vec<String> = lines.iter().map(|l| l.code.clone()).collect();
    let is_test = if path_is_test(path) {
        vec![true; code.len()]
    } else {
        test_regions(&code)
    };

    // Attach allow directives: same line when it carries code, otherwise
    // the next code-bearing line (comment-block-above style).
    let mut allows: Vec<Vec<Allow>> = vec![Vec::new(); code.len().max(1)];
    for (i, line) in lines.iter().enumerate() {
        let parsed = parse_allows(&line.comment);
        if parsed.is_empty() {
            continue;
        }
        let target = if !code[i].trim().is_empty() {
            Some(i)
        } else {
            (i + 1..code.len()).find(|&j| !code[j].trim().is_empty())
        };
        if let Some(t) = target {
            allows[t].extend(parsed);
        }
    }

    let norm: String = path.to_string_lossy().replace('\\', "/");
    let builtin: Vec<(Rule, &str)> = BUILTIN_ALLOW
        .iter()
        .filter(|(suffix, _, _)| norm.ends_with(suffix))
        .map(|&(_, rule, why)| (rule, why))
        .collect();

    let raw = rules::run(&rules::FileContext {
        code: &code,
        is_test: &is_test,
    });
    raw.into_iter()
        .map(|f| {
            let idx = f.line - 1;
            let suppressed = allows
                .get(idx)
                .and_then(|a| a.iter().find(|a| a.rule == f.rule))
                .map(|a| a.reason.clone())
                .or_else(|| {
                    builtin
                        .iter()
                        .find(|(r, _)| *r == f.rule)
                        .map(|(_, why)| format!("builtin allowlist: {why}"))
                });
            Finding {
                file: path.to_path_buf(),
                line: f.line,
                rule: f.rule,
                message: f.message,
                suppressed,
            }
        })
        .collect()
}

/// Recursively collect `.rs` files under `root` in sorted order,
/// skipping build output, vendored deps, and lint fixtures.
pub fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `paths`. Returns `(findings, files)`.
pub fn lint_paths(paths: &[PathBuf]) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    for p in paths {
        collect_rs_files(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut findings = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        findings.extend(lint_source(f, &src));
    }
    Ok((findings, files.len()))
}

/// JSON-escape a string (no external deps on purpose).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a machine-readable JSON array (stable field order).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"suppressed\": {}}}{}\n",
            json_escape(&f.file.to_string_lossy().replace('\\', "/")),
            f.line,
            f.rule,
            json_escape(&f.message),
            f.suppressed
                .as_ref()
                .map_or("null".to_string(), |r| format!("\"{}\"", json_escape(r))),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

/// Expected outcome of linting one fixture file, derived from its name:
/// `bad/d2_whatever.rs` must produce ≥1 unsuppressed finding, all D2;
/// anything under `allowed/` must produce none.
#[derive(Debug)]
pub struct FixtureResult {
    /// The fixture file.
    pub file: PathBuf,
    /// What went wrong; `None` means the fixture behaved as expected.
    pub error: Option<String>,
}

/// Run the self-check over a fixture corpus directory containing `bad/`
/// and `allowed/` subdirectories.
pub fn check_fixtures(dir: &Path) -> std::io::Result<Vec<FixtureResult>> {
    let mut results = Vec::new();
    for (sub, want_findings) in [("bad", true), ("allowed", false)] {
        let mut files = Vec::new();
        collect_rs_files_unfiltered(&dir.join(sub), &mut files)?;
        files.sort();
        for f in files {
            let src = std::fs::read_to_string(&f)?;
            let findings = lint_source(&f, &src);
            let unsuppressed: Vec<&Finding> =
                findings.iter().filter(|f| f.is_unsuppressed()).collect();
            let error = if want_findings {
                let stem = f.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                let expect = stem
                    .split('_')
                    .next()
                    .and_then(|p| Rule::parse(&p.to_uppercase()));
                match expect {
                    None => Some(format!("bad fixture `{stem}` has no dN_ rule prefix")),
                    Some(rule) => {
                        if unsuppressed.is_empty() {
                            Some(format!("expected {rule} to fire, got no findings"))
                        } else if let Some(wrong) =
                            unsuppressed.iter().find(|f| f.rule != rule)
                        {
                            Some(format!(
                                "expected only {rule}, got {} at line {}",
                                wrong.rule, wrong.line
                            ))
                        } else {
                            None
                        }
                    }
                }
            } else if let Some(first) = unsuppressed.first() {
                Some(format!(
                    "expected clean, got {} at line {}: {}",
                    first.rule, first.line, first.message
                ))
            } else {
                None
            };
            results.push(FixtureResult { file: f, error });
        }
    }
    Ok(results)
}

/// Like [`collect_rs_files`] but without the `fixtures` skip (used to
/// read the fixture corpus itself).
fn collect_rs_files_unfiltered(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root)? {
        let p = entry?.path();
        if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_allow_suppresses() {
        let f = lint_source(
            Path::new("x.rs"),
            "use std::collections::HashMap; // lint:allow(D2): lookup only\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].suppressed.as_deref(), Some("lookup only"));
    }

    #[test]
    fn comment_above_allow_suppresses() {
        let src = "// lint:allow(D4): seed derived upstream\nlet r = SmallRng::seed_from_u64(s);\n";
        let f = lint_source(Path::new("x.rs"), src);
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.is_some());
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let f = lint_source(
            Path::new("x.rs"),
            "let t = Instant::now(); // lint:allow(D3)\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].is_unsuppressed(), "reason-less allow must not count");
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let f = lint_source(
            Path::new("x.rs"),
            "let t = Instant::now(); // lint:allow(D2): wrong rule\n",
        );
        assert!(f[0].is_unsuppressed());
    }

    #[test]
    fn builtin_allowlist_suppresses_by_suffix() {
        let f = lint_source(
            Path::new("crates/bench/src/bin/repro.rs"),
            "let t0 = Instant::now();\n",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed.as_deref().unwrap().starts_with("builtin"));
    }

    #[test]
    fn builtin_allowlist_is_per_rule() {
        // repro.rs is allowlisted for D3, not for D2.
        let f = lint_source(
            Path::new("crates/bench/src/bin/repro.rs"),
            "use std::collections::HashMap;\n",
        );
        assert!(f[0].is_unsuppressed());
    }

    #[test]
    fn cfg_test_module_is_exempt_from_d2() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() { let _ = HashSet::<u8>::new(); }\n}\n";
        let f = lint_source(Path::new("src/x.rs"), src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn code_after_cfg_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\nuse std::collections::HashMap;\n";
        let f = lint_source(Path::new("src/x.rs"), src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn tests_dir_files_are_test_only() {
        let f = lint_source(
            Path::new("crates/geo/tests/proptests.rs"),
            "use std::collections::HashSet;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn d1_still_applies_in_test_files() {
        let f = lint_source(
            Path::new("tests/x.rs"),
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::D1);
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let f = lint_source(Path::new("x.rs"), "let t = Instant::now();\n");
        let j = to_json(&f);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"rule\": \"D3\""));
        assert!(j.contains("\"suppressed\": null"));
    }
}
