//! Clean counterpart of `bad/d5_partial_cmp_unwrap.rs`: NaN-safe
//! handling of `partial_cmp`, or the total order directly.

use std::cmp::Ordering;

fn is_less(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == Ordering::Less
}

fn rank(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

fn explicit(a: f64, b: f64) -> Option<Ordering> {
    match a.partial_cmp(&b) {
        Some(o) => Some(o),
        None => None,
    }
}
