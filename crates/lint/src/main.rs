//! CLI driver for `wheels-lint`.
//!
//! ```text
//! cargo run -p wheels-lint --offline -- crates/ src/ examples/ tests/
//! cargo run -p wheels-lint --offline -- --json crates/
//! cargo run -p wheels-lint --offline -- --fixtures
//! ```
//!
//! Exit status: 0 = no unsuppressed findings (or all fixtures behave),
//! 1 = findings (or fixture mismatch), 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use wheels_lint::{check_fixtures, lint_paths, to_json, Finding};

const USAGE: &str = "usage: wheels-lint [--json] [--fixtures] [PATH ...]\n\
  PATH        files or directories to lint (default: crates/ src/ examples/ tests/)\n\
  --json      emit findings (including suppressed ones) as JSON\n\
  --fixtures  self-check: every fixtures/bad file must fire its rule,\n\
              every fixtures/allowed file must lint clean";

fn main() -> ExitCode {
    let mut json = false;
    let mut fixtures = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fixtures" => fixtures = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("wheels-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    if fixtures {
        return run_fixture_check();
    }

    if paths.is_empty() {
        paths = ["crates", "src", "examples", "tests"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect();
    }

    let (findings, files) = match lint_paths(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wheels-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let unsuppressed: Vec<&Finding> = findings.iter().filter(|f| f.is_unsuppressed()).collect();
    let suppressed = findings.len() - unsuppressed.len();

    if json {
        println!("{}", to_json(&findings));
    } else {
        for f in &unsuppressed {
            println!("{f}");
        }
        eprintln!(
            "wheels-lint: {files} files scanned, {} unsuppressed finding{} ({suppressed} suppressed)",
            unsuppressed.len(),
            if unsuppressed.len() == 1 { "" } else { "s" },
        );
    }

    if unsuppressed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_fixture_check() -> ExitCode {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let results = match check_fixtures(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wheels-lint: fixtures: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = 0usize;
    for r in &results {
        match &r.error {
            None => println!("ok   {}", r.file.display()),
            Some(e) => {
                failed += 1;
                println!("FAIL {}: {e}", r.file.display());
            }
        }
    }
    eprintln!(
        "wheels-lint: {} fixtures checked, {failed} failed",
        results.len()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
