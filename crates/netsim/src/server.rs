//! Measurement servers: AWS EC2 cloud instances and Verizon Wavelength
//! edge servers.
//!
//! §3 of the paper: *"we deployed multiple AWS EC2 instances – two in
//! California for the tests done in the Pacific and Mountain time zones,
//! and two in Ohio for the tests done in Central and Eastern time zones.
//! Additionally ... 5 Amazon Wavelength edge servers in Los Angeles, Las
//! Vegas, Denver, Chicago, and Boston. ... For tests over the Verizon
//! network, we used the deployed Wavelength server in each of these five
//! cities and the cloud servers in the rest of the trip."*

use wheels_geo::cities::edge_cities;
use wheels_geo::coord::LatLon;
use wheels_geo::timezone::Timezone;
use wheels_ran::operator::Operator;

/// Cloud datacenter vs in-network edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ServerKind {
    /// AWS EC2 (us-west California / us-east Ohio).
    Cloud,
    /// Amazon Wavelength inside Verizon's network.
    Edge,
}

impl ServerKind {
    /// Label used in figures ("cloud" / "edge").
    pub fn label(self) -> &'static str {
        match self {
            ServerKind::Cloud => "cloud",
            ServerKind::Edge => "edge",
        }
    }
}

/// A measurement server endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Server {
    /// Cloud or edge.
    pub kind: ServerKind,
    /// Physical location (datacenter site).
    pub pos: LatLon,
    /// Human-readable site name.
    pub name: &'static str,
}

/// AWS us-west-1-ish site used for Pacific/Mountain tests.
pub const CLOUD_CALIFORNIA: Server = Server {
    kind: ServerKind::Cloud,
    pos: LatLon {
        lat: 37.35,
        lon: -121.95,
    },
    name: "EC2 California",
};

/// AWS us-east-2 (Ohio) site used for Central/Eastern tests.
pub const CLOUD_OHIO: Server = Server {
    kind: ServerKind::Cloud,
    pos: LatLon {
        lat: 39.96,
        lon: -83.0,
    },
    name: "EC2 Ohio",
};

/// Radius around a Wavelength city within which the edge server is used.
pub const EDGE_RADIUS_M: f64 = 60_000.0;

/// Chooses the server for a test, per the paper's §3 rules. The fleet is
/// data: clouds, a timezone→cloud mapping, and edge sites with a service
/// radius — so scenario specs can describe any server deployment.
#[derive(Debug, Clone)]
pub struct ServerSelector {
    clouds: Vec<Server>,
    /// Index into `clouds` per [`Timezone::ALL`] entry.
    cloud_by_tz: Vec<usize>,
    edge_sites: Vec<(LatLon, &'static str)>,
    edge_radius_m: f64,
}

impl ServerSelector {
    /// Build the selector with the paper fleet: CA/OH clouds split at the
    /// Mountain/Central boundary and the five Wavelength cities from the
    /// route.
    pub fn new() -> Self {
        Self::from_parts(
            vec![CLOUD_CALIFORNIA, CLOUD_OHIO],
            vec![0, 0, 1, 1],
            edge_cities().map(|(_, c)| (c.center, c.name)).collect(),
            EDGE_RADIUS_M,
        )
    }

    /// Build a selector from explicit fleet data.
    ///
    /// # Panics
    /// Panics if `cloud_by_tz` does not name one valid cloud index per
    /// entry of [`Timezone::ALL`].
    pub fn from_parts(
        clouds: Vec<Server>,
        cloud_by_tz: Vec<usize>,
        edge_sites: Vec<(LatLon, &'static str)>,
        edge_radius_m: f64,
    ) -> Self {
        assert_eq!(
            cloud_by_tz.len(),
            Timezone::ALL.len(),
            "one cloud per timezone required"
        );
        assert!(
            cloud_by_tz.iter().all(|&i| i < clouds.len()),
            "cloud_by_tz index out of range"
        );
        ServerSelector {
            clouds,
            cloud_by_tz,
            edge_sites,
            edge_radius_m,
        }
    }

    /// The cloud server used from a given timezone.
    pub fn cloud_for(&self, tz: Timezone) -> Server {
        let zi = Timezone::ALL
            .iter()
            .position(|&z| z == tz)
            .expect("known timezone");
        self.clouds[self.cloud_by_tz[zi]]
    }

    /// Select the server for a test by `op` at position `pos` in timezone
    /// `tz`: the in-city Wavelength edge for Verizon near one of the five
    /// edge cities, otherwise the timezone's cloud server.
    pub fn select(&self, op: Operator, pos: LatLon, tz: Timezone) -> Server {
        self.select_for(op.has_edge_servers(), pos, tz)
    }

    /// [`ServerSelector::select`] with the edge entitlement passed
    /// explicitly (scenario specs may override the per-operator default).
    pub fn select_for(&self, has_edge: bool, pos: LatLon, tz: Timezone) -> Server {
        if has_edge {
            if let Some((center, name)) = self
                .edge_sites
                .iter()
                .find(|(c, _)| c.haversine_m(&pos) <= self.edge_radius_m)
            {
                return Server {
                    kind: ServerKind::Edge,
                    pos: *center,
                    name,
                };
            }
        }
        self.cloud_for(tz)
    }
}

impl Default for ServerSelector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn la() -> LatLon {
        LatLon::new(34.0522, -118.2437)
    }
    fn rural_nebraska() -> LatLon {
        LatLon::new(41.0, -100.0)
    }

    #[test]
    fn five_edge_sites() {
        assert_eq!(ServerSelector::new().edge_sites.len(), 5);
    }

    #[test]
    fn verizon_in_la_gets_edge() {
        let s = ServerSelector::new();
        let srv = s.select(Operator::Verizon, la(), Timezone::Pacific);
        assert_eq!(srv.kind, ServerKind::Edge);
        assert_eq!(srv.name, "Los Angeles");
    }

    #[test]
    fn tmobile_in_la_gets_cloud() {
        let s = ServerSelector::new();
        let srv = s.select(Operator::TMobile, la(), Timezone::Pacific);
        assert_eq!(srv.kind, ServerKind::Cloud);
        assert_eq!(srv.name, "EC2 California");
    }

    #[test]
    fn verizon_in_nebraska_gets_cloud_ohio() {
        let s = ServerSelector::new();
        let srv = s.select(Operator::Verizon, rural_nebraska(), Timezone::Central);
        assert_eq!(srv.kind, ServerKind::Cloud);
        assert_eq!(srv.name, "EC2 Ohio");
    }

    #[test]
    fn cloud_follows_timezone_split() {
        let s = ServerSelector::new();
        assert_eq!(s.cloud_for(Timezone::Pacific).name, "EC2 California");
        assert_eq!(s.cloud_for(Timezone::Mountain).name, "EC2 California");
        assert_eq!(s.cloud_for(Timezone::Central).name, "EC2 Ohio");
        assert_eq!(s.cloud_for(Timezone::Eastern).name, "EC2 Ohio");
    }
}
