//! Per-operator cell deployment along the route.
//!
//! §4.2 of the paper: coverage is "disappointingly low and highly
//! fragmented", with "very diverse deployment strategies" per operator and
//! even per region for the same operator. We encode each operator's
//! strategy as a [`LayerPlan`] per (technology, region, timezone):
//!
//! * a *coverage fraction* — what share of route-miles the layer is
//!   deployed along, realized as contiguous patches (Markov persistence, so
//!   coverage is fragmented, not salt-and-pepper);
//! * a *cell spacing* within covered stretches;
//! * lateral offsets and per-RE EIRP for the link budget.
//!
//! The numbers are calibrated to land the paper's Fig. 2 shares: T-Mobile
//! ~68 % 5G / ~38 % high-speed (midband even on highways, strongest in the
//! Pacific zone); Verizon ~20 % 5G with the only real mmWave footprint
//! (downtown cores) and more 5G in the eastern half; AT&T ~20 % 5G, almost
//! no high-speed 5G (~3 %), weakest in Mountain/Central, but the best
//! LTE-A.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wheels_geo::region::RegionKind;
use wheels_geo::route::Route;
use wheels_geo::timezone::Timezone;
use wheels_radio::band::Technology;

use crate::cell::{CellDb, CellId, CellSite};
use crate::operator::Operator;
use crate::tuning::OperatorTuning;

/// Deployment plan of one technology layer in one (region, timezone)
/// context.
#[derive(Debug, Clone, Copy)]
pub struct LayerPlan {
    /// Fraction of route-miles the layer is deployed along, [0, 1].
    pub coverage: f64,
    /// Cell spacing within covered stretches, meters.
    pub spacing_m: f64,
    /// Mean contiguous patch length, meters (fragmentation scale).
    pub patch_len_m: f64,
}

impl LayerPlan {
    /// A layer that simply is not deployed here.
    pub const NONE: LayerPlan = LayerPlan {
        coverage: 0.0,
        spacing_m: f64::INFINITY,
        patch_len_m: 5_000.0,
    };
}

/// Timezone multiplier applied to a base coverage value, clamped to [0, 1].
fn tz_scaled(base: f64, factor: f64) -> f64 {
    (base * factor).clamp(0.0, 1.0)
}

/// The deployment plan for `op`'s `tech` layer in a given context.
///
/// This function is the codified version of the paper's §4.2 narrative; see
/// module docs. Regions: the denser the region, the denser (and more
/// likely) the deployment — except T-Mobile midband, which is deployed
/// along highways too.
pub fn layer_plan(op: Operator, tech: Technology, region: RegionKind, tz: Timezone) -> LayerPlan {
    use Operator::*;
    use RegionKind::*;
    use Technology::*;
    use Timezone::*;

    // Base spacings by region for macro layers (m).
    let macro_spacing = match region {
        UrbanCore => 1_200.0,
        Urban => 1_800.0,
        Suburban => 2_500.0,
        Highway => 3_400.0,
    };
    let mid_spacing = match region {
        UrbanCore => 900.0,
        Urban => 1_300.0,
        Suburban => 1_800.0,
        Highway => 2_200.0,
    };

    match (op, tech) {
        // ---- LTE: ubiquitous anchors for everyone -------------------
        (_, Lte) => LayerPlan {
            coverage: 1.0,
            spacing_m: macro_spacing,
            patch_len_m: 50_000.0,
        },
        // ---- LTE-A ---------------------------------------------------
        (Verizon, LteA) => LayerPlan {
            coverage: 0.62,
            spacing_m: macro_spacing,
            patch_len_m: 30_000.0,
        },
        (TMobile, LteA) => LayerPlan {
            coverage: 0.55,
            spacing_m: macro_spacing,
            patch_len_m: 30_000.0,
        },
        // AT&T: "a much larger percentage of LTE-A vs. LTE".
        (Att, LteA) => LayerPlan {
            coverage: 0.85,
            spacing_m: macro_spacing,
            patch_len_m: 40_000.0,
        },
        // ---- 5G low band ----------------------------------------------
        (Verizon, Nr5gLow) => {
            let base = match region {
                UrbanCore | Urban => 0.25,
                Suburban => 0.10,
                Highway => 0.03,
            };
            // Verizon's 5G skews east (Fig. 2c).
            let f = match tz {
                Pacific => 1.0,
                Mountain => 0.6,
                Central => 1.4,
                Eastern => 1.5,
            };
            LayerPlan {
                coverage: tz_scaled(base, f),
                spacing_m: macro_spacing,
                patch_len_m: 12_000.0,
            }
        }
        (TMobile, Nr5gLow) => LayerPlan {
            // n71 wide but far from wall-to-wall along interstates.
            coverage: 0.45,
            spacing_m: macro_spacing,
            patch_len_m: 40_000.0,
        },
        (Att, Nr5gLow) => {
            let base = match region {
                UrbanCore | Urban => 0.40,
                Suburban => 0.20,
                Highway => 0.15,
            };
            // AT&T: very low 5G in Mountain and Central (Fig. 2c).
            let f = match tz {
                Pacific => 1.2,
                Mountain => 0.30,
                Central => 0.45,
                Eastern => 1.2,
            };
            LayerPlan {
                coverage: tz_scaled(base, f),
                spacing_m: macro_spacing,
                patch_len_m: 15_000.0,
            }
        }
        // ---- 5G mid band ----------------------------------------------
        (Verizon, Nr5gMid) => {
            let base = match region {
                UrbanCore => 0.50,
                Urban => 0.30,
                Suburban => 0.08,
                Highway => 0.04,
            };
            let f = match tz {
                Pacific => 1.0,
                Mountain => 0.5,
                Central => 1.4,
                Eastern => 1.5,
            };
            LayerPlan {
                coverage: tz_scaled(base, f),
                spacing_m: mid_spacing,
                patch_len_m: 6_000.0,
            }
        }
        (TMobile, Nr5gMid) => {
            // The only carrier with real highway midband (Fig. 2d).
            let base = match region {
                UrbanCore => 0.75,
                Urban => 0.60,
                Suburban => 0.38,
                Highway => 0.34,
            };
            // Strongest in the Pacific zone (Fig. 2c).
            let f = match tz {
                Pacific => 1.25,
                Mountain => 0.70,
                Central => 0.95,
                Eastern => 0.95,
            };
            LayerPlan {
                coverage: tz_scaled(base, f),
                spacing_m: mid_spacing,
                patch_len_m: 10_000.0,
            }
        }
        (Att, Nr5gMid) => {
            let base = match region {
                UrbanCore => 0.25,
                Urban => 0.12,
                Suburban => 0.03,
                Highway => 0.02,
            };
            let f = match tz {
                Pacific => 1.2,
                Mountain => 0.3,
                Central => 0.3,
                Eastern => 1.2,
            };
            LayerPlan {
                coverage: tz_scaled(base, f),
                spacing_m: mid_spacing,
                patch_len_m: 4_000.0,
            }
        }
        // ---- 5G mmWave -------------------------------------------------
        (Verizon, Nr5gMmWave) => {
            // "Verizon has prioritized ... mmWave (in downtown areas of
            // major cities)".
            let base = match region {
                UrbanCore => 0.60,
                Urban => 0.10,
                Suburban | Highway => 0.0,
            };
            LayerPlan {
                coverage: base,
                spacing_m: 230.0,
                patch_len_m: 1_500.0,
            }
        }
        (TMobile, Nr5gMmWave) => {
            let base = if region == UrbanCore { 0.003 } else { 0.0 };
            LayerPlan {
                coverage: base,
                spacing_m: 230.0,
                patch_len_m: 800.0,
            }
        }
        (Att, Nr5gMmWave) => {
            // Thin on route-miles, but present downtown: the paper's
            // static tests found AT&T mmWave in most major cities.
            let base = match region {
                UrbanCore => 0.30,
                Urban => 0.015,
                Suburban | Highway => 0.0,
            };
            LayerPlan {
                coverage: base,
                spacing_m: 230.0,
                patch_len_m: 1_000.0,
            }
        }
    }
}

/// Per-RE EIRP for a cell of `op`/`tech`, dBm. Macro layers sit around
/// 32 dBm per RE; mmWave folds the operator's beamforming gain in, which is
/// how the Verizon-vs-AT&T RSRP offset of §5.5 enters the link budget.
pub fn eirp_re_dbm(op: Operator, tech: Technology, rng: &mut SmallRng) -> f64 {
    let base = match tech {
        Technology::Lte | Technology::LteA => 32.0,
        Technology::Nr5gLow => 33.0,
        Technology::Nr5gMid => 32.0,
        Technology::Nr5gMmWave => 16.0 + op.mmwave_beams().mean_gain_dbi(),
    };
    base + rng.gen_range(-1.5..1.5)
}

/// [`layer_plan`] with a scenario tuning applied: coverage and spacing are
/// scaled per technology. The neutral tuning reproduces `layer_plan`
/// bit-for-bit (`x * 1.0 == x`, and clamping a value already in [0, 1] is
/// the identity).
pub fn layer_plan_tuned(
    op: Operator,
    tech: Technology,
    region: RegionKind,
    tz: Timezone,
    tuning: &OperatorTuning,
) -> LayerPlan {
    let base = layer_plan(op, tech, region, tz);
    LayerPlan {
        coverage: (base.coverage * tuning.coverage(tech)).clamp(0.0, 1.0),
        spacing_m: base.spacing_m * tuning.spacing(tech),
        patch_len_m: base.patch_len_m,
    }
}

/// Generate the full cell database for one operator along `route`.
///
/// Deterministic in `(op, seed)`. Cell ids are unique within the returned
/// database; combine operators with distinct seeds and id offsets via
/// [`build_all`].
pub fn build_cells(route: &Route, op: Operator, seed: u64, id_offset: u32) -> CellDb {
    build_cells_tuned(route, op, seed, id_offset, &OperatorTuning::NEUTRAL)
}

/// [`build_cells`] with scenario tuning applied to every layer plan.
pub fn build_cells_tuned(
    route: &Route,
    op: Operator,
    seed: u64,
    id_offset: u32,
    tuning: &OperatorTuning,
) -> CellDb {
    // lint:allow(D4): deployment seed arrives from scenario compilation
    // (slot-keyed); the salt only splits per-operator sub-streams
    let mut rng = SmallRng::seed_from_u64(seed ^ (op as u64).wrapping_mul(0x9E37_79B9));
    let tile_m = 250.0;
    let mut sites = Vec::new();
    let mut next_id = id_offset;
    for tech in Technology::ALL {
        let mut covered = false;
        let mut state_valid = false;
        let mut dist_since_cell = f64::INFINITY;
        let mut next_spacing = 0.0;
        let mut od = 0.0;
        while od < route.total_m() {
            let region = route.region_at(od);
            let tz = route.timezone_at(od);
            let plan = layer_plan_tuned(op, tech, region, tz, tuning);
            // Markov patch persistence: re-draw the coverage state with
            // probability tile/patch_len, else keep it.
            let redraw = !state_valid || rng.gen_bool((tile_m / plan.patch_len_m).clamp(0.0, 1.0));
            if redraw {
                covered = rng.gen_bool(plan.coverage.clamp(0.0, 1.0));
                state_valid = true;
            }
            if covered && plan.spacing_m.is_finite() {
                dist_since_cell += tile_m;
                if dist_since_cell >= next_spacing {
                    let lateral_max = match tech {
                        Technology::Nr5gMmWave => 110.0,
                        _ => {
                            if region.is_city() {
                                350.0
                            } else {
                                700.0
                            }
                        }
                    };
                    sites.push(CellSite {
                        id: CellId(next_id),
                        op,
                        tech,
                        odometer_m: od + rng.gen_range(0.0..tile_m),
                        lateral_m: rng.gen_range(lateral_max * 0.1..lateral_max),
                        eirp_re_dbm: eirp_re_dbm(op, tech, &mut rng),
                    });
                    next_id += 1;
                    dist_since_cell = 0.0;
                    next_spacing = plan.spacing_m * rng.gen_range(0.7..1.3);
                }
            } else {
                dist_since_cell = f64::INFINITY;
                next_spacing = 0.0;
            }
            od += tile_m;
        }
    }
    CellDb::new(op, sites)
}

/// Build the cell databases of all three operators with non-overlapping
/// cell-id ranges.
pub fn build_all(route: &Route, seed: u64) -> [CellDb; 3] {

    [
        build_cells(route, Operator::Verizon, seed, 0),
        build_cells(route, Operator::TMobile, seed.wrapping_add(1), 1_000_000),
        build_cells(route, Operator::Att, seed.wrapping_add(2), 2_000_000),
    ]
}

/// Build the cell databases of an arbitrary operator set with per-operator
/// tuning. Seeds and id offsets are keyed on the operator *slot* (not the
/// list position), so a subset scenario sees exactly the deployment the
/// full panel would — and the full three-operator panel with neutral
/// tunings reproduces [`build_all`] bit-for-bit.
pub fn build_ops(
    route: &Route,
    seed: u64,
    ops: &[(Operator, OperatorTuning)],
) -> Vec<CellDb> {
    ops.iter()
        .map(|(op, tuning)| {
            build_cells_tuned(
                route,
                *op,
                seed.wrapping_add(*op as u64),
                *op as u32 * 1_000_000,
                tuning,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route() -> Route {
        Route::cross_country()
    }

    #[test]
    fn lte_everywhere_for_everyone() {
        for op in Operator::ALL {
            for region in RegionKind::ALL {
                for tz in Timezone::ALL {
                    assert!(layer_plan(op, Technology::Lte, region, tz).coverage >= 1.0);
                }
            }
        }
    }

    #[test]
    fn tmobile_midband_on_highways_others_not() {
        let t = layer_plan(
            Operator::TMobile,
            Technology::Nr5gMid,
            RegionKind::Highway,
            Timezone::Central,
        );
        let v = layer_plan(
            Operator::Verizon,
            Technology::Nr5gMid,
            RegionKind::Highway,
            Timezone::Central,
        );
        let a = layer_plan(
            Operator::Att,
            Technology::Nr5gMid,
            RegionKind::Highway,
            Timezone::Central,
        );
        assert!(t.coverage > 0.28);
        assert!(v.coverage < 0.15);
        assert!(a.coverage < 0.05);
    }

    #[test]
    fn mmwave_only_in_cities() {
        for op in Operator::ALL {
            for tz in Timezone::ALL {
                let hw = layer_plan(op, Technology::Nr5gMmWave, RegionKind::Highway, tz);
                assert_eq!(hw.coverage, 0.0, "{op} deploys mmWave on highways");
            }
        }
    }

    #[test]
    fn verizon_leads_mmwave() {
        let v = layer_plan(
            Operator::Verizon,
            Technology::Nr5gMmWave,
            RegionKind::UrbanCore,
            Timezone::Eastern,
        );
        let a = layer_plan(
            Operator::Att,
            Technology::Nr5gMmWave,
            RegionKind::UrbanCore,
            Timezone::Eastern,
        );
        let t = layer_plan(
            Operator::TMobile,
            Technology::Nr5gMmWave,
            RegionKind::UrbanCore,
            Timezone::Eastern,
        );
        assert!(v.coverage > a.coverage && v.coverage > t.coverage);
    }

    #[test]
    fn att_weak_in_mountain_central() {
        for tech in [Technology::Nr5gLow, Technology::Nr5gMid] {
            for region in [RegionKind::Urban, RegionKind::Highway] {
                let m = layer_plan(Operator::Att, tech, region, Timezone::Mountain);
                let e = layer_plan(Operator::Att, tech, region, Timezone::Eastern);
                assert!(m.coverage < e.coverage, "{tech} {region:?}");
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let r = route();
        let a = build_cells(&r, Operator::Verizon, 42, 0);
        let b = build_cells(&r, Operator::Verizon, 42, 0);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn cell_counts_in_table1_ballpark() {
        // Table 1: 3,020 (V) / 4,038 (T) / 3,150 (A) unique cells
        // *connected*; the deployed database must be at least that dense
        // but same order of magnitude.
        let r = route();
        for (op, lo, hi) in [
            (Operator::Verizon, 2_000, 9_000),
            (Operator::TMobile, 3_000, 12_000),
            (Operator::Att, 2_000, 9_000),
        ] {
            let db = build_cells(&r, op, 7, 0);
            let n = db.len();
            assert!((lo..hi).contains(&n), "{op}: {n} cells");
        }
    }

    #[test]
    fn tmobile_has_most_midband_cells() {
        let r = route();
        let dbs = build_all(&r, 7);
        let mid = |db: &CellDb| db.layer_len(Technology::Nr5gMid);
        assert!(mid(&dbs[1]) > 2 * mid(&dbs[0]));
        assert!(mid(&dbs[1]) > 5 * mid(&dbs[2]));
    }

    #[test]
    fn verizon_has_most_mmwave_cells() {
        let r = route();
        let dbs = build_all(&r, 7);
        let mm = |db: &CellDb| db.layer_len(Technology::Nr5gMmWave);
        assert!(mm(&dbs[0]) > mm(&dbs[1]));
        assert!(mm(&dbs[0]) > mm(&dbs[2]));
    }

    #[test]
    fn ids_disjoint_across_operators() {
        let r = route();
        let dbs = build_all(&r, 7);
        // id ranges offset by 1M per operator; sizes far below 1M.
        for db in &dbs {
            assert!(db.len() < 1_000_000);
        }
    }
}
