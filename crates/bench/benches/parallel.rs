//! Scaling of the parallel campaign executor.
//!
//! Times the identical campaign at 1/2/4/8 workers. The dataset is
//! byte-identical at every worker count (proven by
//! `tests/parallel_equivalence.rs`), so the only thing that may change
//! here is wall-clock time. Speedup is bounded by the machine's core
//! count — on a single-core runner all worker counts time alike, which
//! is itself a useful sanity check that the scheduler adds no overhead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wheels_bench::{run_campaign_jobs, ReproScale};

fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        g.bench_function(format!("run_smoke_jobs_{jobs}").as_str(), |b| {
            b.iter(|| black_box(run_campaign_jobs(ReproScale::Smoke, 7, jobs)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_worker_scaling);
criterion_main!(benches);
