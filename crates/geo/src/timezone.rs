//! The four US timezones crossed by the trip.
//!
//! The paper breaks down coverage (Fig. 2c) and throughput (Fig. 5) by
//! timezone, and the log-synchronization pipeline (§B) must convert between
//! UTC, local time, and EDT (the timezone XCAL stamped its file contents in).
//!
//! Real timezone boundaries follow state lines; along the I-15/I-80/I-90
//! corridor of this trip they are well approximated by longitude thresholds,
//! which is what we use. The thresholds below are where the *trip* crossed
//! the boundaries (Nevada/Utah border area, North Platte NE area, and the
//! Indiana line), not general-purpose boundaries.

use std::fmt;

/// A US timezone, with the DST-adjusted UTC offset in effect during the trip
/// (August 2022, so daylight saving time everywhere along the route).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Timezone {
    /// UTC-7 in August (PDT). Los Angeles, Las Vegas.
    Pacific,
    /// UTC-6 in August (MDT). Salt Lake City, Denver.
    Mountain,
    /// UTC-5 in August (CDT). Omaha, Chicago.
    Central,
    /// UTC-4 in August (EDT). Indianapolis, Cleveland, Rochester, Boston.
    Eastern,
}

impl Timezone {
    /// All four timezones in west-to-east (trip) order.
    pub const ALL: [Timezone; 4] = [
        Timezone::Pacific,
        Timezone::Mountain,
        Timezone::Central,
        Timezone::Eastern,
    ];

    /// UTC offset in hours during the trip (August 2022, DST in effect).
    pub fn utc_offset_hours(self) -> i32 {
        match self {
            Timezone::Pacific => -7,
            Timezone::Mountain => -6,
            Timezone::Central => -5,
            Timezone::Eastern => -4,
        }
    }

    /// Offset relative to EDT in hours — XCAL's `.drm` file *contents* were
    /// stamped in EDT regardless of where the vehicle was (§B), so the log
    /// synchronizer repeatedly needs this conversion.
    pub fn offset_from_eastern_hours(self) -> i32 {
        self.utc_offset_hours() - Timezone::Eastern.utc_offset_hours()
    }

    /// Classify a longitude (degrees east) into the timezone the trip was in
    /// at that longitude. Thresholds follow where this route crossed the
    /// boundaries: the NV/AZ–UT line (~-114.05°), near North Platte NE
    /// (~-101.0°), and the Indiana line (~-87.5°).
    pub fn from_longitude(lon: f64) -> Self {
        if lon < -114.05 {
            Timezone::Pacific
        } else if lon < -101.0 {
            Timezone::Mountain
        } else if lon < -87.52 {
            Timezone::Central
        } else {
            Timezone::Eastern
        }
    }

    /// Short label used in figures ("Pacific", ...).
    pub fn label(self) -> &'static str {
        match self {
            Timezone::Pacific => "Pacific",
            Timezone::Mountain => "Mountain",
            Timezone::Central => "Central",
            Timezone::Eastern => "Eastern",
        }
    }

    /// IANA-style abbreviation in effect during the trip.
    pub fn abbreviation(self) -> &'static str {
        match self {
            Timezone::Pacific => "PDT",
            Timezone::Mountain => "MDT",
            Timezone::Central => "CDT",
            Timezone::Eastern => "EDT",
        }
    }
}

impl fmt::Display for Timezone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_match_august_2022() {
        assert_eq!(Timezone::Pacific.utc_offset_hours(), -7);
        assert_eq!(Timezone::Mountain.utc_offset_hours(), -6);
        assert_eq!(Timezone::Central.utc_offset_hours(), -5);
        assert_eq!(Timezone::Eastern.utc_offset_hours(), -4);
    }

    #[test]
    fn city_longitudes_classify_correctly() {
        assert_eq!(Timezone::from_longitude(-118.24), Timezone::Pacific); // LA
        assert_eq!(Timezone::from_longitude(-115.14), Timezone::Pacific); // Las Vegas
        assert_eq!(Timezone::from_longitude(-111.89), Timezone::Mountain); // SLC
        assert_eq!(Timezone::from_longitude(-104.99), Timezone::Mountain); // Denver
        assert_eq!(Timezone::from_longitude(-95.94), Timezone::Central); // Omaha
        assert_eq!(Timezone::from_longitude(-87.63), Timezone::Central); // Chicago
        assert_eq!(Timezone::from_longitude(-86.16), Timezone::Eastern); // Indy
        assert_eq!(Timezone::from_longitude(-71.06), Timezone::Eastern); // Boston
    }

    #[test]
    fn eastern_offset_zero_from_itself() {
        assert_eq!(Timezone::Eastern.offset_from_eastern_hours(), 0);
        assert_eq!(Timezone::Pacific.offset_from_eastern_hours(), -3);
    }

    #[test]
    fn ordering_is_west_to_east() {
        let mut sorted = Timezone::ALL;
        sorted.sort();
        assert_eq!(sorted, Timezone::ALL);
    }
}
