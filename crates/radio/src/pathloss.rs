//! Log-distance path loss with band- and clutter-dependent exponents.
//!
//! `PL(d) = FSPL(1 m) + 10·n·log10(d) + clutter`, the standard log-distance
//! model. The exponent `n` grows with clutter (urban canyons) and is higher
//! for mmWave beyond its LOS range because blockage dominates.

use crate::band::Band;

/// A log-distance path-loss model for one band in one clutter environment.
#[derive(Debug, Clone, Copy)]
pub struct PathLossModel {
    band: Band,
    /// Path-loss exponent.
    exponent: f64,
    /// Additional fixed clutter loss, dB.
    clutter_db: f64,
}

impl PathLossModel {
    /// Build a model for `band` with a clutter factor in `[0, 1]`
    /// (0 = open rural, 1 = dense urban core).
    pub fn new(band: Band, clutter: f64) -> Self {
        let clutter = clutter.clamp(0.0, 1.0);
        // Exponent 2.1 (near free space, rural low band) to 3.6 (urban).
        // mmWave gets an extra blockage penalty in clutter.
        let base_exp = 2.1 + 1.5 * clutter;
        let exponent = if band.is_mmwave() {
            base_exp + 0.5 * clutter
        } else {
            base_exp
        };
        let clutter_db = if band.is_mmwave() {
            6.0 * clutter
        } else {
            3.0 * clutter
        };
        PathLossModel {
            band,
            exponent,
            clutter_db,
        }
    }

    /// Path loss at distance `d_m` meters, dB. Distances below 1 m clamp to
    /// the 1 m reference.
    pub fn loss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(1.0);
        self.band.fspl_1m_db() + 10.0 * self.exponent * d.log10() + self.clutter_db
    }

    /// The path-loss exponent in use.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_monotone_in_distance() {
        let m = PathLossModel::new(Band::new(1_900.0), 0.5);
        let mut last = 0.0;
        for d in [1.0, 10.0, 100.0, 1_000.0, 10_000.0] {
            let l = m.loss_db(d);
            assert!(l > last);
            last = l;
        }
    }

    #[test]
    fn clamps_below_reference() {
        let m = PathLossModel::new(Band::new(1_900.0), 0.0);
        assert_eq!(m.loss_db(0.1), m.loss_db(1.0));
    }

    #[test]
    fn mmwave_lossier_than_midband_at_same_distance() {
        let mm = PathLossModel::new(Band::new(28_000.0), 0.8);
        let mid = PathLossModel::new(Band::new(2_600.0), 0.8);
        assert!(mm.loss_db(200.0) > mid.loss_db(200.0) + 15.0);
    }

    #[test]
    fn urban_lossier_than_rural() {
        let b = Band::new(1_900.0);
        let urban = PathLossModel::new(b, 1.0);
        let rural = PathLossModel::new(b, 0.0);
        assert!(urban.loss_db(2_000.0) > rural.loss_db(2_000.0) + 10.0);
    }

    #[test]
    fn plausible_macro_cell_budget() {
        // A 1.9 GHz macro cell at 3 km in suburban clutter. RSRP is a
        // per-resource-element quantity: ~63 dBm channel EIRP spread over
        // ~1200 subcarriers is ~32 dBm per RE. That should land RSRP in the
        // -90..-115 dBm range typical of drive-test data.
        let m = PathLossModel::new(Band::new(1_900.0), 0.4);
        let rsrp = 32.0 - m.loss_db(3_000.0);
        assert!((-120.0..-85.0).contains(&rsrp), "rsrp = {rsrp}");
    }
}
