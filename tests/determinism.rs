//! Reproducibility: a campaign is a pure function of (config, seed).

use wheels::campaign::{Campaign, CampaignConfig};
use wheels::xcal::database::ConsolidatedDb;

fn mini(seed: u64) -> ConsolidatedDb {
    let mut cfg = CampaignConfig::quick_network_only(seed);
    cfg.scale = 0.01;
    cfg.run_static = false;
    cfg.passive_tick_s = 30.0;
    Campaign::new(cfg).run()
}

#[test]
fn same_seed_same_dataset() {
    let a = mini(77);
    let b = mini(77);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.op, y.op);
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.start_s, y.start_s);
        assert_eq!(x.kpi.len(), y.kpi.len());
        assert_eq!(x.handovers.len(), y.handovers.len());
        for (ka, kb) in x.kpi.iter().zip(&y.kpi) {
            assert_eq!(ka.tput_mbps, kb.tput_mbps);
            assert_eq!(ka.rsrp_dbm, kb.rsrp_dbm);
            assert_eq!(ka.cell, kb.cell);
        }
        for (ha, hb) in x.handovers.iter().zip(&y.handovers) {
            assert_eq!(ha.time_s, hb.time_s);
            assert_eq!(ha.duration_ms, hb.duration_ms);
        }
    }
    // Passive loggers too.
    for ((opa, pa), (opb, pb)) in a.passive.iter().zip(&b.passive) {
        assert_eq!(opa, opb);
        assert_eq!(pa.cell_changes(), pb.cell_changes());
        assert_eq!(pa.unique_cells(), pb.unique_cells());
    }
}

#[test]
fn different_seed_different_dataset() {
    let a = mini(1);
    let b = mini(2);
    // World (route length) identical; measurements differ.
    let ta: Vec<_> = a.records.iter().filter_map(|r| r.mean_tput_mbps()).collect();
    let tb: Vec<_> = b.records.iter().filter_map(|r| r.mean_tput_mbps()).collect();
    assert_ne!(ta, tb);
}

#[test]
fn json_export_is_byte_stable() {
    let a = wheels::xcal::export::to_json(&mini(9)).unwrap();
    let b = wheels::xcal::export::to_json(&mini(9)).unwrap();
    assert_eq!(a, b);
}

/// Seed sweep: every seed reproduces itself byte-for-byte, and no two
/// seeds collide on the exported dataset.
#[test]
fn seed_sweep_reproducible_and_distinct() {
    let seeds = [3u64, 17, 42, 1_000_003, u64::MAX - 5];
    let exports: Vec<String> = seeds
        .iter()
        .map(|&s| wheels::xcal::export::to_json(&mini(s)).unwrap())
        .collect();
    for (i, &seed) in seeds.iter().enumerate() {
        let again = wheels::xcal::export::to_json(&mini(seed)).unwrap();
        assert_eq!(exports[i], again, "seed {seed} not byte-identical on rerun");
    }
    for i in 0..seeds.len() {
        for j in i + 1..seeds.len() {
            assert_ne!(
                exports[i], exports[j],
                "seeds {} and {} produced identical datasets",
                seeds[i], seeds[j]
            );
        }
    }
}
