//! Property tests for the logging substrate: timestamps and the `.drm`
//! codec under arbitrary content.

use proptest::prelude::*;

use wheels_geo::region::RegionKind;
use wheels_geo::timezone::Timezone;
use wheels_radio::band::Technology;
use wheels_ran::cell::CellId;
use wheels_ran::handover::{HandoverEvent, HandoverKind};
use wheels_ran::operator::Operator;
use wheels_xcal::drm;
use wheels_xcal::kpi::KpiSample;
use wheels_xcal::logger::XcalLogger;
use wheels_xcal::timestamp::Timestamp;

fn arb_op() -> impl Strategy<Value = Operator> {
    prop_oneof![
        Just(Operator::Verizon),
        Just(Operator::TMobile),
        Just(Operator::Att)
    ]
}

fn arb_tz() -> impl Strategy<Value = Timezone> {
    (0usize..4).prop_map(|i| Timezone::ALL[i])
}

fn arb_sample() -> impl Strategy<Value = KpiSample> {
    (
        0.0f64..700_000.0,
        prop::option::of(0.0f32..3_000.0),
        0usize..5,
        0u32..5_000_000,
        (-130.0f32..-40.0, -20.0f32..45.0),
        (0u8..28, 0.0f32..0.9, 1u8..9, 0u8..4),
        (0.0f32..40.0, 0.0f64..5_711_000.0, 0usize..4, 0usize..4, any::<bool>()),
    )
        .prop_map(
            |(time_s, tput, tech_i, cell, (rsrp, sinr), (mcs, bler, ca, hos), (speed, od, reg, tz, ho))| {
                KpiSample {
                    time_s,
                    tput_mbps: tput,
                    tech: Technology::ALL[tech_i],
                    cell: CellId(cell),
                    rsrp_dbm: rsrp,
                    sinr_db: sinr,
                    mcs,
                    bler,
                    ca,
                    handovers_in_window: hos,
                    speed_mps: speed,
                    odometer_m: od,
                    region: RegionKind::ALL[reg],
                    timezone: Timezone::ALL[tz],
                    in_handover: ho,
                }
            },
        )
}

proptest! {
    #[test]
    fn timestamp_formats_roundtrip(plan_s in -3600.0f64..9.0*86_400.0, tz_i in 0usize..4) {
        // Negative plan times occur for pre-dawn Pacific stamps.
        let tz = Timezone::ALL[tz_i];
        let t = Timestamp::from_plan_s(plan_s);
        let local = Timestamp::parse_local(&t.as_local(tz).to_string(), tz).unwrap();
        prop_assert!((local.plan_s - plan_s).abs() < 0.002);
        let edt = Timestamp::parse_edt(&t.as_edt().to_string()).unwrap();
        prop_assert!((edt.plan_s - plan_s).abs() < 0.002);
    }

    #[test]
    fn cross_format_misparse_shifts_by_whole_hours(plan_s in 4.0*3600.0f64..86_400.0) {
        let t = Timestamp::from_plan_s(plan_s);
        let wrong = Timestamp::parse_edt(&t.as_utc().to_string()).unwrap();
        let shift_h = (wrong.plan_s - plan_s) / 3_600.0;
        prop_assert!((shift_h - 4.0).abs() < 1e-6);
    }

    #[test]
    fn drm_roundtrips_arbitrary_logs(
        op in arb_op(),
        tz in arb_tz(),
        start in 0.0f64..600_000.0,
        samples in prop::collection::vec(arb_sample(), 0..40),
        hos in prop::collection::vec((0.0f64..600_000.0, 0u32..100, 0u32..100, 1.0f64..500.0), 0..8),
    ) {
        let mut logger = XcalLogger::start(op, "DL", start);
        for mut s in samples.clone() {
            s.time_s = s.time_s.max(start);
            logger.log_sample(s);
        }
        for (t, from, to, dur) in hos {
            logger.log_handover(&HandoverEvent {
                time_s: t,
                from: (CellId(from), Technology::Lte),
                to: (CellId(to), Technology::Nr5gMid),
                duration_ms: dur,
                kind: HandoverKind::Up4gTo5g,
            });
        }
        let log = logger.finish(tz);
        let bytes = drm::encode(&log);
        let back = drm::decode(&bytes).unwrap();
        prop_assert_eq!(back.op, log.op);
        prop_assert_eq!(back.samples.len(), log.samples.len());
        prop_assert_eq!(back.messages.len(), log.messages.len());
        for (a, b) in back.samples.iter().zip(&log.samples) {
            prop_assert_eq!(a.cell, b.cell);
            prop_assert_eq!(a.mcs, b.mcs);
            prop_assert_eq!(a.tput_mbps, b.tput_mbps);
            prop_assert_eq!(a.tech, b.tech);
            prop_assert!((a.rsrp_dbm - b.rsrp_dbm).abs() < 1e-6);
        }
    }

    #[test]
    fn drm_rejects_random_bit_flips(
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let log = XcalLogger::start(Operator::Verizon, "UL", 1_000.0).finish(Timezone::Central);
        let mut bytes = drm::encode(&log);
        let idx = flip_at % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        // Either the checksum catches it, or (if we flipped the checksum
        // itself... still caught). decode must never panic and never
        // silently accept.
        prop_assert!(drm::decode(&bytes).is_err());
    }

    #[test]
    fn drm_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = drm::decode(&data);
    }
}
