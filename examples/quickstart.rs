//! Quickstart: run a miniature cross-country campaign and print the
//! headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wheels::analysis::figures::{fig02_coverage, fig03_static_driving, share_5g, share_hs5g};
use wheels::analysis::AnalysisIndex;
use wheels::campaign::stats::Table1;
use wheels::campaign::{Campaign, CampaignConfig};
use wheels::ran::Operator;

fn main() {
    println!("== wheels quickstart: miniature LA -> Boston campaign ==\n");
    let campaign = Campaign::new(CampaignConfig::quick(42));
    let db = campaign.run();

    let t1 = Table1::compute(&db, campaign.plan().route());
    println!("{}", t1.render());

    let ix = AnalysisIndex::build(&db);
    let coverage = fig02_coverage::compute(&ix);
    println!("Technology coverage while driving (% of miles):");
    for op in Operator::ALL {
        let shares = coverage.overall_for(op);
        println!(
            "  {:<9} 5G {:>5.1}%  (high-speed 5G {:>4.1}%)",
            op.label(),
            share_5g(shares) * 100.0,
            share_hs5g(shares) * 100.0
        );
    }

    let perf = fig03_static_driving::compute(&ix);
    println!("\nStatic vs driving downlink medians (Mbps):");
    for op in Operator::ALL {
        let p = perf.for_op(op);
        println!(
            "  {:<9} static {:>7.0}   driving {:>6.1}",
            op.label(),
            p.static_dl.median(),
            p.driving_dl.median()
        );
    }
    println!(
        "\ndriving samples below 5 Mbps: {:.0}% (paper: ~35%)",
        perf.frac_driving_below_5mbps() * 100.0
    );
    println!("\nFor every table/figure: cargo run --release -p wheels-bench --bin repro -- all");
}
