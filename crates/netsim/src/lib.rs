//! # wheels-netsim
//!
//! End-to-end network simulation for the *Cellular Networks on the Wheels*
//! replication: the measurement servers (AWS EC2 cloud instances in
//! California and Ohio, Amazon Wavelength edge servers in five cities), the
//! end-to-end RTT model, and a fluid TCP model (CUBIC, plus Reno as an
//! ablation baseline) driven by the RAN's time-varying link capacity.
//!
//! The paper's throughput tests are nuttcp with default CUBIC over a single
//! TCP connection (§5); its RTT tests are ICMP pings every 200 ms for 20 s.
//! [`bulk::BulkTransferTest`] and [`ping::RttTest`] reproduce both against
//! a [`server::Server`] chosen by [`server::ServerSelector`] exactly as the
//! paper describes (edge only for Verizon, only in the five Wavelength
//! cities).
//!
//! Design note: per the networking guides, this is a deterministic,
//! synchronous, event-/tick-driven simulator (smoltcp style) — no async
//! runtime, because the workload is CPU-bound and reproducibility is a
//! requirement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbr;
pub mod bulk;
pub mod cubic;
pub mod event;
pub mod faults;
pub mod mptcp;
pub mod ping;
pub mod reno;
pub mod rng;
pub mod rtt;
pub mod server;
pub mod tcp;

pub use bbr::Bbr;
pub use bulk::{BulkTransferTest, ThroughputSample};
pub use cubic::Cubic;
pub use event::EventQueue;
pub use faults::{Fault, FaultPlan, FaultProfile};
pub use mptcp::{MptcpMode, MultipathFlow};
pub use ping::{RttSample, RttTest};
pub use reno::Reno;
pub use rtt::RttModel;
pub use server::{Server, ServerKind, ServerSelector};
pub use tcp::{CongestionControl, FluidTcp};

/// Convert Mbps to bytes/second.
#[inline]
pub fn mbps_to_bps(mbps: f64) -> f64 {
    mbps * 1e6 / 8.0
}

/// Convert bytes/second to Mbps.
#[inline]
pub fn bps_to_mbps(bytes_per_s: f64) -> f64 {
    bytes_per_s * 8.0 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion_roundtrip() {
        for v in [0.1, 5.0, 100.0, 2_500.0] {
            assert!((bps_to_mbps(mbps_to_bps(v)) - v).abs() < 1e-9);
        }
    }
}
