//! End-to-end RTT model: wired path + radio access + stochastic spikes.
//!
//! RTT in the paper's data (Fig. 3, Fig. 4, Fig. 8) is
//!
//! * lowest with Verizon mmWave + an edge server (median 18 ms, < 40 ms),
//! * tens of ms for every technology against cloud servers,
//! * heavily right-tailed under driving (maxima of 2–3 s),
//! * higher at higher speeds for Verizon and T-Mobile (Fig. 8).
//!
//! We compose it from: great-circle fiber propagation with a routing
//! inflation factor, a per-technology radio access latency, a
//! signal-quality- and speed-conditioned heavy spike process (RLC/HARQ
//! retransmissions, scheduling stalls), and handover blanking.

use rand::rngs::SmallRng;
use rand::Rng;

use wheels_geo::coord::LatLon;
use wheels_radio::band::Technology;

use crate::server::Server;

/// Effective signal propagation speed in fiber, m/s (≈ 2/3 c).
const FIBER_MPS: f64 = 2.0e8;
/// Multiplier for routing path stretch over great-circle distance.
const ROUTE_STRETCH: f64 = 1.6;
/// Fixed core-network + peering latency, ms (round trip).
const CORE_MS: f64 = 6.0;

/// Per-technology radio access round-trip latency, ms (scheduling grants,
/// HARQ, fronthaul). Matches the ordering in Fig. 4: mmWave < mid < low ≈
/// LTE-A < LTE, with 5G-low slightly worse than LTE-A (the paper calls out
/// that LTE-A beats 5G-low on RTT for Verizon and T-Mobile).
pub fn radio_rtt_ms(tech: Technology) -> f64 {
    match tech {
        Technology::Lte => 32.0,
        Technology::LteA => 24.0,
        Technology::Nr5gLow => 28.0,
        Technology::Nr5gMid => 17.0,
        Technology::Nr5gMmWave => 8.0,
    }
}

/// The stochastic RTT model for one UE.
#[derive(Debug)]
pub struct RttModel {
    rng: SmallRng,
    /// Residual spike state: RTT spikes cluster (a bad patch lasts a few
    /// hundred ms), modelled as a decaying inflation term.
    spike_ms: f64,
    last_t_s: f64,
}

impl RttModel {
    /// Create a model with its own RNG stream.
    pub fn new(rng: SmallRng) -> Self {
        RttModel {
            rng,
            spike_ms: 0.0,
            last_t_s: f64::NEG_INFINITY,
        }
    }

    /// Wired round-trip ms between a UE position and a server.
    pub fn wired_ms(ue: LatLon, server: &Server) -> f64 {
        let d_m = ue.haversine_m(&server.pos);
        let one_way_s = d_m * ROUTE_STRETCH / FIBER_MPS;
        2.0 * one_way_s * 1_000.0 + CORE_MS
    }

    /// Sample an end-to-end RTT in ms at time `t_s`.
    ///
    /// `sinr_db` and `speed_mps` condition the spike process; `in_handover`
    /// adds the residual interruption.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_ms(
        &mut self,
        t_s: f64,
        ue: LatLon,
        server: &Server,
        tech: Technology,
        sinr_db: f64,
        speed_mps: f64,
        in_handover: bool,
    ) -> f64 {
        let dt = if self.last_t_s.is_finite() {
            (t_s - self.last_t_s).max(0.0)
        } else {
            1.0
        };
        self.last_t_s = t_s;
        // Existing spike decays with ~300 ms time constant.
        self.spike_ms *= (-dt / 0.3).exp();
        // New spike arrivals: more likely at poor SINR and higher speed.
        let quality_penalty = ((6.0 - sinr_db) / 12.0).clamp(0.0, 1.0);
        let speed_penalty = (speed_mps / 31.0).clamp(0.0, 1.0);
        let p_spike = (0.02 + 0.10 * quality_penalty + 0.05 * speed_penalty) * dt.min(1.0);
        if self.rng.gen_bool(p_spike.clamp(0.0, 1.0)) {
            // Exponential spike, occasionally extreme (RLC re-establishment).
            let mean = 90.0 + 500.0 * quality_penalty;
            let e: f64 = -(1.0 - self.rng.gen::<f64>()).ln();
            self.spike_ms += (mean * e).min(2_800.0);
        }
        let base = Self::wired_ms(ue, server) + radio_rtt_ms(tech);
        // Motion inflates the scheduling/HARQ component persistently
        // (CQI staleness, RLC retransmissions): Fig. 8's RTT-speed trend.
        let motion_ms = 28.0 * speed_penalty;
        let jitter = self.rng.gen_range(0.0..8.0);
        let ho = if in_handover { 60.0 } else { 0.0 };
        (base + motion_ms + jitter + self.spike_ms + ho).min(3_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CLOUD_OHIO, ServerKind};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn edge_boston() -> Server {
        Server {
            kind: ServerKind::Edge,
            pos: LatLon::new(42.3601, -71.0589),
            name: "Boston",
        }
    }

    #[test]
    fn radio_latency_ordering_matches_fig4() {
        assert!(radio_rtt_ms(Technology::Nr5gMmWave) < radio_rtt_ms(Technology::Nr5gMid));
        assert!(radio_rtt_ms(Technology::Nr5gMid) < radio_rtt_ms(Technology::LteA));
        assert!(radio_rtt_ms(Technology::LteA) < radio_rtt_ms(Technology::Nr5gLow));
        assert!(radio_rtt_ms(Technology::Nr5gLow) < radio_rtt_ms(Technology::Lte));
    }

    #[test]
    fn edge_mmwave_rtt_matches_paper_median() {
        // Paper: mmWave + edge median 18 ms, below 40 ms.
        let mut m = RttModel::new(rng());
        let ue = LatLon::new(42.36, -71.06);
        let mut v: Vec<f64> = (0..4_000)
            .map(|i| {
                m.sample_ms(
                    i as f64 * 0.2,
                    ue,
                    &edge_boston(),
                    Technology::Nr5gMmWave,
                    20.0,
                    1.0,
                    false,
                )
            })
            .collect();
        v.sort_by(f64::total_cmp);
        let med = v[v.len() / 2];
        assert!((10.0..32.0).contains(&med), "median {med}");
    }

    #[test]
    fn cross_country_cloud_rtt_tens_of_ms() {
        // Boston UE to the Ohio cloud: ~10 ms wired + radio.
        let ue = LatLon::new(42.36, -71.06);
        let wired = RttModel::wired_ms(ue, &CLOUD_OHIO);
        assert!((10.0..30.0).contains(&wired), "{wired}");
    }

    #[test]
    fn spikes_produce_heavy_tail() {
        let mut m = RttModel::new(rng());
        let ue = LatLon::new(41.0, -100.0);
        let mut max: f64 = 0.0;
        for i in 0..40_000 {
            let r = m.sample_ms(
                i as f64 * 0.2,
                ue,
                &CLOUD_OHIO,
                Technology::Lte,
                -2.0,
                30.0,
                false,
            );
            max = max.max(r);
        }
        // Paper: maxima of 2-3 s under driving.
        assert!(max > 800.0, "max {max}");
        assert!(max <= 3_000.0);
    }

    #[test]
    fn handover_inflates_rtt() {
        let ue = LatLon::new(41.0, -100.0);
        let mut m1 = RttModel::new(rng());
        let mut m2 = RttModel::new(rng());
        let a = m1.sample_ms(0.0, ue, &CLOUD_OHIO, Technology::LteA, 15.0, 10.0, false);
        let b = m2.sample_ms(0.0, ue, &CLOUD_OHIO, Technology::LteA, 15.0, 10.0, true);
        assert!(b > a + 30.0);
    }

    #[test]
    fn bad_signal_spikes_more_often() {
        let count_spiky = |sinr: f64| {
            let mut m = RttModel::new(rng());
            let ue = LatLon::new(41.0, -100.0);
            (0..20_000)
                .filter(|&i| {
                    m.sample_ms(i as f64 * 0.2, ue, &CLOUD_OHIO, Technology::Lte, sinr, 25.0, false)
                        > 300.0
                })
                .count()
        };
        assert!(count_spiky(-5.0) > 2 * count_spiky(25.0));
    }
}
