//! Deterministic fault injection for the measurement apparatus.
//!
//! The real campaign behind the paper was lossy: XCAL probes crash
//! mid-drive (truncating their KPI streams), measurement servers become
//! unreachable for a while, modems silently detach, and individual
//! nuttcp/ping sessions overrun their time budget and get killed. The
//! paper reports results *despite* those gaps. This module gives the
//! simulated campaign the same failure modes — but deterministically:
//! every fault decision is a pure function of `(campaign seed, unit key,
//! attempt)`, derived through the same SplitMix64 absorb chain as every
//! other stream ([`crate::rng`]), so a fault-injected campaign is exactly
//! as reproducible as a clean one, on any worker count.
//!
//! A [`FaultPlan`] answers one question per work-unit attempt: *which
//! fault, if any, strikes this attempt?* Abortive faults
//! ([`Fault::ServerOutage`], [`Fault::TimeoutOverrun`]) kill the attempt
//! before it produces data — the supervisor retries with simulated-clock
//! backoff. Degrading faults ([`Fault::ProbeCrash`],
//! [`Fault::ModemDetach`]) let the attempt complete but corrupt its
//! output, the way a dead logger or detached radio leaves holes in a real
//! dataset.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::rng::{self, DOMAIN_FAULT};

/// How hostile the simulated apparatus is.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults, ever. The injection machinery is a strict no-op: it
    /// draws no randomness and touches no data.
    #[default]
    None,
    /// Failure rates in the ballpark the paper's own campaign suffered:
    /// occasional probe crashes and aborted tests, a rare lost unit.
    Paper,
    /// A hostile world for robustness testing: roughly half of all unit
    /// attempts hit some fault, so retries, degradation and outright data
    /// loss all occur in even a small campaign.
    Harsh,
}

impl FaultProfile {
    /// All profiles, mildest first.
    pub const ALL: [FaultProfile; 3] =
        [FaultProfile::None, FaultProfile::Paper, FaultProfile::Harsh];

    /// Parse a CLI-style profile name.
    pub fn parse(s: &str) -> Option<FaultProfile> {
        match s {
            "none" | "off" => Some(FaultProfile::None),
            "paper" => Some(FaultProfile::Paper),
            "harsh" => Some(FaultProfile::Harsh),
            _ => Option::None,
        }
    }

    /// The CLI-style name.
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Paper => "paper",
            FaultProfile::Harsh => "harsh",
        }
    }

    /// Per-attempt probabilities of each fault kind, in the fixed draw
    /// order `[probe crash, server outage, modem detach, timeout]`.
    fn rates(self) -> [f64; 4] {
        match self {
            FaultProfile::None => [0.0; 4],
            FaultProfile::Paper => [0.05, 0.04, 0.04, 0.03],
            FaultProfile::Harsh => [0.16, 0.12, 0.14, 0.10],
        }
    }
}

/// One injected fault, with its deterministically drawn parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The XCAL probe dies partway through the unit: data recorded after
    /// `survive_frac` of the unit's time span is gone (records started
    /// later are lost whole; the straddling record keeps a truncated KPI
    /// stream). The attempt still "completes" — nobody notices a dead
    /// logger until post-processing.
    ProbeCrash {
        /// Fraction of the unit's span that was captured before the
        /// crash, in `[0.25, 0.95)`.
        survive_frac: f64,
    },
    /// The measurement endpoint (cloud/edge server) is unreachable for a
    /// window covering the unit: every test aborts, the attempt yields no
    /// data, and the supervisor must retry.
    ServerOutage {
        /// How long the endpoint stayed dark, simulated seconds.
        outage_s: f64,
    },
    /// The modem detaches from the network for a window in the middle of
    /// the unit: tests overlapping the window are lost whole (a detached
    /// radio aborts the session), the rest survive.
    ModemDetach {
        /// Window start, as a fraction of the unit's span, in `[0.05, 0.75)`.
        start_frac: f64,
        /// Window length, as a fraction of the unit's span, in `[0.05, 0.30)`.
        len_frac: f64,
    },
    /// The unit blows its time budget (a hung nuttcp session) and the
    /// supervisor kills it: no data, retry.
    TimeoutOverrun {
        /// How far past the budget it ran before being killed, seconds.
        overrun_s: f64,
    },
}

impl Fault {
    /// True if the fault kills the attempt outright (no shard produced),
    /// false if the attempt completes with degraded output.
    pub fn aborts_attempt(&self) -> bool {
        matches!(
            self,
            Fault::ServerOutage { .. } | Fault::TimeoutOverrun { .. }
        )
    }

    /// Short kebab-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::ProbeCrash { .. } => "probe-crash",
            Fault::ServerOutage { .. } => "server-outage",
            Fault::ModemDetach { .. } => "modem-detach",
            Fault::TimeoutOverrun { .. } => "timeout-overrun",
        }
    }
}

/// Extra key word separating the backoff-jitter stream from the
/// fault-kind stream of the same `(unit, attempt)`.
const BACKOFF_TAG: u64 = 0x4241_434B_4F46_4600; // "BACKOFF"

/// The campaign's deterministic fault schedule.
///
/// Stateless and `Copy`: any worker can ask about any `(unit, attempt)`
/// in any order and get the same answer, which is what keeps sequential
/// and parallel fault-injected runs byte-identical.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
}

impl FaultPlan {
    /// A plan for one campaign.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan { seed, profile }
    }

    /// The profile this plan injects.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// The derived seed behind one `(unit, attempt)` decision — exposed
    /// so invariant tests can check collision-freedom and seed-bit
    /// sensitivity without enumerating fault kinds.
    pub fn attempt_seed(&self, unit_words: &[u64], attempt: u32) -> u64 {
        let mut words = Vec::with_capacity(unit_words.len() + 1);
        words.extend_from_slice(unit_words);
        words.push(attempt as u64);
        rng::derive_seed(self.seed, DOMAIN_FAULT, &words)
    }

    /// Which fault (if any) strikes attempt `attempt` of the unit keyed
    /// by `unit_words`. Pure: same inputs, same answer, forever.
    pub fn fault_for(&self, unit_words: &[u64], attempt: u32) -> Option<Fault> {
        if self.profile == FaultProfile::None {
            return None;
        }
        // lint:allow(D4): attempt_seed IS the netsim::rng absorb chain
        // (DOMAIN_FAULT); this just positions a reader on that stream
        let mut r = SmallRng::seed_from_u64(self.attempt_seed(unit_words, attempt));
        let roll = r.gen::<f64>();
        let [p_crash, p_outage, p_detach, p_timeout] = self.profile.rates();
        if roll < p_crash {
            Some(Fault::ProbeCrash {
                survive_frac: 0.25 + 0.70 * r.gen::<f64>(),
            })
        } else if roll < p_crash + p_outage {
            Some(Fault::ServerOutage {
                outage_s: 30.0 + 570.0 * r.gen::<f64>(),
            })
        } else if roll < p_crash + p_outage + p_detach {
            Some(Fault::ModemDetach {
                start_frac: 0.05 + 0.70 * r.gen::<f64>(),
                len_frac: 0.05 + 0.25 * r.gen::<f64>(),
            })
        } else if roll < p_crash + p_outage + p_detach + p_timeout {
            Some(Fault::TimeoutOverrun {
                overrun_s: 10.0 + 110.0 * r.gen::<f64>(),
            })
        } else {
            None
        }
    }

    /// Simulated-clock backoff before retrying after a failed `attempt`:
    /// exponential base with deterministic jitter. This is accounting
    /// only — no thread ever sleeps — so it costs nothing at runtime but
    /// shows up in the integrity report exactly like a real scheduler's
    /// retry delay would.
    pub fn backoff_s(&self, unit_words: &[u64], attempt: u32) -> f64 {
        let mut words = Vec::with_capacity(unit_words.len() + 2);
        words.extend_from_slice(unit_words);
        words.push(attempt as u64);
        words.push(BACKOFF_TAG);
        let mut r = rng::stream(self.seed, DOMAIN_FAULT, &words);
        let base = 5.0 * f64::from(1u32 << attempt.min(6));
        base * (1.0 + 0.5 * r.gen::<f64>())
    }
}

/// In-process chaos hook for crash-safety testing: "kills the process"
/// after a configured number of durable checkpoint commits.
///
/// The supervised executor calls [`ProcessKill::on_commit`] once per
/// work-unit checkpoint record it has made durable (written + fsynced).
/// When the count reaches the kill point the executor stops scheduling
/// and the run ends as killed — the in-process analogue of a SIGKILL
/// landing right after the k-th record hit the disk. The repro binary
/// additionally converts the kill into a real nonzero process exit, so
/// CI can rehearse an actual crash + `--resume` cycle.
///
/// Deterministic in the only sense that matters for crash recovery: the
/// *set* of committed units may vary with worker count, but resume must
/// reproduce the golden bytes from **any** committed subset — which is
/// exactly the property the kill-point sweep tests pin down.
#[derive(Debug)]
pub struct ProcessKill {
    after_units: usize,
    committed: std::sync::atomic::AtomicUsize,
}

impl ProcessKill {
    /// Kill the run once `k` unit checkpoints have been committed.
    /// `k` larger than the schedule means the run completes normally.
    pub fn after_units(k: usize) -> Self {
        ProcessKill {
            after_units: k,
            committed: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Record one durable commit; `true` once the kill point is reached
    /// (and for every commit after it — dead stays dead).
    pub fn on_commit(&self) -> bool {
        let n = self
            .committed
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            + 1;
        n >= self.after_units
    }

    /// Commits recorded so far.
    pub fn committed(&self) -> usize {
        self.committed.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The configured kill point.
    pub fn kill_point(&self) -> usize {
        self.after_units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: &[u64] = &[1, 0, 3];

    #[test]
    fn none_profile_never_faults() {
        let plan = FaultPlan::new(42, FaultProfile::None);
        for attempt in 0..16 {
            for w in 0u64..32 {
                assert_eq!(plan.fault_for(&[1, w], attempt), None);
            }
        }
    }

    #[test]
    fn decisions_are_pure() {
        for profile in [FaultProfile::Paper, FaultProfile::Harsh] {
            let a = FaultPlan::new(7, profile);
            let b = FaultPlan::new(7, profile);
            for attempt in 0..8 {
                assert_eq!(a.fault_for(UNIT, attempt), b.fault_for(UNIT, attempt));
                assert_eq!(a.backoff_s(UNIT, attempt), b.backoff_s(UNIT, attempt));
            }
        }
    }

    #[test]
    fn harsh_hits_all_fault_kinds() {
        let plan = FaultPlan::new(42, FaultProfile::Harsh);
        let mut seen = std::collections::HashSet::new();
        for unit in 0u64..400 {
            if let Some(f) = plan.fault_for(&[1, unit], 0) {
                seen.insert(f.label());
            }
        }
        for label in ["probe-crash", "server-outage", "modem-detach", "timeout-overrun"] {
            assert!(seen.contains(label), "harsh profile never drew {label}");
        }
    }

    #[test]
    fn paper_is_mostly_clean() {
        let plan = FaultPlan::new(11, FaultProfile::Paper);
        let clean = (0u64..1000)
            .filter(|&u| plan.fault_for(&[2, u], 0).is_none())
            .count();
        assert!(clean > 700, "paper profile too hostile: {clean}/1000 clean");
    }

    #[test]
    fn drawn_parameters_stay_in_range() {
        let plan = FaultPlan::new(3, FaultProfile::Harsh);
        for unit in 0u64..500 {
            match plan.fault_for(&[1, unit], 1) {
                Some(Fault::ProbeCrash { survive_frac }) => {
                    assert!((0.25..0.95).contains(&survive_frac));
                }
                Some(Fault::ModemDetach { start_frac, len_frac }) => {
                    assert!((0.05..0.75).contains(&start_frac));
                    assert!((0.05..0.30).contains(&len_frac));
                }
                Some(Fault::ServerOutage { outage_s }) => {
                    assert!((30.0..600.0).contains(&outage_s));
                }
                Some(Fault::TimeoutOverrun { overrun_s }) => {
                    assert!((10.0..120.0).contains(&overrun_s));
                }
                None => {}
            }
        }
    }

    #[test]
    fn backoff_grows_and_is_bounded() {
        let plan = FaultPlan::new(5, FaultProfile::Harsh);
        let b0 = plan.backoff_s(UNIT, 0);
        let b1 = plan.backoff_s(UNIT, 1);
        let b2 = plan.backoff_s(UNIT, 2);
        assert!(b0 >= 5.0 && b0 < 7.5 + 1e-9);
        assert!(b1 > b0 / 2.0 && b2 > b1 / 2.0, "roughly exponential");
        // Capped exponent: huge attempt counts don't overflow.
        assert!(plan.backoff_s(UNIT, 1000).is_finite());
    }

    #[test]
    fn attempts_are_independent() {
        // A unit that fails attempt 0 is not doomed to fail attempt 1:
        // the per-attempt streams differ.
        let plan = FaultPlan::new(42, FaultProfile::Harsh);
        let differs = (0u64..200).any(|u| {
            plan.fault_for(&[1, u], 0).map(|f| f.label())
                != plan.fault_for(&[1, u], 1).map(|f| f.label())
        });
        assert!(differs);
    }

    #[test]
    fn process_kill_fires_at_and_after_the_kill_point() {
        let k = ProcessKill::after_units(3);
        assert!(!k.on_commit());
        assert!(!k.on_commit());
        assert!(k.on_commit(), "third commit reaches the kill point");
        assert!(k.on_commit(), "dead stays dead");
        assert_eq!(k.committed(), 4);
        assert_eq!(k.kill_point(), 3);
    }

    #[test]
    fn process_kill_zero_fires_immediately() {
        let k = ProcessKill::after_units(0);
        assert!(k.on_commit(), "kill point 0 can never commit a unit");
    }

    #[test]
    fn profile_parse_roundtrip() {
        for p in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(p.label()), Some(p));
        }
        assert_eq!(FaultProfile::parse("bogus"), None);
        assert_eq!(FaultProfile::parse("off"), Some(FaultProfile::None));
    }
}
