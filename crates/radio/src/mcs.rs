//! Modulation-and-coding-scheme selection and spectral efficiency.
//!
//! The XCAL logs report the primary cell's MCS index per 500 ms interval,
//! which the paper correlates against throughput (Table 2). We use the
//! 3GPP NR 256-QAM MCS table (TS 38.214 Table 5.1.3.1-2) efficiencies and a
//! standard ~1.26 dB/step SINR-to-MCS link adaptation map.

/// Highest MCS index (256-QAM table has 28 entries, 0..=27).
pub const MAX_MCS: u8 = 27;

/// Spectral efficiency per MCS index, bits/s/Hz per layer
/// (TS 38.214 Table 5.1.3.1-2, Qm·R/1024).
const EFFICIENCY: [f64; 28] = [
    0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.6953, 1.9141, 2.1602, 2.4063, 2.5703,
    2.7305, 3.0293, 3.3223, 3.6094, 3.9023, 4.2129, 4.5234, 4.8164, 5.1152, 5.3320, 5.5547,
    5.8906, 6.2266, 6.5703, 6.9141, 7.1602, 7.4063,
];

/// Implementation gap from Shannon capacity, dB. Real link adaptation
/// operates ~3 dB from the bound.
const SHANNON_GAP_DB: f64 = 3.0;

/// Select an MCS index for a wideband SINR estimate (dB).
///
/// Picks the largest MCS whose spectral efficiency fits under the Shannon
/// bound at `sinr − 3 dB` — i.e. ideal link adaptation with a 3 dB
/// implementation gap. This guarantees the resulting capacity never exceeds
/// physics, which linear dB-per-step maps violate at low SINR.
pub fn mcs_from_sinr(sinr_db: f64) -> u8 {
    mcs_from_bound(gapped_shannon_bound(sinr_db))
}

/// The gapped Shannon bound at `sinr_db`, bits/s/Hz: the spectral
/// efficiency ceiling both MCS selection and capacity clamp against.
/// Exposed so callers needing both can compute the transcendentals once.
pub fn gapped_shannon_bound(sinr_db: f64) -> f64 {
    let snr_lin = 10f64.powf((sinr_db - SHANNON_GAP_DB) / 10.0);
    (1.0 + snr_lin).log2()
}

/// Largest MCS whose spectral efficiency fits under a precomputed gapped
/// Shannon bound (see [`gapped_shannon_bound`]).
pub fn mcs_from_bound(bound: f64) -> u8 {
    // EFFICIENCY is strictly increasing, so the last entry `<= bound` sits
    // just before the partition point.
    match EFFICIENCY.partition_point(|&e| e <= bound) {
        0 => 0,
        i => (i - 1) as u8,
    }
}

/// Spectral efficiency of an MCS index, bits/s/Hz per spatial layer.
///
/// # Panics
/// Panics if `mcs > MAX_MCS` — MCS indices are produced by
/// [`mcs_from_sinr`], so an out-of-range index is a programming error.
pub fn spectral_efficiency(mcs: u8) -> f64 {
    EFFICIENCY[mcs as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_monotone() {
        for m in 1..=MAX_MCS {
            assert!(spectral_efficiency(m) > spectral_efficiency(m - 1));
        }
    }

    #[test]
    fn mcs_monotone_in_sinr() {
        let mut last = 0;
        for s in -15..35 {
            let m = mcs_from_sinr(s as f64);
            assert!(m >= last);
            last = m;
        }
    }

    #[test]
    fn mcs_clamps() {
        assert_eq!(mcs_from_sinr(-40.0), 0);
        assert_eq!(mcs_from_sinr(60.0), MAX_MCS);
    }

    #[test]
    fn midrange_sinr_gives_midrange_mcs() {
        let m = mcs_from_sinr(10.0);
        assert!((10..=17).contains(&m), "{m}");
    }

    #[test]
    fn peak_efficiency_is_256qam() {
        assert!((spectral_efficiency(MAX_MCS) - 7.4063).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn out_of_range_mcs_panics() {
        let _ = spectral_efficiency(MAX_MCS + 1);
    }
}
