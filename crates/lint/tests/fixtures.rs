//! Fixture-corpus tests: every rule D1–D5 fires exactly on its `bad/`
//! file (with the expected rule ID and nothing else), and every
//! `allowed/` file lints clean. The same corpus backs the runtime
//! `wheels-lint --fixtures` self-check; this test pins it into
//! `cargo test`.

use std::path::{Path, PathBuf};

use wheels_lint::{check_fixtures, lint_source, Rule};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn lint_fixture(rel: &str) -> Vec<wheels_lint::Finding> {
    let path = fixtures_dir().join(rel);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    lint_source(&path, &src)
}

#[test]
fn every_rule_has_a_bad_fixture() {
    for rule in Rule::ALL {
        let prefix = rule.id().to_lowercase();
        let dir = fixtures_dir().join("bad");
        let found = std::fs::read_dir(&dir)
            .expect("bad/ exists")
            .filter_map(|e| e.ok())
            .any(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("{prefix}_"))
            });
        assert!(found, "no bad/ fixture for rule {rule}");
    }
}

#[test]
fn bad_fixtures_fire_their_rule_and_only_it() {
    for rule in Rule::ALL {
        let dir = fixtures_dir().join("bad");
        for entry in std::fs::read_dir(&dir).expect("bad/ exists") {
            let path = entry.expect("entry").path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if !name.starts_with(&format!("{}_", rule.id().to_lowercase())) {
                continue;
            }
            let src = std::fs::read_to_string(&path).expect("readable");
            let findings = lint_source(&path, &src);
            let unsuppressed: Vec<_> =
                findings.iter().filter(|f| f.is_unsuppressed()).collect();
            assert!(
                !unsuppressed.is_empty(),
                "{name}: expected {rule} findings, got none"
            );
            for f in &unsuppressed {
                assert_eq!(
                    f.rule, rule,
                    "{name}: stray {} at line {}: {}",
                    f.rule, f.line, f.message
                );
            }
        }
    }
}

#[test]
fn bad_d1_fixture_fires_in_every_sink() {
    // One finding per ordering sink in the file: sort_by, the wrapped
    // sort_by, max_by, min_by, binary_search_by.
    let findings = lint_fixture("bad/d1_sort_partial_cmp.rs");
    assert_eq!(findings.len(), 5, "{findings:#?}");
}

#[test]
fn allowed_fixtures_are_clean() {
    let dir = fixtures_dir().join("allowed");
    for entry in std::fs::read_dir(&dir).expect("allowed/ exists") {
        let path = entry.expect("entry").path();
        let src = std::fs::read_to_string(&path).expect("readable");
        let findings = lint_source(&path, &src);
        let bad: Vec<_> = findings.iter().filter(|f| f.is_unsuppressed()).collect();
        assert!(
            bad.is_empty(),
            "{}: unexpected findings: {bad:#?}",
            path.display()
        );
    }
}

#[test]
fn allowed_suppressions_are_recorded_not_dropped() {
    // The allowed D4 fixture still *detects* the bare constructor — it
    // is suppressed with a reason, not invisible.
    let findings = lint_fixture("allowed/d4_derived_streams.rs");
    let suppressed: Vec<_> = findings.iter().filter(|f| !f.is_unsuppressed()).collect();
    assert_eq!(suppressed.len(), 1, "{findings:#?}");
    assert!(suppressed[0]
        .suppressed
        .as_deref()
        .unwrap()
        .contains("pre-derived"));
}

#[test]
fn runtime_self_check_agrees() {
    let results = check_fixtures(&fixtures_dir()).expect("fixtures readable");
    assert!(results.len() >= 10, "corpus went missing? {results:#?}");
    let failed: Vec<_> = results.iter().filter(|r| r.error.is_some()).collect();
    assert!(failed.is_empty(), "{failed:#?}");
}
