//! Offline stand-in for `criterion`.
//!
//! Implements the API slice the bench crate uses — `Criterion`,
//! `benchmark_group`/`sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with the same CLI contract
//! as the real harness: `cargo bench` passes `--bench`, which enables timed
//! runs (adaptive batch sizing to ~5 ms per sample, median-of-samples
//! report); `cargo test` runs each benchmark body exactly once as a smoke
//! test. A positional argument filters benchmarks by substring.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if a.starts_with('-') => {} // ignore harness flags we don't model
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { bench_mode, filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark under the default sample count.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Start a named group whose benchmarks share settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    fn run<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher {
            bench_mode: self.bench_mode,
            sample_size,
            median_s: None,
        };
        f(&mut b);
        match b.median_s {
            Some(t) if self.bench_mode => println!("{name:<40} {}", fmt_time(t)),
            _ => println!("{name:<40} ok (smoke)"),
        }
    }
}

/// Benchmark group mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size;
        self.criterion.run(&full, sample_size, f);
        self
    }

    /// End the group (report output is already flushed per-benchmark).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    median_s: Option<f64>,
}

impl Bencher {
    /// Time `f`, or run it once when in smoke-test mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            black_box(f());
            return;
        }
        // Calibrate a batch size that runs ~5 ms so per-iteration noise and
        // timer granularity wash out, then collect `sample_size` samples.
        let target = Duration::from_millis(5);
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if t0.elapsed() >= target || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.median_s = Some(samples[samples.len() / 2]);
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            bench_mode: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_times_and_filters() {
        let mut c = Criterion {
            bench_mode: true,
            filter: Some("hit".into()),
        };
        let mut miss_runs = 0u64;
        c.bench_function("other", |b| b.iter(|| miss_runs += 1));
        assert_eq!(miss_runs, 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("hit", |b| b.iter(|| black_box(2u64.pow(10))));
        g.finish();
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
