//! Fig. 6: operator-wise throughput difference for tests done in parallel.
//!
//! The three phones run the round-robin simultaneously, so tests of the
//! same kind with the same start time are concurrent. For each operator
//! pair we compute per-500 ms throughput differences and break them into
//! technology bins: HT = high-throughput (5G mid/mmWave), LT = everything
//! else (§5.4).

use std::collections::BTreeMap;

use wheels_ran::operator::Operator;
use wheels_ran::Direction;

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};

/// Technology bin of a concurrent sample pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TechBin {
    /// Both operators on high-throughput technologies.
    HtHt,
    /// First operator HT, second LT.
    HtLt,
    /// First operator LT, second HT.
    LtHt,
    /// Both on low-throughput technologies.
    LtLt,
}

impl TechBin {
    /// All bins in the paper's order.
    pub const ALL: [TechBin; 4] = [TechBin::HtHt, TechBin::HtLt, TechBin::LtHt, TechBin::LtLt];

    /// Label.
    pub fn label(self) -> &'static str {
        match self {
            TechBin::HtHt => "HT-HT",
            TechBin::HtLt => "HT-LT",
            TechBin::LtHt => "LT-HT",
            TechBin::LtLt => "LT-LT",
        }
    }
}

/// The operator pairs in the paper's presentation order.
pub const PAIRS: [(Operator, Operator); 3] = [
    (Operator::Verizon, Operator::TMobile),
    (Operator::TMobile, Operator::Att),
    (Operator::Att, Operator::Verizon),
];

/// Cyclically adjacent operator pairs of a panel: each operator against
/// the next, wrapping around. For the paper panel this reproduces
/// [`PAIRS`]; a two-operator panel yields the single pair.
pub fn panel_pairs(ops: &[Operator]) -> Vec<(Operator, Operator)> {
    match ops.len() {
        0 | 1 => Vec::new(),
        2 => vec![(ops[0], ops[1])],
        n => (0..n).map(|i| (ops[i], ops[(i + 1) % n])).collect(),
    }
}

/// Results for one (pair, direction).
#[derive(Debug, Clone)]
pub struct PairDiff {
    /// The two operators (diff = first − second).
    pub pair: (Operator, Operator),
    /// Direction.
    pub dir: Direction,
    /// All concurrent throughput differences, Mbps.
    pub all: Ecdf,
    /// Differences per technology bin.
    pub by_bin: Vec<(TechBin, Ecdf)>,
}

impl PairDiff {
    /// Fraction of samples in each bin.
    pub fn bin_fractions(&self) -> Vec<(TechBin, f64)> {
        let total: usize = self.by_bin.iter().map(|(_, e)| e.len()).sum();
        self.by_bin
            .iter()
            .map(|(b, e)| (*b, e.len() as f64 / total.max(1) as f64))
            .collect()
    }
}

/// Fig. 6 data.
#[derive(Debug, Clone)]
pub struct OperatorDiversity {
    /// One entry per (pair, direction).
    pub diffs: Vec<PairDiff>,
}

/// Compute Fig. 6 from the index's concurrent-test pairing maps.
pub fn compute(ix: &AnalysisIndex<'_>) -> OperatorDiversity {
    let mut diffs = Vec::new();
    for dir in Direction::BOTH {
        let by_time = ix.concurrent_map(dir);
        for pair in panel_pairs(ix.ops()) {
            let mut all = Vec::new();
            let mut bins: BTreeMap<TechBin, Vec<f64>> = BTreeMap::new();
            for ((op, t), &ra) in by_time {
                if *op != pair.0 {
                    continue;
                }
                let Some(&rb) = by_time.get(&(pair.1, *t)) else {
                    continue;
                };
                let (ra, rb) = (ix.record(ra), ix.record(rb));
                for (ka, kb) in ra.kpi.iter().zip(rb.kpi.iter()) {
                    let (Some(ta), Some(tb)) = (ka.tput_mbps, kb.tput_mbps) else {
                        continue;
                    };
                    let d = ta as f64 - tb as f64;
                    all.push(d);
                    let bin = match (ka.tech.is_high_speed(), kb.tech.is_high_speed()) {
                        (true, true) => TechBin::HtHt,
                        (true, false) => TechBin::HtLt,
                        (false, true) => TechBin::LtHt,
                        (false, false) => TechBin::LtLt,
                    };
                    bins.entry(bin).or_default().push(d);
                }
            }
            diffs.push(PairDiff {
                pair,
                dir,
                all: Ecdf::new(all),
                by_bin: TechBin::ALL
                    .iter()
                    .map(|&b| (b, Ecdf::new(bins.remove(&b).unwrap_or_default())))
                    .collect(),
            });
        }
    }
    OperatorDiversity { diffs }
}

impl OperatorDiversity {
    /// Look up one (pair, direction).
    pub fn get(&self, pair: (Operator, Operator), dir: Direction) -> &PairDiff {
        self.diffs
            .iter()
            .find(|d| d.pair == pair && d.dir == dir)
            .expect("all combos computed")
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 6 — operator-pair throughput differences (Mbps)");
        out.push('\n');
        for d in &self.diffs {
            let label = format!(
                "{}-{} {}",
                d.pair.0.code(),
                d.pair.1.code(),
                d.dir.label()
            );
            out.push_str(&cdf_row(&label, &d.all));
            out.push('\n');
            for (bin, frac) in d.bin_fractions() {
                out.push_str(&format!("    {}: {:.1}% of samples", bin.label(), frac * 100.0));
                let e = &d.by_bin.iter().find(|(b, _)| *b == bin).expect("bin exists").1;
                if !e.is_empty() {
                    out.push_str(&format!(
                        " (median diff {:+.1}, first-op wins {:.0}%)",
                        e.median(),
                        (1.0 - e.frac_below(0.0)) * 100.0
                    ));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn concurrent_pairs_exist() {
        let f = compute(small_ix());
        for d in &f.diffs {
            assert!(
                d.all.len() > 30,
                "{:?} {:?}: only {} concurrent samples",
                d.pair,
                d.dir,
                d.all.len()
            );
        }
    }

    #[test]
    fn htht_bin_is_rare() {
        // §5.4: the HT-HT bin contributes 0.3-10 % of samples.
        let f = compute(small_ix());
        let d = f.get((Operator::Att, Operator::Verizon), Direction::Uplink);
        let htht = d
            .bin_fractions()
            .into_iter()
            .find(|(b, _)| *b == TechBin::HtHt)
            .unwrap()
            .1;
        assert!(htht < 0.25, "HT-HT fraction {htht}");
    }

    #[test]
    fn diversity_spans_zero() {
        // Performance at a location is diverse: differences take both
        // signs (the multi-connectivity motivation).
        let f = compute(small_ix());
        for d in &f.diffs {
            if d.all.len() < 100 {
                continue;
            }
            let below = d.all.frac_below(0.0);
            assert!(
                (0.10..0.90).contains(&below),
                "{:?} {:?}: one-sided ({below})",
                d.pair,
                d.dir
            );
        }
    }

    #[test]
    fn ht_side_usually_wins_downlink() {
        // When one op is HT and the other LT in DL, the HT side should
        // win most (but not all — §5.4's interesting exception) samples.
        let f = compute(small_ix());
        let d = f.get((Operator::Verizon, Operator::TMobile), Direction::Downlink);
        let htlt = &d.by_bin.iter().find(|(b, _)| *b == TechBin::HtLt).unwrap().1;
        if htlt.len() > 50 {
            let win = 1.0 - htlt.frac_below(0.0);
            assert!(win > 0.5, "HT first-op win rate {win}");
        }
    }
}
