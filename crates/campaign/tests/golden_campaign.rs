//! Golden campaign digests: the hot-path regression tripwire.
//!
//! The campaign inner loop is under continuous optimization, and every
//! transformation there must be a *pure* speedup — same exported bytes,
//! faster. ci.sh proves that against a pre-refactor baseline binary, but
//! that gate only runs in CI; this test pins a digest of the smoke-scale
//! export at two seeds so a behavior change is caught at `cargo test`
//! speed, pointing at the exact seed that moved.
//!
//! When a change is *intended* to alter output (a model change, not an
//! optimization), refresh the pins with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p wheels-campaign --test golden_campaign
//! ```
//!
//! and say so in the commit message — a digest refresh in an
//! "optimization" commit is a red flag by construction.

use std::fmt::Write as _;
use std::path::PathBuf;

use wheels_campaign::{Campaign, CampaignConfig};

const SEEDS: [u64; 2] = [11, 42];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/smoke_digests.txt")
}

/// Smoke-scale config, mirroring `ReproScale::Smoke` in `wheels-bench`
/// (which depends on this crate, so the constants are restated here; the
/// ci.sh byte gate runs the real binary and keeps them honest).
fn smoke_config(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::full(seed);
    cfg.scale = 0.02;
    cfg.passive_tick_s = 10.0;
    cfg
}

/// FNV-1a over the export bytes: dependency-free and stable across
/// platforms — digest equality here means byte equality of the export.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn current_digests() -> String {
    let mut out = String::new();
    for seed in SEEDS {
        let campaign = Campaign::new(smoke_config(seed));
        let db = campaign.run();
        let json = wheels_xcal::export::to_json(&db).expect("export serializes");
        writeln!(out, "{seed} {:016x}", fnv1a(json.as_bytes())).unwrap();
    }
    out
}

#[test]
fn smoke_export_digests_match_golden() {
    let got = current_digests();
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "smoke export digests diverged from {} — if this change is an \
         intended output change, refresh with GOLDEN_REGEN=1; if it is an \
         optimization, it is not pure",
        path.display()
    );
}
