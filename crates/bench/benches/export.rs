//! Export-pipeline benchmarks.
//!
//! The dataset export is the dominant post-campaign phase (the paper
//! publishes its dataset, so this is a first-class artifact, not a debug
//! dump). These benches pin the three layers the streaming serializer
//! rebuilt: whole-database `to_json` (streamed) against the historical
//! Value-tree path, the sharded `to_json_parts` fan-out, and the CSV
//! writer. The ci.sh bench stage records the end-to-end number
//! (`export_s` in BENCH_campaign.json); these isolate where it goes.
//!
//! Run with `cargo bench --bench export`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use serde::Serialize;
use wheels_bench::{run_campaign, ReproScale};
use wheels_xcal::database::ConsolidatedDb;
use wheels_xcal::export;

/// One smoke-scale database, shared across every bench in the group
/// (campaign setup dwarfs any single measurement otherwise).
fn smoke_db() -> ConsolidatedDb {
    let (_campaign, db) = run_campaign(ReproScale::Smoke, 11);
    db
}

fn benches(c: &mut Criterion) {
    let db = smoke_db();
    // These iterations serialize ~50 MB each; a small sample count keeps
    // the group's wall time sane without losing the ~10x signal.
    let mut g = c.benchmark_group("export");
    g.sample_size(10);

    // The streamed serializer: derive-generated `stream` emission straight
    // into one buffer. This is what `repro --export` runs.
    g.bench_function("to_json_streamed_smoke", |b| {
        b.iter(|| black_box(export::to_json(&db).expect("database serializes").len()))
    });

    // The historical tree path: lower to a `Value` tree, then pretty-print
    // it. Kept alive for hand-written `Serialize` impls, and benchmarked so
    // the streamed path's advantage stays measured, not asserted.
    g.bench_function("to_json_tree_smoke", |b| {
        b.iter(|| {
            let mut out = String::new();
            serde_json::write_value(&db.to_value(), Some(2), 0, &mut out);
            black_box(out.len())
        })
    });

    // The sharded fragment fan-out (byte-identity is proven by tests;
    // this measures the slot/scope overhead and any parallel win).
    g.bench_function("to_json_parts_smoke_j1", |b| {
        b.iter(|| {
            let parts = export::to_json_parts(&db, 1);
            black_box(parts.iter().map(String::len).sum::<usize>())
        })
    });
    g.bench_function("to_json_parts_smoke_j4", |b| {
        b.iter(|| {
            let parts = export::to_json_parts(&db, 4);
            black_box(parts.iter().map(String::len).sum::<usize>())
        })
    });

    // The CSV throughput-sample export (buffered writer, reused row buffer).
    g.bench_function("write_tput_csv_smoke", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1 << 20);
            export::write_tput_csv(&db, &mut buf).expect("csv write");
            black_box(buf.len())
        })
    });
    g.finish();
}

criterion_group!(export_benches, benches);
criterion_main!(export_benches);
