//! The Steam-Remote-Play-style bitrate adapter.
//!
//! §E.1: *"the maximum target value that can be set by the bitrate adapter
//! is 100 Mbps"*. The adapter tracks an EWMA capacity estimate, targets a
//! conservative fraction of it, backs off multiplicatively when the
//! encoder queue is non-empty, and probes upward slowly when the channel
//! has headroom.

/// Hard cap on the target bitrate, Mbps (§E.1).
pub const MAX_BITRATE_MBPS: f64 = 100.0;
/// Floor: the encoder can't go below this and still produce video.
pub const MIN_BITRATE_MBPS: f64 = 1.0;

/// EWMA-driven AIMD bitrate adapter.
#[derive(Debug, Clone, Copy)]
pub struct BitrateAdapter {
    est_mbps: f64,
    bitrate_mbps: f64,
}

impl Default for BitrateAdapter {
    fn default() -> Self {
        BitrateAdapter {
            est_mbps: 10.0,
            bitrate_mbps: 10.0,
        }
    }
}

impl BitrateAdapter {
    /// One adaptation step: observe channel capacity and whether the send
    /// queue is backed up; returns the new target bitrate (Mbps).
    pub fn update(&mut self, cap_mbps: f64, queue_backed_up: bool) -> f64 {
        self.est_mbps = 0.8 * self.est_mbps + 0.2 * cap_mbps;
        if queue_backed_up {
            // Multiplicative decrease below the estimate.
            self.bitrate_mbps = (self.est_mbps * 0.7).min(self.bitrate_mbps * 0.8);
        } else if self.bitrate_mbps < self.est_mbps * 0.85 {
            // Additive probe towards the headroom.
            self.bitrate_mbps += (self.est_mbps * 0.85 - self.bitrate_mbps) * 0.3;
        }
        self.bitrate_mbps = self.bitrate_mbps.clamp(MIN_BITRATE_MBPS, MAX_BITRATE_MBPS);
        self.bitrate_mbps
    }

    /// Current capacity estimate, Mbps.
    pub fn estimate_mbps(&self) -> f64 {
        self.est_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_cap_on_fat_channel() {
        let mut a = BitrateAdapter::default();
        let mut b = 0.0;
        for _ in 0..200 {
            b = a.update(500.0, false);
        }
        assert!((b - MAX_BITRATE_MBPS).abs() < 1e-6, "{b}");
    }

    #[test]
    fn settles_below_capacity_on_thin_channel() {
        let mut a = BitrateAdapter::default();
        let mut b = 0.0;
        for _ in 0..200 {
            b = a.update(20.0, false);
        }
        assert!((12.0..20.0).contains(&b), "{b}");
    }

    #[test]
    fn backs_off_when_queued() {
        let mut a = BitrateAdapter::default();
        for _ in 0..100 {
            a.update(50.0, false);
        }
        let before = a.bitrate_mbps;
        a.update(50.0, true);
        assert!(a.bitrate_mbps < before);
    }

    #[test]
    fn never_below_floor() {
        let mut a = BitrateAdapter::default();
        for _ in 0..100 {
            a.update(0.0, true);
        }
        assert!(a.bitrate_mbps >= MIN_BITRATE_MBPS);
    }
}
