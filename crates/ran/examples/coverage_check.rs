//! Calibration tool: distance-weighted technology shares and raw link
//! capacities under a continuous DL backlog, per operator.
//!
//! Used to tune the deployment profiles in `wheels_ran::deployment`
//! against the paper's Fig. 2a targets (T-Mobile ~68 % 5G / 38 %
//! high-speed; Verizon and AT&T ~20 % 5G; AT&T ~3 % high-speed).
//!
//! ```text
//! cargo run --release -p wheels-ran --example coverage_check
//! ```
use std::sync::Arc;
use wheels_geo::trip::DrivePlan;
use wheels_radio::band::Technology;
use wheels_ran::deployment::build_all;
use wheels_ran::policy::TrafficDemand;
use wheels_ran::ue::{UeParams, UeRadio};
use wheels_ran::{Direction, Operator};

fn main() {
    let plan = DrivePlan::cross_country(11);
    let dbs = build_all(plan.route(), 11);
    for (i, op) in Operator::ALL.iter().enumerate() {
        let db = Arc::new(dbs[i].clone());
        let mut ue = UeRadio::new(*op, db, UeParams::default(), 42 + i as u64);
        let mut counts = [0usize; 6];
        let mut dl_caps = Vec::new();
        let mut ul_caps = Vec::new();
        for day in plan.days() {
            let mut t = day.start_time_s as f64;
            while t < day.end_time_s as f64 {
                let s = ue.step(t, &plan.state_at(t), TrafficDemand::Backlog(Direction::Downlink));
                let idx = Technology::ALL.iter().position(|&x| x == s.tech).unwrap();
                let meters = (s.speed_mps * 2.0) as usize; // distance weight
                if s.outage { counts[5] += meters; } else { counts[idx] += meters; }
                dl_caps.push(s.cap_dl_mbps);
                ul_caps.push(s.cap_ul_mbps);
                t += 2.0;
            }
        }
        let n: usize = counts.iter().sum();
        print!("{:9}", op.label());
        for (j, tech) in Technology::ALL.iter().enumerate() {
            print!(" {}={:5.1}%", tech.label(), 100.0 * counts[j] as f64 / n as f64);
        }
        println!(" outage={:4.1}%", 100.0*counts[5] as f64 / n as f64);
        dl_caps.sort_by(f64::total_cmp);
        ul_caps.sort_by(f64::total_cmp);
        let q = |v: &Vec<f64>, p: f64| v[(v.len() as f64 * p) as usize];
        println!("   DL cap: p25={:6.1} med={:6.1} p75={:6.1} p95={:7.1} max={:7.1} | <5Mbps {:4.1}%",
            q(&dl_caps,0.25), q(&dl_caps,0.5), q(&dl_caps,0.75), q(&dl_caps,0.95), dl_caps.last().unwrap(),
            100.0*dl_caps.iter().filter(|&&c| c<5.0).count() as f64 / dl_caps.len() as f64);
        println!("   UL cap: p25={:6.1} med={:6.1} p75={:6.1} p95={:7.1} max={:7.1}",
            q(&ul_caps,0.25), q(&ul_caps,0.5), q(&ul_caps,0.75), q(&ul_caps,0.95), ul_caps.last().unwrap());
    }
}
