// The one legitimate raw create: the staging file inside an atomic-write
// helper, fsynced and renamed before anyone can observe it. Reads and
// directory operations are not flagged at all.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        // lint:allow(D6): staging file — fsynced and renamed before visible
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

pub fn load(path: &Path) -> std::io::Result<String> {
    fs::create_dir_all(path.parent().unwrap_or(Path::new(".")))?;
    fs::read_to_string(path)
}
