//! Handover deep-dive (§6): rates, durations, and throughput impact.
//!
//! Runs a network-only campaign and prints Fig. 11/12-style statistics,
//! including the ΔT₁/ΔT₂ decomposition around each handover.
//!
//! ```text
//! cargo run --release --example handover_study
//! ```

use wheels::analysis::figures::{fig11_handovers, fig12_ho_impact};
use wheels::analysis::AnalysisIndex;
use wheels::campaign::{Campaign, CampaignConfig};
use wheels::ran::{Direction, Operator};

fn main() {
    println!("== handover study (Fig. 11 / Fig. 12) ==\n");
    let mut cfg = CampaignConfig::quick_network_only(11);
    cfg.scale = 0.15;
    cfg.run_static = false;
    let db = Campaign::new(cfg).run();

    let ix = AnalysisIndex::build(&db);
    let stats = fig11_handovers::compute(&ix);
    println!("Handovers per mile (driving throughput tests):");
    for op in Operator::ALL {
        for dir in Direction::BOTH {
            let e = stats.per_mile_for(op, dir);
            if e.is_empty() {
                continue;
            }
            println!(
                "  {:<9} {}: median {:.1}, p75 {:.1}, max {:.1}",
                op.label(),
                dir.label(),
                e.median(),
                e.percentile(75.0),
                e.max()
            );
        }
    }

    println!("\nHandover interruption (ms):");
    for op in Operator::ALL {
        let e = stats.duration_for(op, Direction::Downlink);
        if e.is_empty() {
            continue;
        }
        println!(
            "  {:<9} median {:.0} ms, p75 {:.0} ms (paper: 53/76/58 and 73/107/74)",
            op.label(),
            e.median(),
            e.percentile(75.0)
        );
    }

    let impact = fig12_ho_impact::compute(&ix);
    println!("\nThroughput impact of a handover:");
    for op in Operator::ALL {
        let t1 = impact.t1_for(op, Direction::Downlink);
        let t2 = impact.t2_for(op, Direction::Downlink);
        if t1.is_empty() {
            continue;
        }
        println!(
            "  {:<9} dT1 median {:+.1} Mbps (negative {:.0}% of HOs) | dT2 median {:+.1} Mbps (post>pre {:.0}%)",
            op.label(),
            t1.median(),
            t1.frac_below(0.0) * 100.0,
            t2.median(),
            (1.0 - t2.frac_below(0.0)) * 100.0
        );
    }
    println!("\n§6's conclusion: handovers are too rare and too brief to move");
    println!("30-second throughput — which is why Table 2's HO column is ~0.");
}
