//! # wheels
//!
//! Facade crate of the *Performance of Cellular Networks on the Wheels*
//! replication workspace. Re-exports every sub-crate under a short name
//! and offers a couple of one-call entry points.
//!
//! ```no_run
//! use wheels::campaign::{Campaign, CampaignConfig};
//!
//! // A miniature version of the paper's 8-day campaign:
//! let db = Campaign::new(CampaignConfig::quick(42)).run();
//! println!("{} tests", db.records.len());
//! ```
//!
//! See `examples/` for runnable scenarios and `wheels-bench`'s `repro`
//! binary for the full table/figure reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wheels_analysis as analysis;
pub use wheels_apps as apps;
pub use wheels_campaign as campaign;
pub use wheels_geo as geo;
pub use wheels_netsim as netsim;
pub use wheels_radio as radio;
pub use wheels_ran as ran;
pub use wheels_xcal as xcal;

use wheels_campaign::{Campaign, CampaignConfig};
use wheels_xcal::database::ConsolidatedDb;

/// Run a miniature campaign (all test kinds, statics, passive loggers)
/// and return its consolidated database. Takes a few seconds.
pub fn quick_campaign(seed: u64) -> ConsolidatedDb {
    Campaign::new(CampaignConfig::quick(seed)).run()
}

/// Run a miniature network-tests-only campaign (no apps): the fastest way
/// to get a dataset with throughput/RTT/handover records.
pub fn quick_network_campaign(seed: u64) -> ConsolidatedDb {
    Campaign::new(CampaignConfig::quick_network_only(seed)).run()
}
