//! One module per paper table/figure. Every module exposes `compute(&db)`
//! (plus parameters where relevant) and a `render()` producing the same
//! rows/series the paper reports.

pub mod ext_fleet;
pub mod ext_multipath;
pub mod fig01_coverage_views;
pub mod fig02_coverage;
pub mod fig03_static_driving;
pub mod fig04_tech_perf;
pub mod fig05_timezones;
pub mod fig06_operator_diversity;
pub mod fig07_speed_tput;
pub mod fig08_speed_rtt;
pub mod fig09_test_stats;
pub mod fig10_hs5g;
pub mod fig11_handovers;
pub mod fig12_ho_impact;
pub mod fig13_ar;
pub mod fig14_cav;
pub mod fig15_video;
pub mod fig16_gaming;
pub mod table2_correlations;
pub mod table3_ookla;

use wheels_radio::band::Technology;
use wheels_xcal::kpi::KpiSample;

/// Distance-weighted technology shares over KPI samples (each 500 ms
/// sample weighs `speed × 0.5 s` meters) — coverage "as a percentage of
/// miles driven", the paper's metric.
pub fn tech_shares<'a>(samples: impl Iterator<Item = &'a KpiSample>) -> [(Technology, f64); 5] {
    let mut meters = [0.0f64; 5];
    for k in samples {
        let idx = Technology::ALL
            .iter()
            .position(|&t| t == k.tech)
            .expect("known technology");
        meters[idx] += k.speed_mps as f64 * 0.5;
    }
    let total: f64 = meters.iter().sum::<f64>().max(1e-9);
    let mut out = [(Technology::Lte, 0.0); 5];
    for (i, t) in Technology::ALL.iter().enumerate() {
        out[i] = (*t, meters[i] / total);
    }
    out
}

/// Sum of the 5G shares in a share array.
pub fn share_5g(shares: &[(Technology, f64); 5]) -> f64 {
    shares.iter().filter(|(t, _)| t.is_5g()).map(|(_, f)| f).sum()
}

/// Sum of the high-speed (mid + mmWave) shares.
pub fn share_hs5g(shares: &[(Technology, f64); 5]) -> f64 {
    shares
        .iter()
        .filter(|(t, _)| t.is_high_speed())
        .map(|(_, f)| f)
        .sum()
}

/// Pair each RTT sample of a test with its covering 500 ms KPI window.
/// RTT tests ping every 200 ms, so window index = floor(i·0.2 / 0.5).
pub fn rtt_with_context(record: &wheels_xcal::TestRecord) -> Vec<(f64, KpiSample)> {
    record
        .rtt_ms
        .iter()
        .enumerate()
        .filter_map(|(i, &rtt)| {
            let w = ((i as f64 * 0.2) / 0.5) as usize;
            record.kpi.get(w).map(|k| (rtt as f64, *k))
        })
        .collect()
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared miniature-campaign fixtures: built once per test binary.
    use std::sync::OnceLock;
    use wheels_campaign::{Campaign, CampaignConfig};
    use wheels_xcal::database::ConsolidatedDb;

    use crate::index::AnalysisIndex;

    static DB: OnceLock<ConsolidatedDb> = OnceLock::new();
    static NET_DB: OnceLock<ConsolidatedDb> = OnceLock::new();
    static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
    static NET_IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();

    /// A small but complete campaign database (all test kinds, statics,
    /// passive loggers) — used by the app-figure tests.
    pub fn small_db() -> &'static ConsolidatedDb {
        DB.get_or_init(|| {
            let mut cfg = CampaignConfig::full(2026);
            cfg.scale = 0.03;
            cfg.passive_tick_s = 8.0;
            Campaign::new(cfg).run()
        })
    }

    /// A network-tests-only campaign at much higher cycle density —
    /// coverage/throughput/RTT/handover figures need hundreds of tests
    /// to rise above the km-scale coverage-patch correlation.
    pub fn network_db() -> &'static ConsolidatedDb {
        NET_DB.get_or_init(|| {
            let mut cfg = CampaignConfig::full(2027);
            cfg.run_apps = false;
            cfg.scale = 0.22;
            cfg.passive_tick_s = 4.0;
            Campaign::new(cfg).run()
        })
    }

    /// The analysis index over [`small_db`], built once.
    pub fn small_ix() -> &'static AnalysisIndex<'static> {
        IX.get_or_init(|| AnalysisIndex::build(small_db()))
    }

    /// The analysis index over [`network_db`], built once.
    pub fn network_ix() -> &'static AnalysisIndex<'static> {
        NET_IX.get_or_init(|| AnalysisIndex::build(network_db()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::region::RegionKind;
    use wheels_geo::timezone::Timezone;
    use wheels_ran::cell::CellId;

    fn kpi(tech: Technology, speed: f32) -> KpiSample {
        KpiSample {
            time_s: 0.0,
            tput_mbps: None,
            tech,
            cell: CellId(1),
            rsrp_dbm: -100.0,
            sinr_db: 10.0,
            mcs: 10,
            bler: 0.1,
            ca: 1,
            handovers_in_window: 0,
            speed_mps: speed,
            odometer_m: 0.0,
            region: RegionKind::Highway,
            timezone: Timezone::Central,
            in_handover: false,
        }
    }

    #[test]
    fn shares_weighted_by_distance_not_count() {
        // One fast LTE sample (30 m/s) vs three slow midband samples
        // (2 m/s each): LTE carries 15 m, midband 3 m.
        let samples = [kpi(Technology::Lte, 30.0),
            kpi(Technology::Nr5gMid, 2.0),
            kpi(Technology::Nr5gMid, 2.0),
            kpi(Technology::Nr5gMid, 2.0)];
        let shares = tech_shares(samples.iter());
        let lte = shares[0].1;
        assert!((lte - 15.0 / 18.0).abs() < 1e-9, "{lte}");
    }

    #[test]
    fn share_groupings() {
        let samples = [kpi(Technology::Nr5gLow, 10.0), kpi(Technology::Nr5gMid, 10.0)];
        let shares = tech_shares(samples.iter());
        assert!((share_5g(&shares) - 1.0).abs() < 1e-9);
        assert!((share_hs5g(&shares) - 0.5).abs() < 1e-9);
    }
}
