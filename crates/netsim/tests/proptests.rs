//! Property tests for the network simulator.

use proptest::prelude::*;

use wheels_netsim::bbr::Bbr;
use wheels_netsim::bulk::BulkTransferTest;
use wheels_netsim::cubic::Cubic;
use wheels_netsim::event::EventQueue;
use wheels_netsim::mptcp::{MptcpMode, MultipathFlow};
use wheels_netsim::reno::Reno;
use wheels_netsim::tcp::{CongestionControl, FluidTcp, MSS};
use wheels_netsim::{bps_to_mbps, mbps_to_bps};

proptest! {
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn event_queue_fifo_for_ties(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(42.0, i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().map(|(_, v)| v), Some(i));
        }
    }

    #[test]
    fn event_queue_pop_order_deterministic_under_ties(
        // Times drawn from a tiny palette so equal timestamps are the
        // common case, not the exception.
        picks in prop::collection::vec(0usize..4, 1..200),
    ) {
        let palette = [1.0, 2.0, 2.0, 3.0]; // duplicate on purpose
        let times: Vec<f64> = picks.iter().map(|&i| palette[i]).collect();
        // Reference order: stable sort by time — insertion order within
        // equal timestamps, by construction of stable sorting.
        let mut expect: Vec<(usize, f64)> = times.iter().copied().enumerate().collect();
        expect.sort_by(|a, b| a.1.total_cmp(&b.1));
        // A fresh queue and a reused (filled, cleared, refilled) queue
        // must both replay exactly that order.
        let mut fresh = EventQueue::new();
        let mut reused = EventQueue::with_capacity(4);
        for i in 0..7 {
            reused.schedule(i as f64, usize::MAX); // junk from a "previous unit"
        }
        reused.clear();
        for (i, &t) in times.iter().enumerate() {
            fresh.schedule(t, i);
            reused.schedule(t, i);
        }
        for &(id, t) in &expect {
            prop_assert_eq!(fresh.pop(), Some((t, id)));
            prop_assert_eq!(reused.pop(), Some((t, id)));
        }
        prop_assert!(fresh.is_empty() && reused.is_empty());
    }

    #[test]
    fn all_ccs_conserve_bytes(caps in prop::collection::vec(0.0f64..400.0, 20..150),
                              which in 0u8..3) {
        let cc: Box<dyn CongestionControl + Send> = match which {
            0 => Box::new(Cubic::new()),
            1 => Box::new(Reno::new()),
            _ => Box::new(Bbr::new()),
        };
        let mut flow = FluidTcp::new(cc);
        let dt = 0.05;
        let mut t = 0.0;
        let mut offered = 0.0;
        for &cap in &caps {
            flow.tick(t, dt, cap, 0.05);
            offered += mbps_to_bps(cap) * dt;
            t += dt;
        }
        prop_assert!(flow.total_delivered_bytes() <= offered + 1.0);
        prop_assert!(flow.queue_bytes() >= 0.0);
    }

    #[test]
    fn cwnd_always_at_least_two_segments(events in prop::collection::vec(0u8..3, 1..150),
                                         which in 0u8..2) {
        let mut cc: Box<dyn CongestionControl + Send> = match which {
            0 => Box::new(Cubic::new()),
            _ => Box::new(Reno::new()),
        };
        let mut t = 0.0;
        for e in events {
            t += 0.05;
            match e {
                0 => cc.on_ack(t, cc.cwnd_bytes(), 0.05),
                1 => cc.on_loss(t),
                _ => cc.on_timeout(t),
            }
            prop_assert!(cc.cwnd_bytes() >= 2.0 * MSS - 1e-9);
        }
    }

    #[test]
    fn bulk_samples_nonnegative_and_bounded(caps in prop::collection::vec(0.0f64..300.0, 4..20)) {
        let test = BulkTransferTest { duration_s: 10.0, ..Default::default() };
        let caps2 = caps.clone();
        let samples = test.run(0.0, move |t| {
            let idx = ((t / 10.0 * caps2.len() as f64) as usize).min(caps2.len() - 1);
            (caps2[idx], 0.05)
        });
        let max_cap = caps.iter().copied().fold(0.0, f64::max);
        for s in samples {
            prop_assert!(s.mbps >= 0.0);
            // A 500 ms window can briefly drain queued bytes above the
            // instantaneous capacity, but never above the max capacity.
            prop_assert!(s.mbps <= max_cap + 1.0, "{} vs {}", s.mbps, max_cap);
        }
    }

    #[test]
    fn mptcp_aggregate_bounded_by_path_sum(caps in prop::collection::vec(
        (0.0f64..200.0, 0.0f64..200.0, 0.0f64..200.0), 20..80))
    {
        let mut flow = MultipathFlow::new(3, MptcpMode::Aggregate);
        let dt = 0.05;
        let mut t = 0.0;
        let mut offered = 0.0;
        for &(a, b, c) in &caps {
            flow.tick(t, dt, &[a, b, c], &[0.05, 0.05, 0.05]);
            offered += mbps_to_bps(a + b + c) * dt;
            t += dt;
        }
        prop_assert!(flow.total_delivered_bytes() <= offered + 1.0);
    }

    #[test]
    fn mptcp_bestpath_bounded_by_max_path(cap in 1.0f64..300.0) {
        let mut flow = MultipathFlow::new(3, MptcpMode::BestPath);
        let dt = 0.02;
        let mut t = 0.0;
        while t < 10.0 {
            flow.tick(t, dt, &[cap, cap / 2.0, cap / 4.0], &[0.05, 0.05, 0.05]);
            t += dt;
        }
        let avg = bps_to_mbps(flow.total_delivered_bytes() / 10.0);
        prop_assert!(avg <= cap + 1.0, "{avg} vs {cap}");
    }
}
