//! ASCII coverage maps along the route — the textual analogue of Fig. 1's
//! per-operator coverage maps.
//!
//! The route is split into equal odometer bins; each bin is drawn as one
//! character for the technology that covered the most distance within it:
//!
//! | char | technology |
//! |---|---|
//! | `.` | LTE |
//! | `-` | LTE-A |
//! | `l` | 5G-low |
//! | `M` | 5G-mid |
//! | `W` | 5G-mmWave |
//! | ` ` | no samples in the bin |

use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;
use wheels_xcal::database::ConsolidatedDb;
use wheels_xcal::handover_logger::PassiveLogger;
use wheels_xcal::kpi::KpiSample;

/// Character used for a technology.
pub fn tech_char(t: Technology) -> char {
    match t {
        Technology::Lte => '.',
        Technology::LteA => '-',
        Technology::Nr5gLow => 'l',
        Technology::Nr5gMid => 'M',
        Technology::Nr5gMmWave => 'W',
    }
}

fn dominant(meters: &[f64; 5]) -> Option<Technology> {
    let (idx, &m) = meters
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("five technologies");
    (m > 0.0).then(|| Technology::ALL[idx])
}

/// Build a coverage map of `width` characters from KPI samples.
pub fn map_from_kpi<'a>(
    samples: impl Iterator<Item = &'a KpiSample>,
    total_m: f64,
    width: usize,
) -> String {
    assert!(width > 0 && total_m > 0.0);
    let mut bins = vec![[0.0f64; 5]; width];
    for k in samples {
        let b = ((k.odometer_m / total_m) * width as f64) as usize;
        let b = b.min(width - 1);
        let t = Technology::ALL
            .iter()
            .position(|&x| x == k.tech)
            .expect("known technology");
        bins[b][t] += k.speed_mps as f64 * 0.5;
    }
    bins.iter()
        .map(|m| dominant(m).map_or(' ', tech_char))
        .collect()
}

/// Build a coverage map from a passive handover-logger trace.
pub fn map_from_passive(log: &PassiveLogger, total_m: f64, width: usize) -> String {
    assert!(width > 0 && total_m > 0.0);
    let mut bins = vec![[0.0f64; 5]; width];
    for w in log.samples().windows(2) {
        let d = (w[1].odometer_m - w[0].odometer_m).max(0.0);
        let b = ((w[0].odometer_m / total_m) * width as f64) as usize;
        let b = b.min(width - 1);
        let t = Technology::ALL
            .iter()
            .position(|&x| x == w[0].tech)
            .expect("known technology");
        bins[b][t] += d;
    }
    bins.iter()
        .map(|m| dominant(m).map_or(' ', tech_char))
        .collect()
}

/// Render the Fig. 1 comparison for the paper's three-operator panel.
pub fn render_fig1_maps(db: &ConsolidatedDb, total_m: f64, width: usize) -> String {
    render_fig1_maps_for(db, total_m, width, &Operator::ALL)
}

/// Render the Fig. 1 comparison for an explicit operator panel: for each
/// operator, the passive map above the active (test-time) map.
pub fn render_fig1_maps_for(
    db: &ConsolidatedDb,
    total_m: f64,
    width: usize,
    ops: &[Operator],
) -> String {
    let mut out = String::from(
        "Route coverage maps (LA → Boston; . LTE, - LTE-A, l 5G-low, M 5G-mid, W mmWave)\n",
    );
    for &op in ops {
        if let Some(p) = db.passive_for(op) {
            out.push_str(&format!(
                "{:>9} passive |{}|\n",
                op.label(),
                map_from_passive(p, total_m, width)
            ));
        }
        let active = map_from_kpi(
            db.records
                .iter()
                .filter(|r| r.op == op && !r.is_static)
                .flat_map(|r| r.kpi.iter()),
            total_m,
            width,
        );
        out.push_str(&format!("{:>9} active  |{active}|\n\n", op.label()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_db;

    const TOTAL: f64 = 5_711_000.0;

    #[test]
    fn chars_distinct() {
        let mut chars: Vec<char> = Technology::ALL.iter().map(|&t| tech_char(t)).collect();
        chars.sort_unstable();
        chars.dedup();
        assert_eq!(chars.len(), 5);
    }

    #[test]
    fn maps_have_requested_width() {
        let db = network_db();
        let m = render_fig1_maps(db, TOTAL, 72);
        for line in m.lines().filter(|l| l.contains('|')) {
            let inner = line.split('|').nth(1).expect("map body");
            assert_eq!(inner.chars().count(), 72, "{line}");
        }
    }

    #[test]
    fn att_passive_map_has_no_5g() {
        // Fig. 1d: AT&T passive shows LTE/LTE-A only.
        let db = network_db();
        let p = db.passive_for(Operator::Att).expect("passive log present");
        let map = map_from_passive(p, TOTAL, 100);
        assert!(!map.contains('M') && !map.contains('W'), "{map}");
    }

    #[test]
    fn tmobile_active_map_shows_midband() {
        let db = network_db();
        let map = map_from_kpi(
            db.records
                .iter()
                .filter(|r| r.op == Operator::TMobile && !r.is_static)
                .flat_map(|r| r.kpi.iter()),
            TOTAL,
            100,
        );
        assert!(map.contains('M'), "{map}");
    }

    #[test]
    fn empty_samples_give_blank_map() {
        let map = map_from_kpi(std::iter::empty(), TOTAL, 20);
        assert_eq!(map, " ".repeat(20));
    }
}
