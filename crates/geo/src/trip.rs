//! The 8-day drive plan: a deterministic speed process over the route.
//!
//! The study drove 2022-08-08 → 2022-08-15 (8 driving days). We model each
//! day as starting at 08:00 nominal time and driving until the day's target
//! city is reached. Vehicle speed follows an Ornstein-Uhlenbeck process
//! around the region's free-flow speed, with stop events (traffic lights,
//! congestion) in urban areas. This produces the speed mix behind the
//! paper's speed-bin figures: low speeds in cities, 60+ mph on interstates,
//! a mid-speed band in suburban transitions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coord::LatLon;
use crate::mph_to_mps;
use crate::region::RegionKind;
use crate::route::Route;
use crate::timezone::Timezone;

/// Seconds per nominal day in the plan's time base.
pub const DAY_S: u64 = 86_400;
/// Nominal local start-of-driving each day, seconds after midnight.
pub const DAY_START_S: u64 = 8 * 3_600;

/// Tunables of the vehicle speed process.
#[derive(Debug, Clone)]
pub struct SpeedProfile {
    /// OU mean-reversion rate, 1/s. Higher = speed hugs free-flow tighter.
    pub ou_theta: f64,
    /// OU noise std-dev in mph per sqrt(second).
    pub ou_sigma_mph: f64,
    /// Probability per meter of hitting a stop (light/congestion) in city
    /// regions.
    pub city_stop_per_m: f64,
    /// Stop duration range, seconds.
    pub stop_s: (f64, f64),
    /// Hard speed cap, mph.
    pub max_mph: f64,
}

impl Default for SpeedProfile {
    fn default() -> Self {
        SpeedProfile {
            ou_theta: 0.05,
            ou_sigma_mph: 2.2,
            city_stop_per_m: 1.0 / 900.0,
            stop_s: (12.0, 70.0),
            max_mph: 82.0,
        }
    }
}

/// One driving day: which odometer span it covers and when it starts.
#[derive(Debug, Clone)]
pub struct DayPlan {
    /// Day index, 0-based (0 = 2022-08-08).
    pub day: usize,
    /// Odometer at the morning start, meters.
    pub start_odometer_m: f64,
    /// Odometer at the overnight stop, meters.
    pub end_odometer_m: f64,
    /// Plan-time of the morning start, seconds (day*86400 + 08:00).
    pub start_time_s: u64,
    /// Plan-time when the overnight stop was reached, seconds.
    pub end_time_s: u64,
    /// Name of the overnight city.
    pub overnight_city: &'static str,
}

/// Instantaneous state of the vehicle at some plan-time.
#[derive(Debug, Clone, Copy)]
pub struct DriveState {
    /// Plan time, seconds.
    pub time_s: f64,
    /// Odometer, meters.
    pub odometer_m: f64,
    /// Speed, m/s.
    pub speed_mps: f64,
    /// Position.
    pub pos: LatLon,
    /// Travel bearing, degrees.
    pub bearing_deg: f64,
    /// Region kind at this point.
    pub region: RegionKind,
    /// Timezone at this point.
    pub timezone: Timezone,
    /// Day index (0-based).
    pub day: usize,
    /// True while the vehicle is on the road (between a day's start and end).
    pub driving: bool,
}

/// The full 8-day trajectory: per-second odometer/speed samples per day.
#[derive(Debug, Clone)]
pub struct DrivePlan {
    route: Route,
    days: Vec<DayPlan>,
    /// Per-day: odometer at each whole second from the day start.
    day_odometer: Vec<Vec<f64>>,
    /// Per-day: speed (m/s) at each whole second from the day start.
    day_speed: Vec<Vec<f32>>,
}

/// Overnight stops of the cross-country trip, by city name. The drive starts
/// in Los Angeles; each entry is where a day ends.
pub const OVERNIGHT_CITIES: [&str; 8] = [
    "Las Vegas",
    "Salt Lake City",
    "Denver",
    "Omaha",
    "Chicago",
    "Indianapolis",
    "Cleveland",
    "Boston",
];

impl DrivePlan {
    /// Generate the cross-country 8-day plan with the default speed profile.
    pub fn cross_country(seed: u64) -> Self {
        Self::generate(Route::cross_country(), &SpeedProfile::default(), seed)
    }

    /// Generate a plan for `route`, splitting days at [`OVERNIGHT_CITIES`]
    /// (cities not present on the route are skipped; the final day always
    /// ends at the route's end).
    pub fn generate(route: Route, profile: &SpeedProfile, seed: u64) -> Self {
        Self::generate_with_stops(route, profile, &OVERNIGHT_CITIES, seed)
    }

    /// Generate a plan for `route`, splitting days at the named overnight
    /// stops (cities not present on the route are skipped; the final day
    /// always ends at the route's end).
    pub fn generate_with_stops(
        route: Route,
        profile: &SpeedProfile,
        overnights: &[&str],
        seed: u64,
    ) -> Self {
        // lint:allow(D4): trip seed comes from scenario compilation /
        // campaign config; the salt splits the drive-plan sub-stream
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        // Resolve overnight odometer marks present on this route.
        let mut marks: Vec<(f64, &'static str)> = Vec::new();
        for &name in overnights {
            if let Some((i, c)) = route
                .cities()
                .iter()
                .enumerate()
                .find(|(_, c)| c.name == name)
            {
                marks.push((route.city_odometer_m(crate::cities::CityId(i)), c.name));
            }
        }
        let end_name = route.cities().last().expect("route has cities").name;
        if marks.last().map(|(od, _)| *od) != Some(route.total_m()) {
            marks.push((route.total_m(), end_name));
        }
        marks.dedup_by(|a, b| (a.0 - b.0).abs() < 1.0);

        let mut days = Vec::new();
        let mut day_odometer = Vec::new();
        let mut day_speed = Vec::new();
        let mut od = 0.0_f64;
        for (day, (end_od, name)) in marks.into_iter().enumerate() {
            let start_time_s = day as u64 * DAY_S + DAY_START_S;
            let start_od = od;
            let mut ods = Vec::with_capacity(50_000);
            let mut sps = Vec::with_capacity(50_000);
            let mut v = 0.0_f64; // start parked
            let mut stop_left = 0.0_f64;
            ods.push(od);
            sps.push(0.0);
            while od < end_od {
                let region = route.region_at(od);
                let mu = mph_to_mps(region.freeflow_mph());
                if stop_left > 0.0 {
                    stop_left -= 1.0;
                    v = 0.0;
                } else {
                    let z: f64 = rng.gen_range(-1.0..1.0) * 1.732; // uniform, var 1
                    v += profile.ou_theta * (mu - v) + mph_to_mps(profile.ou_sigma_mph) * z;
                    v = v.clamp(0.0, mph_to_mps(profile.max_mph));
                    if region.is_city() {
                        let p = profile.city_stop_per_m * v;
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            stop_left = rng.gen_range(profile.stop_s.0..profile.stop_s.1);
                        }
                    }
                }
                od = (od + v).min(end_od);
                ods.push(od);
                sps.push(v as f32);
                // Safety valve: a day of driving never exceeds 16h.
                if ods.len() as u64 > 16 * 3_600 {
                    od = end_od;
                    *ods.last_mut().expect("nonempty") = od;
                    break;
                }
            }
            let end_time_s = start_time_s + (ods.len() as u64 - 1);
            days.push(DayPlan {
                day,
                start_odometer_m: start_od,
                end_odometer_m: end_od,
                start_time_s,
                end_time_s,
                overnight_city: name,
            });
            day_odometer.push(ods);
            day_speed.push(sps);
        }
        DrivePlan {
            route,
            days,
            day_odometer,
            day_speed,
        }
    }

    /// The underlying route.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The day plans in order.
    pub fn days(&self) -> &[DayPlan] {
        &self.days
    }

    /// Total time spent driving across all days, seconds.
    pub fn total_driving_s(&self) -> u64 {
        self.days
            .iter()
            .map(|d| d.end_time_s - d.start_time_s)
            .sum()
    }

    /// End of the whole plan (last day's arrival), plan seconds.
    pub fn end_time_s(&self) -> u64 {
        self.days.last().map_or(0, |d| d.end_time_s)
    }

    /// Day index / odometer / speed / driving flag at plan-time `t` (already
    /// clamped non-negative). Shared hot-path core of [`Self::state_at`] and
    /// [`Self::pos_at`].
    fn locate(&self, t: f64) -> (usize, f64, f64, bool) {
        // Find the day whose window contains t, or the nearest earlier day:
        // the last day with start_time_s <= t (day starts are increasing).
        let day_idx = self
            .days
            .partition_point(|d| d.start_time_s as f64 <= t)
            .saturating_sub(1);
        let d = &self.days[day_idx];
        let ods = &self.day_odometer[day_idx];
        let sps = &self.day_speed[day_idx];
        let rel = t - d.start_time_s as f64;
        let (odometer, speed, driving) = if rel < 0.0 {
            (d.start_odometer_m, 0.0, false)
        } else if rel as usize + 1 >= ods.len() {
            (d.end_odometer_m, 0.0, false)
        } else {
            let i = rel as usize;
            let frac = rel - i as f64;
            let od = ods[i] + (ods[i + 1] - ods[i]) * frac;
            (od, sps[i] as f64, true)
        };
        (day_idx, odometer, speed, driving)
    }

    /// Vehicle state at plan-time `t_s`. Outside driving windows the vehicle
    /// is parked at the previous day's overnight stop (`driving == false`).
    pub fn state_at(&self, t_s: f64) -> DriveState {
        let t = t_s.max(0.0);
        let (day_idx, odometer, speed, driving) = self.locate(t);
        let pt = self.route.point_at(odometer);
        DriveState {
            time_s: t,
            odometer_m: odometer,
            speed_mps: speed,
            pos: pt.pos,
            bearing_deg: pt.bearing_deg,
            region: self.route.region_at(odometer),
            timezone: Timezone::from_longitude(pt.pos.lon),
            day: day_idx,
            driving,
        }
    }

    /// Position only at plan-time `t_s`: skips the region / timezone lookups
    /// of [`Self::state_at`]. For per-tick app-layer samplers that only need
    /// geometry; the returned position is bit-identical to
    /// `state_at(t_s).pos`.
    pub fn pos_at(&self, t_s: f64) -> LatLon {
        let t = t_s.max(0.0);
        let (_, odometer, _, _) = self.locate(t);
        self.route.point_at(odometer).pos
    }

    /// Odometer distance covered in the plan-time window `[t0, t1]`, meters.
    pub fn distance_in_window_m(&self, t0: f64, t1: f64) -> f64 {
        (self.state_at(t1).odometer_m - self.state_at(t0).odometer_m).max(0.0)
    }

    /// First plan-time at which the vehicle reaches odometer `od_m`
    /// (`None` if beyond the route).
    pub fn time_at_odometer(&self, od_m: f64) -> Option<f64> {
        for (day_idx, d) in self.days.iter().enumerate() {
            if od_m > d.end_odometer_m {
                continue;
            }
            if od_m < d.start_odometer_m {
                return Some(d.start_time_s as f64);
            }
            let ods = &self.day_odometer[day_idx];
            let i = ods.partition_point(|&o| o < od_m);
            return Some(d.start_time_s as f64 + i.min(ods.len() - 1) as f64);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mps_to_mph;
    use crate::SpeedBin;

    fn plan() -> DrivePlan {
        DrivePlan::cross_country(7)
    }

    #[test]
    fn eight_days() {
        let p = plan();
        assert_eq!(p.days().len(), 8);
        assert_eq!(p.days()[0].overnight_city, "Las Vegas");
        assert_eq!(p.days()[7].overnight_city, "Boston");
    }

    #[test]
    fn days_cover_route_contiguously() {
        let p = plan();
        let mut od = 0.0;
        for d in p.days() {
            assert!((d.start_odometer_m - od).abs() < 1.0);
            assert!(d.end_odometer_m > d.start_odometer_m);
            od = d.end_odometer_m;
        }
        assert!((od - p.route().total_m()).abs() < 1.0);
    }

    #[test]
    fn total_driving_time_is_plausible() {
        // 5,711 km at a ~45-65 mph overall average => roughly 55-95 hours.
        let p = plan();
        let h = p.total_driving_s() as f64 / 3_600.0;
        assert!((55.0..100.0).contains(&h), "driving hours = {h}");
    }

    #[test]
    fn odometer_is_monotone_within_days() {
        let p = plan();
        for ods in &p.day_odometer {
            for w in ods.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn parked_overnight() {
        let p = plan();
        let d0 = &p.days()[0];
        let s = p.state_at(d0.end_time_s as f64 + 3_600.0);
        assert!(!s.driving);
        assert_eq!(s.speed_mps, 0.0);
        assert!((s.odometer_m - d0.end_odometer_m).abs() < 1.0);
    }

    #[test]
    fn speed_never_exceeds_cap() {
        let p = plan();
        let cap = mph_to_mps(SpeedProfile::default().max_mph) as f32 + 0.01;
        for sps in &p.day_speed {
            for &v in sps {
                assert!(v <= cap);
            }
        }
    }

    #[test]
    fn speed_bins_all_populated_and_highway_dominates() {
        let p = plan();
        let mut counts = [0usize; 3];
        for sps in &p.day_speed {
            for &v in sps {
                match SpeedBin::from_mph(mps_to_mph(v as f64)) {
                    SpeedBin::Low => counts[0] += 1,
                    SpeedBin::Mid => counts[1] += 1,
                    SpeedBin::High => counts[2] += 1,
                }
            }
        }
        let total: usize = counts.iter().sum();
        assert!(counts.iter().all(|&c| c > 0));
        // §5.5: "This [high-speed] region has the maximum number of points".
        assert!(
            counts[2] > counts[0] && counts[2] > counts[1],
            "{counts:?} of {total}"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = DrivePlan::cross_country(42);
        let b = DrivePlan::cross_country(42);
        assert_eq!(a.total_driving_s(), b.total_driving_s());
        let sa = a.state_at(100_000.0);
        let sb = b.state_at(100_000.0);
        assert_eq!(sa.odometer_m, sb.odometer_m);
        assert_eq!(sa.speed_mps, sb.speed_mps);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DrivePlan::cross_country(1);
        let b = DrivePlan::cross_country(2);
        assert_ne!(a.total_driving_s(), b.total_driving_s());
    }

    #[test]
    fn state_interpolates_continuously() {
        let p = plan();
        let t0 = p.days()[0].start_time_s as f64 + 1_000.0;
        let a = p.state_at(t0);
        let b = p.state_at(t0 + 0.5);
        let c = p.state_at(t0 + 1.0);
        assert!(a.odometer_m <= b.odometer_m && b.odometer_m <= c.odometer_m);
    }

    #[test]
    fn pos_at_matches_state_at() {
        let p = plan();
        let mut t = -10.0;
        while t < p.end_time_s() as f64 + 7_200.0 {
            let s = p.state_at(t);
            let pos = p.pos_at(t);
            assert_eq!(s.pos.lat.to_bits(), pos.lat.to_bits(), "lat at t={t}");
            assert_eq!(s.pos.lon.to_bits(), pos.lon.to_bits(), "lon at t={t}");
            t += 1_237.5;
        }
    }

    #[test]
    fn day_lookup_handles_window_edges() {
        let p = plan();
        for d in p.days() {
            // Just before a day's start the vehicle is parked at the prior
            // day's stop; exactly at the start it is that day's state.
            let before = p.state_at(d.start_time_s as f64 - 0.5);
            assert!(!before.driving);
            let at = p.state_at(d.start_time_s as f64);
            assert_eq!(at.day, d.day);
            assert!((at.odometer_m - d.start_odometer_m).abs() < 1.0);
        }
        // Far before the first day: clamps to day 0's morning position.
        let early = p.state_at(0.0);
        assert_eq!(early.day, 0);
        assert!(!early.driving);
    }

    #[test]
    fn distance_in_window_accumulates() {
        let p = plan();
        let t0 = p.days()[0].start_time_s as f64;
        let d1 = p.distance_in_window_m(t0, t0 + 600.0);
        let d2 = p.distance_in_window_m(t0, t0 + 1_200.0);
        assert!(d2 >= d1);
        assert!(d1 > 0.0);
    }
}
