//! Fig. 8: technology-wise RTT as a function of vehicle speed.
//!
//! Findings reproduced: RTT correlates with speed more than throughput
//! does (for Verizon and T-Mobile), and mmWave points exist essentially
//! only near 0 mph — operators don't elevate ping traffic to mmWave on the
//! move.

use std::sync::Arc;

use wheels_geo::SpeedBin;
use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;

use crate::ecdf::Ecdf;
use crate::index::{AnalysisIndex, EcdfQuery, QueryMetric};
use crate::render::{cdf_header, cdf_row};

/// Per (operator, speed bin, technology) RTT distributions.
#[derive(Debug, Clone)]
pub struct SpeedRtt {
    /// Distribution per cell.
    pub cells: Vec<(Operator, SpeedBin, Technology, Arc<Ecdf>)>,
}

/// Compute Fig. 8 from memoized index queries.
pub fn compute(ix: &AnalysisIndex<'_>) -> SpeedRtt {
    let mut cells = Vec::new();
    for &op in ix.ops() {
        for bin in SpeedBin::ALL {
            for tech in Technology::ALL {
                let e = ix.query(EcdfQuery::metric(op, QueryMetric::Rtt).bin(bin).tech(tech));
                cells.push((op, bin, tech, e));
            }
        }
    }
    SpeedRtt { cells }
}

impl SpeedRtt {
    /// One cell of the breakdown.
    pub fn get(&self, op: Operator, bin: SpeedBin, tech: Technology) -> &Ecdf {
        &self
            .cells
            .iter()
            .find(|(o, b, t, _)| *o == op && *b == bin && *t == tech)
            .expect("all combos computed")
            .3
    }

    /// RTTs pooled over technologies for one (op, bin).
    pub fn pooled_bin(&self, op: Operator, bin: SpeedBin) -> Ecdf {
        Ecdf::new(
            self.cells
                .iter()
                .filter(|(o, b, _, _)| *o == op && *b == bin)
                .flat_map(|(_, _, _, e)| e.samples().iter().copied()),
        )
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 8 — RTT vs speed, per technology (ms)");
        out.push('\n');
        for (op, bin, tech, e) in &self.cells {
            if e.is_empty() {
                continue;
            }
            out.push_str(&cdf_row(
                &format!("{} {} {}", op.code(), bin.label(), tech.label()),
                e,
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn rtt_grows_with_speed_for_verizon() {
        let f = compute(small_ix());
        let low = f.pooled_bin(Operator::Verizon, SpeedBin::Low);
        let high = f.pooled_bin(Operator::Verizon, SpeedBin::High);
        if low.len() > 40 && high.len() > 40 {
            assert!(
                high.percentile(75.0) > low.percentile(75.0) * 0.9,
                "p75 low {} vs high {}",
                low.percentile(75.0),
                high.percentile(75.0)
            );
        }
    }

    #[test]
    fn mmwave_pings_only_near_standstill() {
        // §5.5 / Fig. 8: mmWave RTT points absent except at very low
        // speeds.
        let f = compute(small_ix());
        for op in [Operator::Verizon, Operator::Att] {
            let high = f.get(op, SpeedBin::High, Technology::Nr5gMmWave);
            let mid = f.get(op, SpeedBin::Mid, Technology::Nr5gMmWave);
            assert!(
                high.len() + mid.len() <= 6,
                "{op}: {} mmWave ping samples on the move",
                high.len() + mid.len()
            );
        }
    }

    #[test]
    fn rtts_are_tens_of_ms() {
        let f = compute(small_ix());
        let e = f.pooled_bin(Operator::TMobile, SpeedBin::High);
        if e.len() > 40 {
            assert!((25.0..220.0).contains(&e.median()), "median {}", e.median());
        }
    }
}
