//! # wheels-geo
//!
//! Geographic substrate for the *Cellular Networks on the Wheels* replication.
//!
//! The original study drove 5,711+ km from Los Angeles to Boston over 8 days
//! (2022-08-08 → 2022-08-15), crossing 14 states, 10 major cities and 4 time
//! zones. Every result in the paper is organized along geographic axes:
//! timezone (Fig. 2c, Fig. 5), region type / vehicle speed (Fig. 2d, Fig. 7,
//! Fig. 8), and distance driven (coverage as % of miles, handovers per mile).
//!
//! This crate provides that skeleton:
//!
//! * [`coord`] — WGS-84 coordinates, haversine distance, bearings.
//! * [`timezone`] — the four US timezones and the longitudes where the trip
//!   crossed them.
//! * [`region`] — urban / suburban / highway classification (the paper uses
//!   vehicle speed bins as a proxy for exactly this).
//! * [`cities`] — the waypoint cities of the trip, with which ones hosted
//!   static baseline tests and Verizon Wavelength edge servers.
//! * [`route`] — a polyline route with odometer arithmetic (position at a
//!   given driven distance, region/timezone lookup along the way).
//! * [`trip`] — the 8-day drive plan: a deterministic speed process that maps
//!   simulation time to odometer distance, speed, and position.
//! * [`trace`] — GPS sample streams as logged by the measurement apps.
//!
//! Everything here is deterministic: the only randomness is a caller-provided
//! seed used by the speed process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cities;
pub mod coord;
pub mod region;
pub mod route;
pub mod timezone;
pub mod trace;
pub mod trip;

pub use cities::{City, CityId};
pub use coord::LatLon;
pub use region::RegionKind;
pub use route::{Route, RoutePoint};
pub use timezone::Timezone;
pub use trace::{GpsSample, GpsTrace};
pub use trip::{DayPlan, DrivePlan, DriveState, SpeedProfile};

/// Meters per mile; the paper reports speeds in mph and distances in miles
/// for several figures.
pub const METERS_PER_MILE: f64 = 1609.344;

/// Convert meters/second to miles/hour.
#[inline]
pub fn mps_to_mph(mps: f64) -> f64 {
    mps * 3600.0 / METERS_PER_MILE
}

/// Convert miles/hour to meters/second.
#[inline]
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * METERS_PER_MILE / 3600.0
}

/// Speed bins used throughout the paper (Fig. 2d, Fig. 7, Fig. 8):
/// low (0–20 mph), mid (20–60 mph) and high (60+ mph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum SpeedBin {
    /// 0–20 mph: city driving, stop lights, downtown cores.
    Low,
    /// 20–60 mph: suburban arterials, in-between areas.
    Mid,
    /// 60+ mph: inter-state highways.
    High,
}

impl SpeedBin {
    /// Classify a speed in miles/hour into the paper's three bins.
    pub fn from_mph(mph: f64) -> Self {
        if mph < 20.0 {
            SpeedBin::Low
        } else if mph < 60.0 {
            SpeedBin::Mid
        } else {
            SpeedBin::High
        }
    }

    /// Classify a speed in meters/second.
    pub fn from_mps(mps: f64) -> Self {
        Self::from_mph(mps_to_mph(mps))
    }

    /// All bins, in display order.
    pub const ALL: [SpeedBin; 3] = [SpeedBin::Low, SpeedBin::Mid, SpeedBin::High];

    /// Human-readable label matching the paper's axis labels.
    pub fn label(self) -> &'static str {
        match self {
            SpeedBin::Low => "0-20 mph",
            SpeedBin::Mid => "20-60 mph",
            SpeedBin::High => "60+ mph",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_bin_boundaries() {
        assert_eq!(SpeedBin::from_mph(0.0), SpeedBin::Low);
        assert_eq!(SpeedBin::from_mph(19.99), SpeedBin::Low);
        assert_eq!(SpeedBin::from_mph(20.0), SpeedBin::Mid);
        assert_eq!(SpeedBin::from_mph(59.99), SpeedBin::Mid);
        assert_eq!(SpeedBin::from_mph(60.0), SpeedBin::High);
        assert_eq!(SpeedBin::from_mph(85.0), SpeedBin::High);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        for mph in [0.0, 5.0, 20.0, 60.0, 75.5] {
            let back = mps_to_mph(mph_to_mps(mph));
            assert!((back - mph).abs() < 1e-9, "{mph} -> {back}");
        }
    }

    #[test]
    fn sixty_mph_is_about_26_8_mps() {
        assert!((mph_to_mps(60.0) - 26.8224).abs() < 1e-3);
    }
}
