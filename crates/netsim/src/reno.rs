//! TCP Reno (NewReno-style AIMD), the baseline congestion controller for
//! the CUBIC-vs-Reno ablation bench.

use crate::tcp::{CongestionControl, INIT_CWND, MSS};

/// Classic AIMD: +1 MSS/RTT in congestion avoidance, ×0.5 on loss.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// A fresh flow in slow start.
    pub fn new() -> Self {
        Reno {
            cwnd: INIT_CWND,
            ssthresh: f64::INFINITY,
        }
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Reno {
    fn cwnd_bytes(&self) -> f64 {
        self.cwnd
    }

    fn on_ack(&mut self, _now_s: f64, acked_bytes: f64, _rtt_s: f64) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked_bytes;
        } else {
            self.cwnd += MSS * (acked_bytes / self.cwnd);
        }
    }

    fn on_loss(&mut self, _now_s: f64) {
        self.cwnd = (self.cwnd / 2.0).max(2.0 * MSS);
        self.ssthresh = self.cwnd;
    }

    fn on_timeout(&mut self, _now_s: f64) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS);
        self.cwnd = INIT_CWND;
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_then_linear() {
        let mut r = Reno::new();
        let w0 = r.cwnd_bytes();
        r.on_ack(0.0, w0, 0.05);
        assert!((r.cwnd_bytes() - 2.0 * w0).abs() < 1.0);
        r.on_loss(0.1);
        let w = r.cwnd_bytes();
        // One full window of acks in CA adds ~1 MSS.
        r.on_ack(0.2, w, 0.05);
        assert!((r.cwnd_bytes() - (w + MSS)).abs() < 1.0);
    }

    #[test]
    fn loss_halves() {
        let mut r = Reno::new();
        r.on_ack(0.0, 100.0 * MSS, 0.05);
        let before = r.cwnd_bytes();
        r.on_loss(0.1);
        assert!((r.cwnd_bytes() - before / 2.0).abs() < 1.0);
    }

    #[test]
    fn timeout_resets() {
        let mut r = Reno::new();
        r.on_ack(0.0, 100.0 * MSS, 0.05);
        r.on_timeout(0.1);
        assert!((r.cwnd_bytes() - INIT_CWND).abs() < 1e-9);
    }

    #[test]
    fn floor_at_two_segments() {
        let mut r = Reno::new();
        for _ in 0..64 {
            r.on_loss(0.0);
        }
        assert!(r.cwnd_bytes() >= 2.0 * MSS);
    }
}
