//! Crash-safe campaign resume: the byte-identity contract.
//!
//! The checkpoint subsystem promises that an interrupted-then-resumed
//! campaign is indistinguishable *at the byte level* from one that never
//! crashed: same export JSON, same integrity report. These tests enforce
//! the promise three ways:
//!
//! 1. a kill-point sweep at the acceptance seeds {11, 42} — for every
//!    strided kill point k, run fresh with a [`ProcessKill`] chaos hook,
//!    observe the interrupt, resume, and `assert_eq!` the bytes against a
//!    cold (never-checkpointed) golden run;
//! 2. targeted corruption — bit-flipped payload, foreign seed header, and
//!    a torn tail must each be rejected, recomputed, and *accounted* in
//!    the resume report, while the dataset still comes out golden;
//! 3. a proptest that resume after an **arbitrary** completed-unit prefix
//!    of the log (cut at record boundaries) reproduces the golden bytes.
//!
//! The campaign here is deliberately tiny (network-only, 2% scale,
//! coarse passive tick): each run is a few hundred milliseconds, so the
//! sweep stays affordable on a single-core CI box.

use std::fs;
use std::path::PathBuf;

use wheels_campaign::checkpoint::{record_spans, HEADER_LEN, LOG_NAME};
use wheels_campaign::{
    Campaign, CampaignConfig, CampaignError, CheckpointOptions, ProcessKill,
};
use wheels_xcal::export;

const SEEDS: [u64; 2] = [11, 42];

/// Tiny but fully representative config: all three unit kinds (drive,
/// static, passive) are scheduled; only the app layer is off.
fn tiny(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::quick_network_only(seed);
    cfg.scale = 0.02;
    cfg.passive_tick_s = 30.0;
    cfg
}

/// Fresh scratch dir under the cargo-provided tmp root.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

struct Golden {
    export: String,
    integrity: String,
    units: usize,
}

/// Cold run: supervised, no checkpointing anywhere near it.
fn golden(seed: u64) -> Golden {
    let campaign = Campaign::new(tiny(seed));
    let outcome = campaign
        .run_supervised_jobs(1)
        .expect("tiny campaign completes");
    Golden {
        export: export::to_json(&outcome.db).expect("export serializes"),
        integrity: serde_json::to_string_pretty(&outcome.integrity)
            .expect("integrity serializes"),
        units: campaign.plan_units().len(),
    }
}

fn export_bytes(outcome: &wheels_campaign::CampaignOutcome) -> (String, String) {
    (
        export::to_json(&outcome.db).expect("export serializes"),
        serde_json::to_string_pretty(&outcome.integrity).expect("integrity serializes"),
    )
}

/// A checkpointed-but-uninterrupted run is already byte-identical to a
/// plain supervised run: checkpointing must be observationally free.
#[test]
fn fresh_checkpointed_run_matches_supervised() {
    let g = golden(11);
    let dir = scratch("fresh-matches");
    let campaign = Campaign::new(tiny(11));
    let outcome = campaign
        .run_checkpointed_jobs(1, &CheckpointOptions::fresh(&dir))
        .expect("checkpointed run completes");
    let (exp, integ) = export_bytes(&outcome);
    assert_eq!(exp, g.export);
    assert_eq!(integ, g.integrity);
    assert!(outcome.resume.is_none(), "fresh run carries no resume report");
    // And the log holds exactly one record per scheduled unit.
    let log = fs::read(dir.join(LOG_NAME)).expect("log exists");
    assert_eq!(record_spans(&log).len(), g.units);
}

/// The acceptance sweep: kill after k durable commits for a stride of k
/// across the whole schedule (plus both edges), resume, and demand the
/// golden bytes back — at both acceptance seeds.
#[test]
fn kill_sweep_resume_reproduces_golden_bytes() {
    for seed in SEEDS {
        let g = golden(seed);
        let n = g.units;
        assert!(n >= 4, "sweep needs a non-trivial schedule, got {n} units");
        let mut kill_points: Vec<usize> = (1..n).step_by((n / 5).max(1)).collect();
        if !kill_points.contains(&(n - 1)) {
            kill_points.push(n - 1); // crash with exactly one unit left
        }
        kill_points.push(n); // crash after the final commit: resume is a pure replay
        for &k in &kill_points {
            let dir = scratch(&format!("sweep-{seed}-{k}"));
            let campaign = Campaign::new(tiny(seed));
            let killed = campaign.run_checkpointed_jobs(
                1,
                &CheckpointOptions::fresh(&dir).with_kill(ProcessKill::after_units(k)),
            );
            match killed {
                Err(CampaignError::Killed { committed }) => {
                    assert_eq!(committed, k, "seed {seed}: sequential kill is exact")
                }
                other => panic!(
                    "seed {seed} kill point {k}: expected Killed, got ok={}",
                    other.is_ok()
                ),
            }
            let resumed = campaign
                .run_checkpointed_jobs(1, &CheckpointOptions::resume(&dir))
                .expect("resume completes");
            let (exp, integ) = export_bytes(&resumed);
            assert_eq!(exp, g.export, "seed {seed} kill point {k}: export bytes");
            assert_eq!(integ, g.integrity, "seed {seed} kill point {k}: integrity bytes");
            let r = resumed.resume.expect("resumed run reports accounting");
            assert_eq!(r.restored_units, k);
            assert_eq!(r.recomputed_units, n - k);
            assert_eq!(r.corrupt_records, 0, "clean kill leaves no torn records");
            assert_eq!(r.foreign_records, 0);
        }
    }
}

/// Parallel spot check: crash under jobs=4, resume under jobs=4 — the
/// merge is canonical, so worker count leaves no trace in the bytes.
#[test]
fn parallel_kill_and_resume_match_sequential_golden() {
    let seed = 42;
    let g = golden(seed);
    let k = g.units / 2;
    let dir = scratch("parallel-kill");
    let campaign = Campaign::new(tiny(seed));
    let killed = campaign.run_checkpointed_jobs(
        4,
        &CheckpointOptions::fresh(&dir).with_kill(ProcessKill::after_units(k)),
    );
    match killed {
        Err(CampaignError::Killed { committed }) => {
            // Workers already past the commit gate may land extra units.
            assert!(committed >= k, "at least k units are durable")
        }
        other => panic!("expected Killed, got ok={}", other.is_ok()),
    }
    let resumed = campaign
        .run_checkpointed_jobs(4, &CheckpointOptions::resume(&dir))
        .expect("resume completes");
    let (exp, integ) = export_bytes(&resumed);
    assert_eq!(exp, g.export);
    assert_eq!(integ, g.integrity);
}

/// Corruption drill: damage three records three different ways and make
/// sure each is rejected, recomputed, and visible in the accounting —
/// while the dataset still comes out byte-identical to the golden.
#[test]
fn corrupt_records_are_rejected_recomputed_and_reported() {
    let seed = 11;
    let g = golden(seed);
    let dir = scratch("corrupt");
    let campaign = Campaign::new(tiny(seed));
    campaign
        .run_checkpointed_jobs(1, &CheckpointOptions::fresh(&dir))
        .expect("clean run completes");
    let log_path = dir.join(LOG_NAME);
    let mut bytes = fs::read(&log_path).expect("log exists");
    let spans = record_spans(&bytes);
    assert_eq!(spans.len(), g.units);
    assert!(spans.len() >= 3, "need three records to damage");

    // (a) Bit-flip one payload byte of the first record: digest mismatch.
    bytes[spans[0].start + HEADER_LEN + 10] ^= 0x01;
    // (b) Rewrite the second record's seed header word: valid frame,
    //     wrong run — a foreign record, not a corrupt one.
    let seed_off = spans[1].start + 16;
    bytes[seed_off..seed_off + 8].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
    // (c) Tear the last record mid-header, as a crash during append would.
    let last = spans.last().unwrap().clone();
    bytes.truncate(last.start + HEADER_LEN / 2);
    fs::write(&log_path, &bytes).expect("plant damage");

    let resumed = campaign
        .run_checkpointed_jobs(1, &CheckpointOptions::resume(&dir))
        .expect("resume completes despite damage");
    let exp = export::to_json(&resumed.db).expect("export serializes");
    assert_eq!(exp, g.export, "damaged units recomputed to golden bytes");

    let r = resumed.resume.expect("accounting present");
    assert_eq!(r.corrupt_records, 2, "bit-flip + torn tail");
    assert_eq!(r.foreign_records, 1, "seed-mismatched record");
    assert_eq!(r.restored_units, g.units - 3);
    assert_eq!(r.recomputed_units, 3);
    assert!(!r.notes.is_empty(), "scan explains what it rejected");

    // Damage is surfaced in the *exported* integrity report too…
    let exported = resumed
        .integrity
        .resume
        .as_ref()
        .expect("damage promotes resume accounting into the integrity export");
    assert!(exported.saw_damage());
    // …and stripping that block leaves a report byte-identical to golden.
    let mut cleaned = resumed.integrity.clone();
    cleaned.resume = None;
    let cleaned_json =
        serde_json::to_string_pretty(&cleaned).expect("integrity serializes");
    assert_eq!(cleaned_json, g.integrity);

    // The resume compacted the log: damage is healed out on disk, and the
    // survivors plus recomputed units frame cleanly.
    let healed = fs::read(&log_path).expect("log exists");
    assert_eq!(record_spans(&healed).len(), g.units);
}

/// Resuming a fully complete log is a pure replay: nothing recomputed,
/// nothing rejected, golden bytes out.
#[test]
fn resume_of_complete_log_recomputes_nothing() {
    let seed = 42;
    let g = golden(seed);
    let dir = scratch("complete-replay");
    let campaign = Campaign::new(tiny(seed));
    campaign
        .run_checkpointed_jobs(1, &CheckpointOptions::fresh(&dir))
        .expect("clean run completes");
    let resumed = campaign
        .run_checkpointed_jobs(1, &CheckpointOptions::resume(&dir))
        .expect("replay completes");
    let (exp, integ) = export_bytes(&resumed);
    assert_eq!(exp, g.export);
    assert_eq!(integ, g.integrity);
    let r = resumed.resume.expect("accounting present");
    assert_eq!(r.restored_units, g.units);
    assert_eq!(r.recomputed_units, 0);
}

mod prefix_proptest {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    struct Setup {
        export: String,
        integrity: String,
        log: Vec<u8>,
        spans: Vec<std::ops::Range<usize>>,
    }

    /// One full checkpointed run, shared across proptest cases: the log
    /// bytes are the universe every prefix is cut from.
    fn setup() -> &'static Setup {
        static S: OnceLock<Setup> = OnceLock::new();
        S.get_or_init(|| {
            let seed = 42;
            let dir = scratch("prefix-universe");
            let campaign = Campaign::new(tiny(seed));
            let outcome = campaign
                .run_checkpointed_jobs(1, &CheckpointOptions::fresh(&dir))
                .expect("universe run completes");
            let (export, integrity) = export_bytes(&outcome);
            let log = fs::read(dir.join(LOG_NAME)).expect("log exists");
            let spans = record_spans(&log);
            Setup { export, integrity, log, spans }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Resume after an arbitrary completed-unit prefix of the log is
        /// byte-identical to a cold run — the core crash-safety theorem,
        /// sampled across prefix lengths (0 = empty log included).
        #[test]
        fn resume_from_any_completed_prefix_is_byte_identical(frac in 0.0f64..1.0) {
            let s = setup();
            let n = s.spans.len();
            let keep = ((n + 1) as f64 * frac) as usize % (n + 1);
            let cut = if keep == 0 { 0 } else { s.spans[keep - 1].end };
            let dir = scratch(&format!("prefix-{keep}"));
            fs::write(dir.join(LOG_NAME), &s.log[..cut]).expect("plant prefix");
            let campaign = Campaign::new(tiny(42));
            let resumed = campaign
                .run_checkpointed_jobs(1, &CheckpointOptions::resume(&dir))
                .expect("prefix resume completes");
            let (exp, integ) = export_bytes(&resumed);
            prop_assert_eq!(exp, s.export.clone());
            prop_assert_eq!(integ, s.integrity.clone());
            let r = resumed.resume.expect("accounting present");
            prop_assert_eq!(r.restored_units, keep);
            prop_assert_eq!(r.recomputed_units, n - keep);
        }
    }
}
