//! Multiplicative per-operator tuning knobs for the scenario layer.
//!
//! A scenario reuses an operator *slot* (its link configurations, beam
//! profile, handover distribution — the parameter family calibrated
//! against the paper) and scales the deployment densities and
//! upgrade-policy aggressiveness per technology. The neutral tuning
//! (every factor 1.0) is an exact no-op: `x * 1.0 == x` bit-for-bit in
//! IEEE-754, and every scaled quantity is re-clamped to the range it
//! already occupied, so the paper scenario stays byte-identical to the
//! pre-scenario code path.

use crate::load::LoadScale;
use wheels_radio::band::Technology;

/// Per-technology multiplicative overrides for one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorTuning {
    /// Multiplier on layer coverage fraction, [`Technology::ALL`] order.
    pub coverage_scale: [f64; 5],
    /// Multiplier on cell spacing (larger = sparser), [`Technology::ALL`]
    /// order.
    pub spacing_scale: [f64; 5],
    /// Multiplier on the upgrade-policy promotion probability,
    /// [`Technology::ALL`] order.
    pub promotion_scale: [f64; 5],
    /// Multiplicative overrides on the hidden load process (congestion
    /// tuning), applied to every [`crate::load::LoadParams`] the
    /// operator's probes use.
    pub load: LoadScale,
}

impl OperatorTuning {
    /// The identity tuning: every factor 1.0 (exact no-op).
    pub const NEUTRAL: OperatorTuning = OperatorTuning {
        coverage_scale: [1.0; 5],
        spacing_scale: [1.0; 5],
        promotion_scale: [1.0; 5],
        load: LoadScale::NEUTRAL,
    };

    /// Coverage multiplier for `tech`.
    pub fn coverage(&self, tech: Technology) -> f64 {
        self.coverage_scale[tech_pos(tech)]
    }

    /// Spacing multiplier for `tech`.
    pub fn spacing(&self, tech: Technology) -> f64 {
        self.spacing_scale[tech_pos(tech)]
    }

    /// Promotion-probability multiplier for `tech`.
    pub fn promotion(&self, tech: Technology) -> f64 {
        self.promotion_scale[tech_pos(tech)]
    }
}

impl Default for OperatorTuning {
    fn default() -> Self {
        Self::NEUTRAL
    }
}

fn tech_pos(tech: Technology) -> usize {
    Technology::ALL
        .iter()
        .position(|&t| t == tech)
        .expect("known technology")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_is_all_ones() {
        let t = OperatorTuning::default();
        for tech in Technology::ALL {
            assert_eq!(t.coverage(tech), 1.0);
            assert_eq!(t.spacing(tech), 1.0);
            assert_eq!(t.promotion(tech), 1.0);
        }
        assert_eq!(t.load, LoadScale::NEUTRAL);
    }
}
