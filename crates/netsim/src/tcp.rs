//! Fluid TCP over a time-varying bottleneck with a droptail buffer.
//!
//! The paper measures single-connection nuttcp/CUBIC throughput sampled at
//! 500 ms (§5). At that timescale a packet-level simulation adds nothing
//! but cost, so we use the standard fluid abstraction: a congestion window
//! paced over the smoothed RTT into a bottleneck queue served at the RAN's
//! instantaneous capacity. Queue overflow triggers a congestion-control
//! loss event (at most once per RTT); a capacity blackout long enough to
//! stall delivery triggers an RTO.

/// TCP maximum segment size used for window accounting, bytes.
pub const MSS: f64 = 1_448.0;

/// Initial congestion window, bytes (RFC 6928: 10 segments).
pub const INIT_CWND: f64 = 10.0 * MSS;

/// A congestion-control algorithm driving a [`FluidTcp`] flow.
pub trait CongestionControl {
    /// Current congestion window, bytes.
    fn cwnd_bytes(&self) -> f64;
    /// `acked` bytes were delivered at time `now_s` with RTT `rtt_s`.
    fn on_ack(&mut self, now_s: f64, acked_bytes: f64, rtt_s: f64);
    /// A loss event (triple-dup-ack equivalent) at `now_s`.
    fn on_loss(&mut self, now_s: f64);
    /// A retransmission timeout at `now_s`.
    fn on_timeout(&mut self, now_s: f64);
    /// Algorithm name ("cubic", "reno").
    fn name(&self) -> &'static str;
}

/// Result of advancing a flow by one tick.
#[derive(Debug, Clone, Copy)]
pub struct TickOutcome {
    /// Bytes delivered to the application in this tick.
    pub delivered_bytes: f64,
    /// Current RTT including queueing delay, seconds.
    pub rtt_s: f64,
    /// Whether a loss event fired in this tick.
    pub lost: bool,
}

/// A single backlogged TCP flow (sender always has data).
pub struct FluidTcp {
    cc: Box<dyn CongestionControl + Send>,
    queue_bytes: f64,
    total_delivered: f64,
    last_loss_s: f64,
    blackout_since: Option<f64>,
    srtt_s: f64,
}

/// Bottleneck buffer depth in seconds of drain time at current capacity —
/// cellular gear is famously bufferbloated.
const BUFFER_DRAIN_S: f64 = 0.8;
/// Minimum buffer, bytes (even tiny links have real buffers).
const MIN_BUFFER_BYTES: f64 = 96_000.0;
/// Maximum buffer, bytes: gigabit-class links have time-shallow buffers
/// (a 0.8 s drain at 3.5 Gbps would be 350 MB — no real eNB carries that,
/// and it would make CUBIC's post-loss recovery take minutes).
const MAX_BUFFER_BYTES: f64 = 12_000_000.0;
/// Capacity below this is treated as a blackout (handover blanking).
const BLACKOUT_MBPS: f64 = 1e-3;
/// Blackout longer than this triggers an RTO.
const RTO_S: f64 = 1.5;

impl FluidTcp {
    /// Create a flow driven by the given congestion controller.
    pub fn new(cc: Box<dyn CongestionControl + Send>) -> Self {
        FluidTcp {
            cc,
            queue_bytes: 0.0,
            total_delivered: 0.0,
            last_loss_s: f64::NEG_INFINITY,
            blackout_since: None,
            srtt_s: 0.05,
        }
    }

    /// Advance the flow by `dt_s` at time `now_s`, with the bottleneck
    /// serving `capacity_mbps` and a propagation RTT of `base_rtt_s`.
    pub fn tick(
        &mut self,
        now_s: f64,
        dt_s: f64,
        capacity_mbps: f64,
        base_rtt_s: f64,
    ) -> TickOutcome {
        debug_assert!(dt_s > 0.0);
        if capacity_mbps <= BLACKOUT_MBPS {
            let since = *self.blackout_since.get_or_insert(now_s);
            if now_s - since >= RTO_S {
                self.cc.on_timeout(now_s);
                self.blackout_since = Some(now_s); // back off repeatedly
            }
            return TickOutcome {
                delivered_bytes: 0.0,
                rtt_s: base_rtt_s + 1.0,
                lost: false,
            };
        }
        self.blackout_since = None;

        let cap_bps = crate::mbps_to_bps(capacity_mbps);
        let qmax = (cap_bps * BUFFER_DRAIN_S).clamp(MIN_BUFFER_BYTES, MAX_BUFFER_BYTES);
        let rtt = base_rtt_s + self.queue_bytes / cap_bps;
        self.srtt_s = 0.9 * self.srtt_s + 0.1 * rtt;

        let send_rate = self.cc.cwnd_bytes() / self.srtt_s;
        let arrivals = send_rate * dt_s;
        let service = cap_bps * dt_s;
        let delivered = (self.queue_bytes + arrivals).min(service);
        self.queue_bytes = (self.queue_bytes + arrivals - delivered).max(0.0);

        let mut lost = false;
        if self.queue_bytes > qmax {
            self.queue_bytes = qmax;
            if now_s - self.last_loss_s > self.srtt_s {
                self.cc.on_loss(now_s);
                self.last_loss_s = now_s;
                lost = true;
            }
        }
        if delivered > 0.0 {
            self.cc.on_ack(now_s, delivered, rtt);
        }
        self.total_delivered += delivered;
        TickOutcome {
            delivered_bytes: delivered,
            rtt_s: rtt,
            lost,
        }
    }

    /// Total bytes delivered so far.
    pub fn total_delivered_bytes(&self) -> f64 {
        self.total_delivered
    }

    /// Current queueing backlog, bytes.
    pub fn queue_bytes(&self) -> f64 {
        self.queue_bytes
    }

    /// Smoothed RTT estimate, seconds.
    pub fn srtt_s(&self) -> f64 {
        self.srtt_s
    }

    /// Name of the congestion controller in use.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }
}

impl std::fmt::Debug for FluidTcp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FluidTcp")
            .field("cc", &self.cc.name())
            .field("queue_bytes", &self.queue_bytes)
            .field("srtt_s", &self.srtt_s)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cubic::Cubic;
    use crate::reno::Reno;

    fn run_steady(cc: Box<dyn CongestionControl + Send>, cap_mbps: f64, secs: f64) -> f64 {
        let mut flow = FluidTcp::new(cc);
        let dt = 0.02;
        let mut t = 0.0;
        while t < secs {
            flow.tick(t, dt, cap_mbps, 0.05);
            t += dt;
        }
        crate::bps_to_mbps(flow.total_delivered_bytes() / secs)
    }

    #[test]
    fn cubic_fills_steady_link() {
        // 30 s at 100 Mbps: should achieve most of the capacity.
        let avg = run_steady(Box::new(Cubic::new()), 100.0, 30.0);
        assert!((80.0..=100.5).contains(&avg), "avg {avg}");
    }

    #[test]
    fn reno_fills_small_link() {
        let avg = run_steady(Box::new(Reno::new()), 10.0, 30.0);
        assert!((8.0..=10.1).contains(&avg), "avg {avg}");
    }

    #[test]
    fn cubic_beats_reno_on_fat_long_pipe() {
        // The motivation for CUBIC: high BDP recovery. Vary capacity to
        // force repeated loss/recovery cycles.
        let run_varying = |cc: Box<dyn CongestionControl + Send>| {
            let mut flow = FluidTcp::new(cc);
            let dt = 0.02;
            let mut t: f64 = 0.0;
            while t < 60.0 {
                let cap = if ((t / 5.0) as u64).is_multiple_of(2) { 600.0 } else { 150.0 };
                flow.tick(t, dt, cap, 0.08);
                t += dt;
            }
            flow.total_delivered_bytes()
        };
        let cubic = run_varying(Box::<Cubic>::default());
        let reno = run_varying(Box::<Reno>::default());
        assert!(cubic > reno, "cubic {cubic} vs reno {reno}");
    }

    #[test]
    fn blackout_stalls_then_rto() {
        let mut flow = FluidTcp::new(Box::new(Cubic::new()));
        let dt = 0.02;
        let mut t = 0.0;
        while t < 5.0 {
            flow.tick(t, dt, 50.0, 0.05);
            t += dt;
        }
        let cwnd_before = flow.cc.cwnd_bytes();
        while t < 8.0 {
            let out = flow.tick(t, dt, 0.0, 0.05);
            assert_eq!(out.delivered_bytes, 0.0);
            t += dt;
        }
        assert!(flow.cc.cwnd_bytes() < cwnd_before, "RTO should shrink cwnd");
    }

    #[test]
    fn queueing_delay_bounded_by_buffer() {
        let mut flow = FluidTcp::new(Box::new(Cubic::new()));
        let dt = 0.02;
        let mut t = 0.0;
        let mut max_rtt: f64 = 0.0;
        while t < 20.0 {
            let out = flow.tick(t, dt, 20.0, 0.05);
            max_rtt = max_rtt.max(out.rtt_s);
            t += dt;
        }
        // base 50 ms + at most ~800 ms of buffer.
        assert!(max_rtt < 1.0, "{max_rtt}");
        assert!(max_rtt > 0.2, "bufferbloat should appear: {max_rtt}");
    }

    #[test]
    fn losses_occur_under_saturation() {
        let mut flow = FluidTcp::new(Box::new(Cubic::new()));
        let dt = 0.02;
        let mut t = 0.0;
        let mut losses = 0;
        while t < 30.0 {
            if flow.tick(t, dt, 25.0, 0.05).lost {
                losses += 1;
            }
            t += dt;
        }
        assert!(losses >= 1, "a backlogged flow must hit the buffer limit");
    }
}
