//! D5 must fire: unwrapping `partial_cmp` panics the worker the first
//! time a NaN reaches the comparison (outside any ordering sink, so D1
//! stays silent and the finding is attributed to D5).

use std::cmp::Ordering;

fn is_less(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).unwrap() == Ordering::Less
}

fn rank(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).expect("samples are finite")
}

fn chained(a: f64, b: f64, i: u64, j: u64) -> Ordering {
    a.partial_cmp(&b)
        .unwrap()
        .then_with(|| i.cmp(&j))
}
