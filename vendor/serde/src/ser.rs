//! Streaming JSON emission.
//!
//! [`JsonWriter`] is the single writer behind every JSON byte this
//! workspace produces. Values are written straight into one growing
//! buffer — no intermediate [`Value`] nodes, no per-key `String`
//! allocations, no per-number `format!` temporaries — in exactly the
//! layout of the historical tree writer (compact, or 2-space pretty in
//! serde_json's style). [`Serialize::stream`](crate::Serialize::stream)
//! drives it; the derive macros generate direct visitor-style emission,
//! and hand-written `Serialize` impls fall back to lowering their subtree
//! to a [`Value`] (byte-identical either way, just slower).
//!
//! The writer can also drain into an [`std::io::Write`] sink with a
//! bounded (64 KiB) in-memory buffer, so arbitrarily large exports never
//! hold a second whole-file copy in memory.
//!
//! ## Byte contract
//!
//! The output is pinned by the campaign's byte-equivalence gates:
//!
//! * objects/arrays: `{"k":v}` compact; pretty opens with a newline,
//!   indents 2 spaces per depth, and puts one space after `:`;
//! * empty containers are `{}` / `[]` with no inner newline;
//! * integral floats with `|x| < 1e15` print as `1.0` (so float-ness
//!   survives a round-trip), everything else as Rust's shortest
//!   round-trip `Display`; non-finite floats print `null`;
//! * parsed numbers ([`Num::Raw`]) re-emit their original token.

use core::fmt::Write as _;

use crate::{Num, Value};

/// Bytes buffered before an io-backed writer drains to its sink.
const IO_FLUSH_LEN: usize = 64 * 1024;

/// Shared integral-float layout check: serde_json writes integral floats
/// as `1.0`, not `1`, so the number's float-ness survives a round-trip.
/// The magnitude guard keeps `{:.1}` from expanding huge floats into
/// long non-round-trip decimal strings.
///
/// Implemented per float width (the `1e15` literal must compare in the
/// value's own type — `f32` and `f64` round the threshold differently).
pub trait JsonFloat: Copy + core::fmt::Display {
    /// True when the value should print with the fixed `x.0` layout.
    fn is_json_integral(self) -> bool;
    /// True when the value has a JSON number form at all.
    fn is_json_finite(self) -> bool;
    /// The value as `f64` (lossless for both widths; used only on the
    /// integral fast path where the magnitude is below 2^53 anyway).
    fn widen(self) -> f64;
}

impl JsonFloat for f64 {
    fn is_json_integral(self) -> bool {
        self.fract() == 0.0 && self.abs() < 1e15
    }
    fn is_json_finite(self) -> bool {
        self.is_finite()
    }
    fn widen(self) -> f64 {
        self
    }
}

impl JsonFloat for f32 {
    fn is_json_integral(self) -> bool {
        self.fract() == 0.0 && self.abs() < 1e15
    }
    fn is_json_finite(self) -> bool {
        self.is_finite()
    }
    fn widen(self) -> f64 {
        f64::from(self)
    }
}

/// Append `x` in decimal. One pass into a stack buffer — `core::fmt`'s
/// per-call dispatch dominates tokens this small, and the export writes
/// millions of them.
pub fn write_u64(out: &mut String, mut x: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    out.push_str(core::str::from_utf8(&buf[i..]).expect("decimal digits are ascii"));
}

/// Append `x` in decimal (signed twin of [`write_u64`]).
pub fn write_i64(out: &mut String, x: i64) {
    if x < 0 {
        out.push('-');
    }
    write_u64(out, x.unsigned_abs());
}

/// Append the JSON token for a finite float to `out` (one shared
/// implementation for `f32` and `f64`; see [`JsonFloat`]). Formats
/// directly into the output buffer — no intermediate `String`.
///
/// Integral values take a digits-then-`.0` fast path: the magnitude is
/// below `1e15` < 2^53, so the integer part is exactly representable and
/// the digits match `{x:.1}` byte-for-byte (including the `-0.0` sign).
/// Everything else goes through Rust's shortest round-trip `Display`.
pub fn write_float<T: JsonFloat>(out: &mut String, x: T) {
    if x.is_json_integral() {
        let v = x.widen();
        if v.is_sign_negative() {
            out.push('-');
        }
        write_u64(out, v.abs() as u64);
        out.push_str(".0");
    } else {
        write!(out, "{x}").expect("fmt to String is infallible");
    }
}

/// Append the JSON string literal for `s` (quotes + escapes) to `out`.
///
/// Clean runs (no `"`, `\`, or control bytes — the overwhelmingly common
/// case for keys and enum labels) are copied with one bulk `push_str`.
/// Every byte that needs escaping is ASCII, so slicing at its index
/// always lands on a char boundary; multi-byte UTF-8 passes through the
/// `>= 0x20` test untouched.
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b >= 0x20 && b != b'"' && b != b'\\' {
            continue;
        }
        out.push_str(&s[start..i]);
        match b {
            b'"' => out.push_str("\\\""),
            b'\\' => out.push_str("\\\\"),
            b'\n' => out.push_str("\\n"),
            b'\r' => out.push_str("\\r"),
            b'\t' => out.push_str("\\t"),
            0x08 => out.push_str("\\b"),
            0x0c => out.push_str("\\f"),
            b => {
                write!(out, "\\u{:04x}", b).expect("fmt to String is infallible");
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Where finished bytes go: kept in the buffer, or drained to an io sink.
enum Sink<'w> {
    /// Accumulate everything in `buf`; [`JsonWriter::finish`] returns it.
    Buffer,
    /// Drain `buf` to the writer whenever it exceeds [`IO_FLUSH_LEN`].
    Io(&'w mut dyn std::io::Write),
}

/// The streaming JSON writer.
///
/// Call sequence per container: `begin_object` → (`key` → value)* →
/// `end_object`, and `begin_array` → (`elem` → value)* → `end_array`;
/// `key`/`elem` emit the separator and indentation for the entry they
/// precede. Leaf methods (`null`, `bool`, `f64`, …) emit one token.
/// Opening braces are deferred until the first entry so empty containers
/// collapse to `{}` / `[]`.
pub struct JsonWriter<'w> {
    buf: String,
    sink: Sink<'w>,
    io_err: Option<std::io::Error>,
    indent: Option<usize>,
    /// Current nesting depth: the constructor's base depth plus currently
    /// open containers.
    depth: usize,
    /// An opening delimiter not yet written (the container might still
    /// turn out empty).
    pending: Option<char>,
}

impl JsonWriter<'static> {
    /// A compact writer (`{"a":1}`) accumulating into a fresh buffer.
    pub fn compact() -> Self {
        Self::append_to(String::new(), None, 0)
    }

    /// A pretty writer (2-space indent, serde_json layout) accumulating
    /// into a fresh buffer.
    pub fn pretty() -> Self {
        Self::append_to(String::new(), Some(2), 0)
    }

    /// A writer that appends to an existing buffer, treating the value it
    /// writes as sitting at nesting depth `depth` (so parallel export
    /// workers can serialize fragments of a larger document).
    /// [`finish`](JsonWriter::finish) returns the buffer.
    pub fn append_to(buf: String, indent: Option<usize>, depth: usize) -> Self {
        JsonWriter {
            buf,
            sink: Sink::Buffer,
            io_err: None,
            indent,
            depth,
            pending: None,
        }
    }
}

impl<'w> JsonWriter<'w> {
    /// A writer that drains to `w` with a bounded in-memory buffer.
    /// Finish with [`finish_io`](JsonWriter::finish_io); io errors are
    /// sticky and reported there.
    pub fn to_io(w: &'w mut dyn std::io::Write, indent: Option<usize>) -> Self {
        JsonWriter {
            buf: String::with_capacity(IO_FLUSH_LEN + 1024),
            sink: Sink::Io(w),
            io_err: None,
            indent,
            depth: 0,
            pending: None,
        }
    }

    /// The accumulated buffer (buffer-backed writers).
    pub fn finish(self) -> String {
        debug_assert!(
            matches!(self.sink, Sink::Buffer),
            "finish() on an io-backed writer drops drained bytes; use finish_io()"
        );
        self.buf
    }

    /// Drain the remaining buffer and report any sticky io error
    /// (io-backed writers).
    pub fn finish_io(mut self) -> std::io::Result<()> {
        self.drain_to_sink();
        match self.io_err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------ plumbing

    fn drain_to_sink(&mut self) {
        if let Sink::Io(w) = &mut self.sink {
            if self.io_err.is_none() {
                if let Err(e) = w.write_all(self.buf.as_bytes()) {
                    self.io_err = Some(e);
                }
            }
            self.buf.clear();
        }
    }

    /// Drain to the io sink if the buffer has grown past the threshold.
    /// Called after leaf tokens and container closes — never between a
    /// separator and its value, so drained output is always a prefix of
    /// the final document.
    fn maybe_drain(&mut self) {
        if matches!(self.sink, Sink::Io(_)) && self.buf.len() >= IO_FLUSH_LEN {
            self.drain_to_sink();
        }
    }

    fn newline_indent(&mut self, depth: usize) {
        // '\n' followed by 64 spaces: one bulk push covers any realistic
        // depth; deeper nesting just loops.
        const PAD: &str = "\n                                                                ";
        if let Some(w) = self.indent {
            let n = depth * w;
            if n < PAD.len() {
                self.buf.push_str(&PAD[..1 + n]);
            } else {
                self.buf.push('\n');
                let mut left = n;
                while left > 0 {
                    let k = left.min(PAD.len() - 1);
                    self.buf.push_str(&PAD[1..1 + k]);
                    left -= k;
                }
            }
        }
    }

    /// Separator + indentation before an entry: the deferred opening
    /// delimiter if this is the container's first entry, `,` otherwise.
    fn sep_and_indent(&mut self) {
        match self.pending.take() {
            Some(open) => self.buf.push(open),
            None => self.buf.push(','),
        }
        self.newline_indent(self.depth);
    }

    fn open(&mut self, delim: char) {
        if let Some(prev) = self.pending.take() {
            // Misuse guard (a container opened directly inside another
            // without key()/elem()); keep the bytes sane anyway.
            self.buf.push(prev);
        }
        self.pending = Some(delim);
        self.depth += 1;
    }

    fn close(&mut self, open_delim: char, close_delim: char) {
        self.depth -= 1;
        match self.pending.take() {
            Some(_) => {
                // Nothing was written: the empty container form.
                self.buf.push(open_delim);
                self.buf.push(close_delim);
            }
            None => {
                self.newline_indent(self.depth);
                self.buf.push(close_delim);
            }
        }
        self.maybe_drain();
    }

    // ---------------------------------------------------------- containers

    /// Open an object. Pair with [`end_object`](JsonWriter::end_object).
    pub fn begin_object(&mut self) {
        self.open('{');
    }

    /// Emit the separator, indentation, and `"key":` for the next member.
    pub fn key(&mut self, key: &str) {
        self.sep_and_indent();
        escape_str(key, &mut self.buf);
        self.buf.push(':');
        if self.indent.is_some() {
            self.buf.push(' ');
        }
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) {
        self.close('{', '}');
    }

    /// Open an array. Pair with [`end_array`](JsonWriter::end_array).
    pub fn begin_array(&mut self) {
        self.open('[');
    }

    /// Emit the separator and indentation for the next array element.
    pub fn elem(&mut self) {
        self.sep_and_indent();
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) {
        self.close('[', ']');
    }

    // --------------------------------------------------------------- leaves

    /// `null`.
    pub fn null(&mut self) {
        self.buf.push_str("null");
        self.maybe_drain();
    }

    /// `true` / `false`.
    pub fn bool(&mut self, b: bool) {
        self.buf.push_str(if b { "true" } else { "false" });
        self.maybe_drain();
    }

    /// An `f64` number token (`null` for non-finite values, which have no
    /// JSON form; the simulation never produces them).
    pub fn f64(&mut self, x: f64) {
        if x.is_json_finite() {
            write_float(&mut self.buf, x);
        } else {
            self.buf.push_str("null");
        }
        self.maybe_drain();
    }

    /// An `f32` number token (same contract as [`f64`](JsonWriter::f64),
    /// formatted with `f32`'s own shortest round-trip `Display`).
    pub fn f32(&mut self, x: f32) {
        if x.is_json_finite() {
            write_float(&mut self.buf, x);
        } else {
            self.buf.push_str("null");
        }
        self.maybe_drain();
    }

    /// An unsigned integer token.
    pub fn u64(&mut self, x: u64) {
        write_u64(&mut self.buf, x);
        self.maybe_drain();
    }

    /// A signed integer token.
    pub fn i64(&mut self, x: i64) {
        write_i64(&mut self.buf, x);
        self.maybe_drain();
    }

    /// A pre-rendered token, written verbatim (parsed [`Num::Raw`]
    /// numbers — this is what makes parse→serialize byte-stable).
    pub fn raw(&mut self, token: &str) {
        self.buf.push_str(token);
        self.maybe_drain();
    }

    /// A string literal (quoted + escaped).
    pub fn str(&mut self, s: &str) {
        escape_str(s, &mut self.buf);
        self.maybe_drain();
    }

    /// Any [`Num`].
    pub fn num(&mut self, n: &Num) {
        match n {
            Num::F64(x) => self.f64(*x),
            Num::F32(x) => self.f32(*x),
            Num::U64(x) => self.u64(*x),
            Num::I64(x) => self.i64(*x),
            Num::Raw(s) => self.raw(s),
        }
    }

    /// Emit a whole [`Value`] tree (the fallback for hand-written
    /// `Serialize` impls, and the engine behind serde_json's tree path).
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.null(),
            Value::Bool(b) => self.bool(*b),
            Value::Num(n) => self.num(n),
            Value::Str(s) => self.str(s),
            Value::Array(items) => {
                self.begin_array();
                for item in items {
                    self.elem();
                    self.value(item);
                }
                self.end_array();
            }
            Value::Object(pairs) => {
                self.begin_object();
                for (key, item) in pairs {
                    self.key(key);
                    self.value(item);
                }
                self.end_object();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Serialize;

    #[test]
    fn compact_and_pretty_layout() {
        let build = |indent| {
            let mut w = JsonWriter::append_to(String::new(), indent, 0);
            w.begin_object();
            w.key("a");
            w.u64(1);
            w.key("b");
            w.begin_array();
            w.elem();
            w.f64(2.0);
            w.elem();
            w.null();
            w.end_array();
            w.key("c");
            w.begin_object();
            w.end_object();
            w.end_object();
            w.finish()
        };
        assert_eq!(build(None), "{\"a\":1,\"b\":[2.0,null],\"c\":{}}");
        assert_eq!(
            build(Some(2)),
            "{\n  \"a\": 1,\n  \"b\": [\n    2.0,\n    null\n  ],\n  \"c\": {}\n}"
        );
    }

    #[test]
    fn empty_containers_collapse() {
        let mut w = JsonWriter::pretty();
        w.begin_array();
        w.end_array();
        assert_eq!(w.finish(), "[]");
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.end_object();
        assert_eq!(w.finish(), "{}");
    }

    #[test]
    fn base_depth_indents_fragments() {
        let mut w = JsonWriter::append_to(String::new(), Some(2), 2);
        w.begin_object();
        w.key("x");
        w.u64(1);
        w.end_object();
        assert_eq!(w.finish(), "{\n      \"x\": 1\n    }");
    }

    #[test]
    fn float_layout_is_shared_between_widths() {
        for (want, x) in [("1.0", 1.0f64), ("0.1", 0.1), ("-2.5", -2.5)] {
            let mut out = String::new();
            write_float(&mut out, x);
            assert_eq!(out, want);
        }
        // Huge magnitudes skip the {:.1} path and still round-trip.
        let mut out = String::new();
        write_float(&mut out, -1e300);
        assert_eq!(out.parse::<f64>().unwrap(), -1e300);
        let mut out = String::new();
        write_float(&mut out, 2.0f32);
        assert_eq!(out, "2.0");
        let mut out = String::new();
        write_float(&mut out, 0.1f32);
        assert_eq!(out, "0.1");
    }

    #[test]
    fn integer_tokens_match_display() {
        for x in [0u64, 7, 10, 99, 12345678901234567890, u64::MAX] {
            let mut out = String::new();
            write_u64(&mut out, x);
            assert_eq!(out, x.to_string());
        }
        for x in [0i64, -1, 42, i64::MIN, i64::MAX] {
            let mut out = String::new();
            write_i64(&mut out, x);
            assert_eq!(out, x.to_string());
        }
    }

    #[test]
    fn integral_float_fast_path_matches_fixed_precision_fmt() {
        for x in [
            0.0f64,
            -0.0,
            1.0,
            -73.0,
            28822.0,
            1e14,
            -999999999999999.0,
            16_777_216.0,
        ] {
            let mut out = String::new();
            write_float(&mut out, x);
            assert_eq!(out, format!("{x:.1}"), "for {x}");
        }
    }

    #[test]
    fn escape_fast_path_and_escapes() {
        let cases = [
            ("plain key", "\"plain key\""),
            ("", "\"\""),
            ("q\"b\\c", "\"q\\\"b\\\\c\""),
            ("a\nb\tc\u{1}", "\"a\\nb\\tc\\u0001\""),
            ("héllo → 😀", "\"héllo → 😀\""),
        ];
        for (input, want) in cases {
            let mut out = String::new();
            escape_str(input, &mut out);
            assert_eq!(out, want);
        }
    }

    #[test]
    fn deep_indent_wraps_pad_buffer() {
        let mut w = JsonWriter::append_to(String::new(), Some(2), 40);
        w.begin_array();
        w.elem();
        w.u64(1);
        w.end_array();
        let s = w.finish();
        // Element sits at depth 41 → newline + 82 spaces.
        assert!(s.contains(&format!("\n{}1", " ".repeat(82))));
    }

    #[test]
    fn non_finite_floats_emit_null() {
        let mut w = JsonWriter::compact();
        w.begin_array();
        w.elem();
        w.f64(f64::NAN);
        w.elem();
        w.f32(f32::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), "[null,null]");
    }

    #[test]
    fn io_sink_drains_incrementally_and_matches_buffer() {
        // A document comfortably larger than the flush threshold must
        // arrive byte-identical through the bounded io path.
        let big: Vec<u64> = (0..40_000).collect();
        let mut w = JsonWriter::pretty();
        big.stream(&mut w);
        let expect = w.finish();
        assert!(expect.len() > IO_FLUSH_LEN);

        let mut sink = Vec::new();
        let mut w = JsonWriter::to_io(&mut sink, Some(2));
        big.stream(&mut w);
        w.finish_io().unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), expect);
    }

    #[test]
    fn io_errors_are_sticky() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::Other, "boom"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut broken = Broken;
        let mut w = JsonWriter::to_io(&mut broken, None);
        w.str("x");
        assert!(w.finish_io().is_err());
    }
}
