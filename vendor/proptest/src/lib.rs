//! Offline stand-in for `proptest`.
//!
//! Covers the slice of the proptest API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`, range/tuple/`Just`/union
//! strategies, `prop::collection::vec`, `prop::option::of`, `any::<T>()`,
//! and the `proptest!` / `prop_assert!` / `prop_oneof!` macros. Each test
//! draws its cases from a [`rand::rngs::SmallRng`] seeded from the fully
//! qualified test name, so runs are deterministic across invocations and
//! machines. There is no shrinking: a failing case panics with the values
//! already bound, which is enough for CI triage here.

#![forbid(unsafe_code)]

/// Core strategy trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f` (mirrors `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty set of alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut SmallRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` support for primitives.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary_draw(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_draw(rng: &mut SmallRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_draw(rng: &mut SmallRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The whole-domain strategy for `T` (mirrors `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary_draw(rng)
        }
    }
}

/// `prop::collection` — sized containers of generated elements.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` of `element`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy needs a non-empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` — optional values.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    /// `Some(inner)` about 3/4 of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Per-test configuration and deterministic seeding.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Mirrors `proptest::test_runner::Config` for the fields used here.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite fast
            // while still exercising each property across distinct inputs.
            Config { cases: 64 }
        }
    }

    /// Deterministic per-test generator, seeded from the fully qualified
    /// test name (FNV-1a) so every run draws the same case sequence.
    pub fn rng_for_test(name: &str) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// The usual star-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate as prop;
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0u64..100, p in 0.0f64..1.0) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// `assert!` that names the property-test contract at the failure site.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(::std::vec![
            $({
                let __b: ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> =
                    ::std::boxed::Box::new($s);
                __b
            }),+
        ])
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for_test("ranges");
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_and_collections_cover_options() {
        let mut rng = crate::test_runner::rng_for_test("oneof");
        let s = prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..10);
        let mut seen = [false; 3];
        for _ in 0..100 {
            for v in s.generate(&mut rng) {
                assert!(v == 1 || v == 2);
                seen[v as usize] = true;
            }
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_patterns(x in 0u64..50, opt in prop::option::of(0.0f64..1.0)) {
            prop_assert!(x < 50);
            if let Some(p) = opt {
                prop_assert!((0.0..1.0).contains(&p), "{p}");
            }
        }
    }
}
