//! One-pass columnar analysis index over a [`ConsolidatedDb`].
//!
//! Every figure and table used to re-scan `db.records` and re-sort raw
//! samples on each `compute()` call. The [`AnalysisIndex`] does that work
//! once: it partitions the test records by
//! `(operator × test kind × static/driving)`, lays the driving KPI
//! samples out as columns per `(operator × direction)`, pre-sorts the
//! canonical metric columns (throughput, RTT, RSRP, SINR, speed) into
//! memoized [`Ecdf`]s, and pre-aggregates the distance-weighted
//! technology shares and concurrent-test pairings. Figures consume the
//! index through typed accessors and never touch (let alone sort) the raw
//! sample streams again.
//!
//! Heterogeneous slice queries (filter by technology, server kind,
//! timezone, or speed bin — the long tail of Fig. 4/5/7/8 cells) go
//! through [`AnalysisIndex::query`], a lazily filled memo table. The
//! memoized value is a pure function of the query key (the backing
//! columns are immutable and [`Ecdf::new`] sorts, so fill order is
//! irrelevant), which keeps report generation byte-identical no matter
//! how many worker threads race on the cache.

use std::collections::BTreeMap;
// lint:allow(D2): keyed lookups and a memo cache only; the one iterated
// hash map (`by_time` below) has its keys sorted before use, and the
// iterated pairing map is the ordered `pairs` BTreeMap
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use wheels_geo::timezone::Timezone;
use wheels_geo::SpeedBin;
use wheels_netsim::server::ServerKind;
use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;
use wheels_ran::Direction;
use wheels_xcal::database::{ConsolidatedDb, TestKind, TestRecord};

use crate::ecdf::Ecdf;
use crate::figures::rtt_with_context;
use crate::stats::pearson;

/// Distance-weighted technology shares, one entry per technology (the
/// same shape [`crate::figures::tech_shares`] produces).
pub type Shares = [(Technology, f64); 5];

/// Pre-aggregated coverage shares for one operator (Fig. 1 / Fig. 2).
#[derive(Debug, Clone)]
pub struct OpShares {
    /// Passive handover-logger shares (zeros when no passive log).
    pub passive: Shares,
    /// Active shares over all driving tests (any kind).
    pub active_all: Shares,
    /// Shares over driving throughput tests, per direction.
    pub by_direction: [Shares; 2],
    /// Shares over all driving tests, per timezone ([`Timezone::ALL`] order).
    pub by_timezone: [Shares; 4],
    /// Shares over all driving tests, per speed bin ([`SpeedBin::ALL`] order).
    pub by_speed: [Shares; 3],
}

/// The six Table 2 KPI columns, in the paper's column order.
pub const KPI_COLUMNS: usize = 6;

/// Index of the vehicle-speed column in [`AnalysisIndex::kpi_correlations`]
/// (Fig. 7 reports the same Pearson r as Table 2's speed column).
pub const KPI_SPEED: usize = 4;

/// Canonical pre-sorted metric slices the index memoizes eagerly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slice {
    /// 500 ms throughput samples of one `(op, direction, static?)` cell.
    Tput {
        /// Operator.
        op: Operator,
        /// Traffic direction.
        dir: Direction,
        /// Static city baselines (true) or driving tests (false).
        is_static: bool,
    },
    /// Raw ping RTTs of one `(op, static?)` cell.
    Rtt {
        /// Operator.
        op: Operator,
        /// Static city baselines (true) or driving tests (false).
        is_static: bool,
    },
    /// RSRP of driving throughput samples for `(op, direction)`.
    Rsrp {
        /// Operator.
        op: Operator,
        /// Traffic direction.
        dir: Direction,
    },
    /// SINR of driving throughput samples for `(op, direction)`.
    Sinr {
        /// Operator.
        op: Operator,
        /// Traffic direction.
        dir: Direction,
    },
    /// Vehicle speed (mph) of driving throughput samples.
    Speed {
        /// Operator.
        op: Operator,
        /// Traffic direction.
        dir: Direction,
    },
}

/// Which metric a memoized [`AnalysisIndex::query`] draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMetric {
    /// Driving downlink throughput samples, Mbps.
    TputDl,
    /// Driving uplink throughput samples, Mbps.
    TputUl,
    /// Driving RTT samples (paired with their KPI window), ms.
    Rtt,
}

/// A memoized ECDF query: one metric, optionally filtered. `None` filters
/// match everything, so `EcdfQuery::metric(op, m)` is the whole column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcdfQuery {
    /// Operator.
    pub op: Operator,
    /// Metric column.
    pub metric: QueryMetric,
    /// Keep only samples served by this technology.
    pub tech: Option<Technology>,
    /// Keep only samples of tests against this server kind.
    pub server: Option<ServerKind>,
    /// Keep only samples taken in this timezone.
    pub tz: Option<Timezone>,
    /// Keep only samples in this vehicle-speed bin.
    pub bin: Option<SpeedBin>,
}

impl EcdfQuery {
    /// An unfiltered query over one metric column.
    pub fn metric(op: Operator, metric: QueryMetric) -> Self {
        EcdfQuery {
            op,
            metric,
            tech: None,
            server: None,
            tz: None,
            bin: None,
        }
    }

    /// Restrict to one technology.
    pub fn tech(mut self, tech: Technology) -> Self {
        self.tech = Some(tech);
        self
    }

    /// Restrict to one server kind.
    pub fn server(mut self, server: ServerKind) -> Self {
        self.server = Some(server);
        self
    }

    /// Restrict to one timezone.
    pub fn tz(mut self, tz: Timezone) -> Self {
        self.tz = Some(tz);
        self
    }

    /// Restrict to one speed bin.
    pub fn bin(mut self, bin: SpeedBin) -> Self {
        self.bin = Some(bin);
        self
    }
}

/// Column-major view of the driving throughput-test KPI samples of one
/// `(operator, direction)`: row i is the i-th sample in database order.
#[derive(Debug, Default)]
struct KpiColumns {
    /// Throughput, Mbps; NaN encodes "no bulk transfer in this window".
    tput: Vec<f64>,
    tech: Vec<Technology>,
    server: Vec<ServerKind>,
    tz: Vec<Timezone>,
    speed_mph: Vec<f64>,
    rsrp_dbm: Vec<f32>,
    sinr_db: Vec<f32>,
    mcs: Vec<u8>,
    ca: Vec<u8>,
    bler: Vec<f32>,
    hos: Vec<u8>,
}

/// Column-major view of the driving RTT samples of one operator, each
/// paired with its covering 500 ms KPI window.
#[derive(Debug, Default)]
struct RttColumns {
    rtt_ms: Vec<f64>,
    tech: Vec<Technology>,
    server: Vec<ServerKind>,
    speed_mph: Vec<f64>,
}

struct ShareAcc {
    passive: Shares,
    active_all: [f64; 5],
    by_direction: [[f64; 5]; 2],
    by_timezone: [[f64; 5]; 4],
    by_speed: [[f64; 5]; 3],
}

fn zero_shares() -> Shares {
    let mut s = [(Technology::Lte, 0.0); 5];
    for (i, t) in Technology::ALL.iter().enumerate() {
        s[i].0 = *t;
    }
    s
}

fn normalize(meters: &[f64; 5]) -> Shares {
    let total: f64 = meters.iter().sum::<f64>().max(1e-9);
    let mut out = zero_shares();
    for i in 0..5 {
        out[i].1 = meters[i] / total;
    }
    out
}

fn tech_idx(t: Technology) -> usize {
    Technology::ALL
        .iter()
        .position(|&x| x == t)
        .expect("known technology")
}

fn dir_idx(dir: Direction) -> usize {
    match dir {
        Direction::Downlink => 0,
        Direction::Uplink => 1,
    }
}

fn tz_idx(tz: Timezone) -> usize {
    Timezone::ALL
        .iter()
        .position(|&z| z == tz)
        .expect("known timezone")
}

fn bin_idx(bin: SpeedBin) -> usize {
    SpeedBin::ALL
        .iter()
        .position(|&b| b == bin)
        .expect("known speed bin")
}

/// The direction of a throughput test kind, if it is one.
fn tput_dir(kind: TestKind) -> Option<Direction> {
    kind.direction()
}

/// The columnar analysis index. Build once with
/// [`AnalysisIndex::build`], then hand `&AnalysisIndex` to every figure.
pub struct AnalysisIndex<'a> {
    db: &'a ConsolidatedDb,
    /// The operator panel, defining per-operator column/row order.
    ops: Vec<Operator>,
    /// Record indices per (op, kind, is_static), in database order.
    parts: HashMap<(Operator, TestKind, bool), Vec<u32>>,
    /// Driving throughput-test KPI columns, indexed `op_index * 2 + dir_idx`.
    tput: Vec<KpiColumns>,
    /// Driving RTT columns, indexed by `op_index`.
    rtt: Vec<RttColumns>,
    /// Coverage-share aggregations, [`AnalysisIndex::ops`] order.
    shares: Vec<OpShares>,
    /// Eagerly memoized canonical ECDFs.
    canon: HashMap<Slice, Arc<Ecdf>>,
    /// Table 2 Pearson r per (op, dir): [RSRP, MCS, CA, BLER, speed, HO].
    corr: HashMap<(Operator, Direction), [f64; KPI_COLUMNS]>,
    /// Concurrent throughput tests keyed by (op, rounded start), per
    /// direction (Fig. 6). Last record wins on key collisions, matching
    /// the previous per-figure construction. Ordered so Fig. 6 can
    /// iterate it directly without leaking hash order.
    pairs: [BTreeMap<(Operator, i64), u32>; 2],
    /// Concurrent all-operator test groups per direction (MPTCP what-if):
    /// record indices in [`AnalysisIndex::ops`] order, sorted by start
    /// time.
    triples: [Vec<Vec<u32>>; 2],
    /// Lazily memoized heterogeneous slice queries.
    cache: Mutex<HashMap<EcdfQuery, Arc<Ecdf>>>,
}

impl<'a> AnalysisIndex<'a> {
    /// Build the index for the paper's three-operator panel.
    pub fn build(db: &'a ConsolidatedDb) -> AnalysisIndex<'a> {
        Self::build_for(db, Operator::ALL.to_vec())
    }

    /// Build the index for an explicit operator panel, with one pass over
    /// the records (plus one sort per canonical metric column). Figures
    /// iterate [`AnalysisIndex::ops`], so the panel defines every
    /// per-operator row they render.
    pub fn build_for(db: &'a ConsolidatedDb, ops: Vec<Operator>) -> AnalysisIndex<'a> {
        let op_idx = |op: Operator| -> usize {
            ops.iter().position(|&o| o == op).expect("operator in panel")
        };
        let mut parts: HashMap<(Operator, TestKind, bool), Vec<u32>> = HashMap::new();
        let mut tput: Vec<KpiColumns> = (0..ops.len() * 2)
            .map(|_| KpiColumns::default())
            .collect();
        let mut rtt: Vec<RttColumns> = (0..ops.len())
            .map(|_| RttColumns::default())
            .collect();
        let mut acc: Vec<ShareAcc> = ops
            .iter()
            .map(|&op| ShareAcc {
                passive: db
                    .passive_for(op)
                    .map(|p| p.tech_shares())
                    .unwrap_or([(Technology::Lte, 0.0); 5]),
                active_all: [0.0; 5],
                by_direction: [[0.0; 5]; 2],
                by_timezone: [[0.0; 5]; 4],
                by_speed: [[0.0; 5]; 3],
            })
            .collect();
        let mut pairs: [BTreeMap<(Operator, i64), u32>; 2] = [BTreeMap::new(), BTreeMap::new()];
        let mut by_time: [HashMap<i64, Vec<u32>>; 2] = [HashMap::new(), HashMap::new()];

        for (ri, r) in db.records.iter().enumerate() {
            let ri = ri as u32;
            parts
                .entry((r.op, r.kind, r.is_static))
                .or_default()
                .push(ri);
            if r.is_static {
                continue;
            }
            let oi = op_idx(r.op);
            let dir = tput_dir(r.kind);
            // Coverage shares: every driving sample weighs speed × 0.5 s
            // meters, accumulated in database order (same summation order
            // as the per-figure scans this index replaces).
            for k in &r.kpi {
                let ti = tech_idx(k.tech);
                let m = k.speed_mps as f64 * 0.5;
                let a = &mut acc[oi];
                a.active_all[ti] += m;
                a.by_timezone[tz_idx(k.timezone)][ti] += m;
                a.by_speed[bin_idx(SpeedBin::from_mph(k.speed_mph()))][ti] += m;
                if let Some(d) = dir {
                    a.by_direction[dir_idx(d)][ti] += m;
                }
            }
            if let Some(d) = dir {
                let cols = &mut tput[oi * 2 + dir_idx(d)];
                for k in &r.kpi {
                    cols.tput.push(k.tput_mbps.map_or(f64::NAN, f64::from));
                    cols.tech.push(k.tech);
                    cols.server.push(r.server_kind);
                    cols.tz.push(k.timezone);
                    cols.speed_mph.push(k.speed_mph());
                    cols.rsrp_dbm.push(k.rsrp_dbm);
                    cols.sinr_db.push(k.sinr_db);
                    cols.mcs.push(k.mcs);
                    cols.ca.push(k.ca);
                    cols.bler.push(k.bler);
                    cols.hos.push(k.handovers_in_window);
                }
                let di = dir_idx(d);
                let t = r.start_s.round() as i64;
                pairs[di].insert((r.op, t), ri);
                by_time[di].entry(t).or_default().push(ri);
            }
            if r.kind == TestKind::Rtt {
                let cols = &mut rtt[oi];
                for (v, k) in rtt_with_context(r) {
                    cols.rtt_ms.push(v);
                    cols.tech.push(k.tech);
                    cols.server.push(r.server_kind);
                    cols.speed_mph.push(k.speed_mph());
                }
            }
        }

        let shares = acc
            .into_iter()
            .map(|a| OpShares {
                passive: a.passive,
                active_all: normalize(&a.active_all),
                by_direction: [normalize(&a.by_direction[0]), normalize(&a.by_direction[1])],
                by_timezone: [
                    normalize(&a.by_timezone[0]),
                    normalize(&a.by_timezone[1]),
                    normalize(&a.by_timezone[2]),
                    normalize(&a.by_timezone[3]),
                ],
                by_speed: [
                    normalize(&a.by_speed[0]),
                    normalize(&a.by_speed[1]),
                    normalize(&a.by_speed[2]),
                ],
            })
            .collect();

        // Concurrent groups: exactly one test per panel operator at a
        // rounded start time, ordered by start time for determinism.
        let mut triples: [Vec<Vec<u32>>; 2] = [Vec::new(), Vec::new()];
        for di in 0..2 {
            let mut times: Vec<i64> = by_time[di].keys().copied().collect();
            times.sort_unstable();
            for t in times {
                let group = &by_time[di][&t];
                if group.len() != ops.len() {
                    continue;
                }
                let mut sorted = group.clone();
                sorted.sort_by_key(|&ri| op_idx(db.records[ri as usize].op));
                triples[di].push(sorted);
            }
        }

        let mut ix = AnalysisIndex {
            db,
            ops,
            parts,
            tput,
            rtt,
            shares,
            canon: HashMap::new(),
            corr: HashMap::new(),
            pairs,
            triples,
            cache: Mutex::new(HashMap::new()),
        };
        ix.build_canonical();
        ix.build_correlations();
        ix
    }

    /// Position of one operator in the panel.
    fn op_index(&self, op: Operator) -> usize {
        self.ops
            .iter()
            .position(|&o| o == op)
            .expect("operator in panel")
    }

    /// Pre-sort the canonical metric columns into memoized ECDFs.
    fn build_canonical(&mut self) {
        let mut canon = HashMap::new();
        let sorted_ecdf = |mut v: Vec<f64>| {
            v.retain(|x| x.is_finite());
            v.sort_by(f64::total_cmp);
            Arc::new(Ecdf::from_sorted(v))
        };
        for oi in 0..self.ops.len() {
            let op = self.ops[oi];
            for dir in Direction::BOTH {
                let cols = &self.tput[oi * 2 + dir_idx(dir)];
                canon.insert(
                    Slice::Tput {
                        op,
                        dir,
                        is_static: false,
                    },
                    sorted_ecdf(cols.tput.clone()),
                );
                canon.insert(
                    Slice::Rsrp { op, dir },
                    sorted_ecdf(cols.rsrp_dbm.iter().map(|&v| v as f64).collect()),
                );
                canon.insert(
                    Slice::Sinr { op, dir },
                    sorted_ecdf(cols.sinr_db.iter().map(|&v| v as f64).collect()),
                );
                canon.insert(
                    Slice::Speed { op, dir },
                    sorted_ecdf(cols.speed_mph.clone()),
                );
                let kind = match dir {
                    Direction::Downlink => TestKind::ThroughputDl,
                    Direction::Uplink => TestKind::ThroughputUl,
                };
                canon.insert(
                    Slice::Tput {
                        op,
                        dir,
                        is_static: true,
                    },
                    sorted_ecdf(
                        self.records(op, kind, true)
                            .flat_map(|r| r.tput_samples())
                            .collect(),
                    ),
                );
            }
            for is_static in [false, true] {
                let samples: Vec<f64> = if is_static {
                    self.records(op, TestKind::Rtt, true)
                        .flat_map(|r| r.rtt_ms.iter().map(|&v| v as f64))
                        .collect()
                } else {
                    // Driving RTTs come straight from the records too: the
                    // columnar RTT table drops samples without a covering
                    // KPI window, Fig. 3 keeps them.
                    self.records(op, TestKind::Rtt, false)
                        .flat_map(|r| r.rtt_ms.iter().map(|&v| v as f64))
                        .collect()
                };
                canon.insert(Slice::Rtt { op, is_static }, sorted_ecdf(samples));
            }
        }
        self.canon = canon;
    }

    /// Table 2's Pearson correlations, computed once from the columns.
    fn build_correlations(&mut self) {
        let mut corr = HashMap::new();
        for oi in 0..self.ops.len() {
            let op = self.ops[oi];
            for dir in Direction::BOTH {
                let cols = &self.tput[oi * 2 + dir_idx(dir)];
                let keep: Vec<usize> = (0..cols.tput.len())
                    .filter(|&i| cols.tput[i].is_finite())
                    .collect();
                let tput: Vec<f64> = keep.iter().map(|&i| cols.tput[i]).collect();
                let mut rs = [0.0; KPI_COLUMNS];
                let columns: [Vec<f64>; KPI_COLUMNS] = [
                    keep.iter().map(|&i| cols.rsrp_dbm[i] as f64).collect(),
                    keep.iter().map(|&i| cols.mcs[i] as f64).collect(),
                    keep.iter().map(|&i| cols.ca[i] as f64).collect(),
                    keep.iter().map(|&i| cols.bler[i] as f64).collect(),
                    keep.iter().map(|&i| cols.speed_mph[i]).collect(),
                    keep.iter().map(|&i| cols.hos[i] as f64).collect(),
                ];
                for (j, x) in columns.iter().enumerate() {
                    rs[j] = pearson(x, &tput);
                }
                corr.insert((op, dir), rs);
            }
        }
        self.corr = corr;
    }

    /// The underlying database (coverage maps need odometer-resolution
    /// samples the columns don't carry).
    pub fn db(&self) -> &'a ConsolidatedDb {
        self.db
    }

    /// The operator panel this index was built for; figures iterate this
    /// instead of hard-wiring [`Operator::ALL`].
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// Records of one `(op, kind, static?)` partition, in database order.
    pub fn records(
        &self,
        op: Operator,
        kind: TestKind,
        is_static: bool,
    ) -> impl Iterator<Item = &'a TestRecord> + '_ {
        self.parts
            .get(&(op, kind, is_static))
            .into_iter()
            .flatten()
            .map(move |&ri| &self.db.records[ri as usize])
    }

    /// One record by its database index (for pairing-map lookups).
    pub fn record(&self, ri: u32) -> &'a TestRecord {
        &self.db.records[ri as usize]
    }

    /// Canonical throughput ECDF of one `(op, direction, static?)` cell.
    pub fn tput_ecdf(&self, op: Operator, dir: Direction, is_static: bool) -> Arc<Ecdf> {
        Arc::clone(&self.canon[&Slice::Tput { op, dir, is_static }])
    }

    /// Canonical RTT ECDF of one `(op, static?)` cell.
    pub fn rtt_ecdf(&self, op: Operator, is_static: bool) -> Arc<Ecdf> {
        Arc::clone(&self.canon[&Slice::Rtt { op, is_static }])
    }

    /// Any canonical pre-sorted slice (RSRP/SINR/speed included).
    pub fn slice(&self, s: Slice) -> Arc<Ecdf> {
        Arc::clone(&self.canon[&s])
    }

    /// Pre-aggregated coverage shares for one operator.
    pub fn shares(&self, op: Operator) -> &OpShares {
        &self.shares[self.op_index(op)]
    }

    /// Table 2 row: Pearson r of throughput vs [RSRP, MCS, CA, BLER,
    /// speed, handovers] for one `(op, direction)`.
    pub fn kpi_correlations(&self, op: Operator, dir: Direction) -> [f64; KPI_COLUMNS] {
        self.corr[&(op, dir)]
    }

    /// Concurrent driving throughput tests keyed by `(op, rounded start
    /// second)` for one direction (Fig. 6 pairing). Iteration order is
    /// the key order, so consumers may fold over it deterministically.
    pub fn concurrent_map(&self, dir: Direction) -> &BTreeMap<(Operator, i64), u32> {
        &self.pairs[dir_idx(dir)]
    }

    /// Concurrent all-operator test groups for one direction, record
    /// indices in [`AnalysisIndex::ops`] order.
    pub fn concurrent_triples(&self, dir: Direction) -> &[Vec<u32>] {
        &self.triples[dir_idx(dir)]
    }

    /// Number of memoized heterogeneous queries so far.
    pub fn cached_queries(&self) -> usize {
        self.cache.lock().expect("query cache poisoned").len()
    }

    /// Memoized ECDF over one filtered metric column. The first call for
    /// a key scans the column once and caches; later calls are a map hit.
    pub fn query(&self, q: EcdfQuery) -> Arc<Ecdf> {
        if let Some(hit) = self.cache.lock().expect("query cache poisoned").get(&q) {
            return Arc::clone(hit);
        }
        // Compute outside the lock: the result is a pure function of the
        // key, so a racing fill computes the same value.
        let e = Arc::new(self.scan(q));
        let mut cache = self.cache.lock().expect("query cache poisoned");
        Arc::clone(cache.entry(q).or_insert(e))
    }

    fn scan(&self, q: EcdfQuery) -> Ecdf {
        match q.metric {
            QueryMetric::TputDl | QueryMetric::TputUl => {
                let dir = if q.metric == QueryMetric::TputDl {
                    Direction::Downlink
                } else {
                    Direction::Uplink
                };
                let cols = &self.tput[self.op_index(q.op) * 2 + dir_idx(dir)];
                Ecdf::new((0..cols.tput.len()).filter_map(|i| {
                    let v = cols.tput[i];
                    if !v.is_finite()
                        || q.tech.is_some_and(|t| cols.tech[i] != t)
                        || q.server.is_some_and(|s| cols.server[i] != s)
                        || q.tz.is_some_and(|z| cols.tz[i] != z)
                        || q.bin
                            .is_some_and(|b| SpeedBin::from_mph(cols.speed_mph[i]) != b)
                    {
                        return None;
                    }
                    Some(v)
                }))
            }
            QueryMetric::Rtt => {
                let cols = &self.rtt[self.op_index(q.op)];
                Ecdf::new((0..cols.rtt_ms.len()).filter_map(|i| {
                    if q.tech.is_some_and(|t| cols.tech[i] != t)
                        || q.server.is_some_and(|s| cols.server[i] != s)
                        || q.bin
                            .is_some_and(|b| SpeedBin::from_mph(cols.speed_mph[i]) != b)
                    {
                        return None;
                    }
                    Some(cols.rtt_ms[i])
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::{network_db, network_ix};

    #[test]
    fn canonical_tput_matches_raw_scan() {
        let db = network_db();
        let ix = network_ix();
        for &op in &Operator::ALL {
            for (dir, kind) in [
                (Direction::Downlink, TestKind::ThroughputDl),
                (Direction::Uplink, TestKind::ThroughputUl),
            ] {
                for is_static in [false, true] {
                    let want = Ecdf::new(
                        db.records
                            .iter()
                            .filter(|r| r.op == op && r.kind == kind && r.is_static == is_static)
                            .flat_map(|r| r.tput_samples()),
                    );
                    let got = ix.tput_ecdf(op, dir, is_static);
                    assert_eq!(want.samples(), got.samples(), "{op} {dir:?} {is_static}");
                }
            }
        }
    }

    #[test]
    fn canonical_rtt_matches_raw_scan() {
        let db = network_db();
        let ix = network_ix();
        for &op in &Operator::ALL {
            for is_static in [false, true] {
                let want = Ecdf::new(
                    db.records
                        .iter()
                        .filter(|r| {
                            r.op == op && r.kind == TestKind::Rtt && r.is_static == is_static
                        })
                        .flat_map(|r| r.rtt_ms.iter().map(|&v| v as f64)),
                );
                let got = ix.rtt_ecdf(op, is_static);
                assert_eq!(want.samples(), got.samples(), "{op} {is_static}");
            }
        }
    }

    #[test]
    fn query_filters_match_raw_scan() {
        let db = network_db();
        let ix = network_ix();
        let op = Operator::TMobile;
        let tech = Technology::Nr5gMid;
        let want = Ecdf::new(
            db.records
                .iter()
                .filter(|r| r.op == op && !r.is_static && r.kind == TestKind::ThroughputDl)
                .flat_map(|r| r.kpi.iter())
                .filter(|k| k.tech == tech)
                .filter_map(|k| k.tput_mbps.map(f64::from)),
        );
        let got = ix.query(EcdfQuery::metric(op, QueryMetric::TputDl).tech(tech));
        assert_eq!(want.samples(), got.samples());
    }

    #[test]
    fn query_is_memoized() {
        let ix = AnalysisIndex::build(network_db());
        let before = ix.cached_queries();
        let q = EcdfQuery::metric(Operator::Verizon, QueryMetric::Rtt).bin(SpeedBin::High);
        let a = ix.query(q);
        let b = ix.query(q);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(ix.cached_queries(), before + 1);
    }

    #[test]
    fn shares_match_per_figure_scan() {
        let db = network_db();
        let ix = network_ix();
        for &op in &Operator::ALL {
            let want = crate::figures::tech_shares(
                db.records
                    .iter()
                    .filter(|r| r.op == op && !r.is_static)
                    .flat_map(|r| r.kpi.iter()),
            );
            assert_eq!(want, ix.shares(op).active_all, "{op}");
        }
    }

    #[test]
    fn partitions_preserve_database_order() {
        let db = network_db();
        let ix = network_ix();
        let want: Vec<u32> = db
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.op == Operator::Att && r.kind == TestKind::ThroughputUl && !r.is_static
            })
            .map(|(i, _)| i as u32)
            .collect();
        let got: Vec<u32> = ix
            .records(Operator::Att, TestKind::ThroughputUl, false)
            .map(|r| {
                db.records
                    .iter()
                    .position(|x| std::ptr::eq(x, r))
                    .expect("record from db") as u32
            })
            .collect();
        assert_eq!(want, got);
    }

    #[test]
    fn triples_are_complete_and_op_ordered() {
        let ix = network_ix();
        for dir in Direction::BOTH {
            for t in ix.concurrent_triples(dir) {
                let ops: Vec<Operator> = t.iter().map(|&ri| ix.record(ri).op).collect();
                assert_eq!(ops, ix.ops().to_vec());
            }
            assert!(!ix.concurrent_triples(dir).is_empty());
        }
    }
}
