//! Integration test: the paper's headline findings hold on a
//! reduced-scale campaign, end to end (world → campaign → database →
//! analysis).

use std::sync::OnceLock;

use wheels::analysis::figures::{
    fig01_coverage_views, fig02_coverage, fig03_static_driving, fig11_handovers, share_5g,
    share_hs5g, table2_correlations,
};
use wheels::analysis::AnalysisIndex;
use wheels::campaign::{Campaign, CampaignConfig};
use wheels::ran::{Direction, Operator};
use wheels::xcal::database::ConsolidatedDb;

fn db() -> &'static ConsolidatedDb {
    static DB: OnceLock<ConsolidatedDb> = OnceLock::new();
    DB.get_or_init(|| {
        let mut cfg = CampaignConfig::quick_network_only(314);
        cfg.scale = 0.12;
        cfg.passive_tick_s = 6.0;
        Campaign::new(cfg).run()
    })
}

fn ix() -> &'static AnalysisIndex<'static> {
    static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
    IX.get_or_init(|| AnalysisIndex::build(db()))
}

#[test]
fn finding_coverage_order_tmobile_first() {
    // §4.2: T-Mobile ~68 % 5G; Verizon and AT&T ~18-22 %.
    let f = fig02_coverage::compute(ix());
    let t = share_5g(f.overall_for(Operator::TMobile));
    let v = share_5g(f.overall_for(Operator::Verizon));
    let a = share_5g(f.overall_for(Operator::Att));
    assert!(t > 0.45, "T-Mobile 5G {t}");
    assert!((0.05..0.40).contains(&v), "Verizon 5G {v}");
    assert!((0.05..0.40).contains(&a), "AT&T 5G {a}");
}

#[test]
fn finding_att_has_no_high_speed_5g() {
    // §4.2: high-speed 5G "as low as 3% (AT&T)".
    let f = fig02_coverage::compute(ix());
    assert!(share_hs5g(f.overall_for(Operator::Att)) < 0.10);
}

#[test]
fn finding_passive_probing_understates_coverage() {
    // §4.1 / Fig. 1.
    let v = fig01_coverage_views::compute(ix());
    for op in Operator::ALL {
        let (passive, active) = v.gap_for(op).unwrap();
        assert!(passive < active + 0.03, "{op}: {passive} vs {active}");
    }
}

#[test]
fn finding_driving_collapses_throughput() {
    // §5.1: driving medians are a few % of static ones.
    let f = fig03_static_driving::compute(ix());
    for op in Operator::ALL {
        let p = f.for_op(op);
        if p.static_dl.is_empty() {
            continue;
        }
        assert!(p.driving_dl.median() < p.static_dl.median() * 0.25, "{op}");
    }
}

#[test]
fn finding_low_throughput_tail() {
    // §5.1: ~35 % of driving samples below 5 Mbps.
    let f = fig03_static_driving::compute(ix());
    let frac = f.frac_driving_below_5mbps();
    assert!((0.15..0.60).contains(&frac), "{frac}");
}

#[test]
fn finding_no_kpi_dominates_throughput() {
    // Table 2.
    let t = table2_correlations::compute(ix());
    for (op, dir, kpi, r) in &t.entries {
        assert!(r.abs() < 0.8, "{op} {} {}: {r}", dir.label(), kpi.label());
    }
}

#[test]
fn finding_handovers_rare_and_brief() {
    // Fig. 11.
    let f = fig11_handovers::compute(ix());
    for op in Operator::ALL {
        let rate = f.per_mile_for(op, Direction::Downlink);
        let dur = f.duration_for(op, Direction::Downlink);
        if rate.len() > 30 {
            assert!(rate.median() < 8.0, "{op}: {} HOs/mile", rate.median());
        }
        if dur.len() > 30 {
            assert!(
                (30.0..110.0).contains(&dur.median()),
                "{op}: HO duration median {}",
                dur.median()
            );
        }
    }
}

#[test]
fn finding_table1_statistics_in_paper_ballpark() {
    let d = db();
    let campaign = Campaign::new(CampaignConfig::quick_network_only(314));
    let t1 = wheels::campaign::stats::Table1::compute(d, campaign.plan().route());
    assert!((t1.distance_km - 5_711.0).abs() < 2.0);
    assert_eq!(t1.timezones, 4);
    // Passive-logger handover counts land near Table 1's 2.5-4.1k.
    for (i, &h) in t1.handovers.iter().enumerate() {
        assert!((800..12_000).contains(&h), "op {i}: {h} handovers");
    }
    // T-Mobile hands over the most (densest midband layer churn).
    assert!(t1.handovers[1] > t1.handovers[0]);
    assert!(t1.handovers[1] > t1.handovers[2]);
}
