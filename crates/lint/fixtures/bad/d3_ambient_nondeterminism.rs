//! D3 must fire: wall clocks, OS entropy, and environment reads make
//! output a function of more than (seed, scenario, scale).

use std::time::Instant;

fn timed<F: FnOnce()>(f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs()
}

fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}

fn scale_override() -> Option<String> {
    std::env::var("WHEELS_SCALE").ok()
}
