//! Static city baselines (Fig. 3a).
//!
//! §5.1: *"In each city, we tried to find a 5G-mmWave BS for each operator
//! and performed the static measurements facing the BS. In cases we failed
//! to find a mmWave BS, we measured the 5G mid-band performance. We
//! omitted the static tests for those operator-city combinations for which
//! we were not able to get 5G-mmWave or mid-band connectivity."*

use wheels_geo::route::Route;
use wheels_radio::band::Technology;
use wheels_ran::cell::CellDb;

/// Search radius around the city-center odometer for a static test site.
pub const CITY_SEARCH_M: f64 = 8_000.0;

/// Find the static test site for one operator in one city: the nearest
/// mmWave cell, falling back to midband; `None` if the operator has no
/// high-speed 5G there (the combo is skipped, as in the paper).
pub fn find_static_site(db: &CellDb, city_od_m: f64) -> Option<(f64, Technology)> {
    for tech in [Technology::Nr5gMmWave, Technology::Nr5gMid] {
        let best = db
            .cells_near(tech, city_od_m, CITY_SEARCH_M)
            .iter()
            .min_by(|a, b| {
                (a.odometer_m - city_od_m)
                    .abs()
                    .total_cmp(&(b.odometer_m - city_od_m).abs())
            });
        if let Some(c) = best {
            return Some((c.odometer_m, tech));
        }
    }
    None
}

/// All static sites for one operator across the major cities of `route`:
/// `(city name, site odometer, technology)`.
pub fn static_sites(db: &CellDb, route: &Route) -> Vec<(&'static str, f64, Technology)> {
    route
        .cities()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.major)
        .filter_map(|(i, c)| {
            let od = route.city_odometer_m(wheels_geo::cities::CityId(i));
            find_static_site(db, od).map(|(site_od, tech)| (c.name, site_od, tech))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_ran::deployment::build_cells;
    use wheels_ran::operator::Operator;

    #[test]
    fn verizon_gets_mmwave_in_most_cities() {
        let route = Route::cross_country();
        let db = build_cells(&route, Operator::Verizon, 7, 0);
        let sites = static_sites(&db, &route);
        assert!(sites.len() >= 7, "only {} cities with sites", sites.len());
        let mmwave = sites
            .iter()
            .filter(|(_, _, t)| *t == Technology::Nr5gMmWave)
            .count();
        assert!(mmwave >= 5, "Verizon mmWave in only {mmwave} cities");
    }

    #[test]
    fn tmobile_mostly_midband() {
        let route = Route::cross_country();
        let db = build_cells(&route, Operator::TMobile, 7, 0);
        let sites = static_sites(&db, &route);
        assert!(sites.len() >= 8);
        let mid = sites
            .iter()
            .filter(|(_, _, t)| *t == Technology::Nr5gMid)
            .count();
        assert!(mid > sites.len() / 2, "T-Mobile should be midband-heavy");
    }

    #[test]
    fn empty_db_yields_no_sites() {
        let route = Route::cross_country();
        let db = CellDb::new(Operator::Att, vec![]);
        assert!(static_sites(&db, &route).is_empty());
    }
}
