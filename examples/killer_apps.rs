//! The four "5G killer apps" over three contrasting links.
//!
//! Runs AR, CAV, 360° video and cloud gaming over (a) a best-case static
//! mmWave+edge link, (b) a typical driving link, and (c) a struggling
//! rural link, and prints the QoE comparison the paper's §7 is about.
//!
//! ```text
//! cargo run --release --example killer_apps
//! ```

use wheels::apps::ar::ArApp;
use wheels::apps::cav::CavApp;
use wheels::apps::gaming::GamingSession;
use wheels::apps::video::VideoSession;
use wheels::apps::{AppLink, ConstantLink, LinkObs};

/// A driving-like link: capacity wanders, occasional handover blanking.
struct DrivingLink;

impl AppLink for DrivingLink {
    fn sample(&mut self, t_s: f64) -> LinkObs {
        // Deterministic pseudo-variation: three interleaved cycles.
        let slow = ((t_s / 47.0).sin() + 1.2) / 2.2; // 0.09..1
        let fast = ((t_s / 7.3).sin() + 1.5) / 2.5; // 0.2..1
        let in_handover = (t_s % 41.0) < 0.07;
        LinkObs {
            dl_mbps: 4.0 + 160.0 * slow * fast,
            ul_mbps: 1.5 + 30.0 * slow * fast,
            rtt_ms: 45.0 + 120.0 * (1.0 - fast),
            in_handover,
        }
    }
}

fn main() {
    println!("== killer apps under three network conditions ==\n");
    type LinkFactory = Box<dyn Fn() -> Box<dyn AppLink>>;
    let scenarios: Vec<(&str, LinkFactory)> = vec![
        (
            "static mmWave+edge",
            Box::new(|| Box::new(ConstantLink::good()) as Box<dyn AppLink>),
        ),
        (
            "driving (typical) ",
            Box::new(|| Box::new(DrivingLink) as Box<dyn AppLink>),
        ),
        (
            "driving (poor)    ",
            Box::new(|| Box::new(ConstantLink::poor()) as Box<dyn AppLink>),
        ),
    ];

    println!("-- AR (30 FPS camera offload, compressed frames) --");
    for (name, mk) in &scenarios {
        let mut link = mk();
        let r = ArApp::default().run(0.0, true, link.as_mut());
        println!(
            "  {name}: E2E {:>5.0} ms | {:>4.1} FPS offloaded | mAP {:>4.1}%",
            r.offload.e2e_median_ms, r.offload.offload_fps, r.map_accuracy
        );
    }

    println!("\n-- CAV (10 FPS LIDAR offload, compressed point clouds) --");
    for (name, mk) in &scenarios {
        let mut link = mk();
        let r = CavApp::default().run(0.0, true, link.as_mut());
        println!(
            "  {name}: E2E {:>5.0} ms | deadline(100ms) hit {:>3.0}%",
            r.offload.e2e_median_ms,
            r.deadline_hit_frac * 100.0
        );
    }

    println!("\n-- 360° video (BBA, ladder 5/10/50/100 Mbps) --");
    for (name, mk) in &scenarios {
        let mut link = mk();
        let s = VideoSession::default().run(0.0, link.as_mut());
        println!(
            "  {name}: QoE {:>7.1} | bitrate {:>5.1} Mbps | rebuffer {:>4.1}%",
            s.qoe,
            s.avg_bitrate_mbps,
            s.rebuffer_frac * 100.0
        );
    }

    println!("\n-- cloud gaming (Steam-Remote-Play-style adapter) --");
    for (name, mk) in &scenarios {
        let mut link = mk();
        let s = GamingSession::default().run(0.0, link.as_mut());
        println!(
            "  {name}: bitrate {:>5.1} Mbps | latency {:>5.0} ms | drops {:>4.2}%",
            s.send_bitrate_mbps,
            s.net_latency_ms,
            s.frame_drop_frac * 100.0
        );
    }
    println!("\n(§7's finding: driving QoE is poor for all four apps, and even");
    println!(" 100% high-speed-5G time doesn't fix it — run the full repro to see.)");
}
