//! Deterministic parallel campaign execution, supervised.
//!
//! The campaign is split into independent [`WorkUnit`]s — one per
//! `(operator, drive day)`, `(operator, static site)`, and passive-logger
//! operator. Every random stream a unit consumes is derived from the
//! campaign seed and the unit's key (see [`wheels_netsim::rng`]), so a
//! unit's output is a pure function of `(config, unit)` and is identical
//! whether units run on one thread or many. Workers pull unit indexes
//! from a shared atomic counter (dynamic load balancing), write each
//! unit's outcome into its slot, and [`merge_shards`] folds the shards
//! back together in canonical unit order — which makes `run()` and
//! `run_jobs(n)` byte-identical for every `n`.
//!
//! Units run under a supervisor ([`Campaign::run_unit_supervised`]): the
//! configured [`FaultPlan`] may abort an attempt (server outage, timeout
//! overrun) or degrade its output (probe crash, modem detach), panics are
//! caught at the unit boundary, and failed attempts retry with bounded
//! *simulated-clock* backoff — pure accounting, no wall-clock, so the
//! determinism guarantee holds under injection too. A unit that exhausts
//! its retries is marked [`UnitStatus::Lost`] and the campaign carries
//! on without it, the way the paper's dataset carries gaps instead of
//! missing days.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use wheels_fleet::FleetUnitSketch;
use wheels_netsim::faults::{Fault, FaultPlan, ProcessKill};
use wheels_ran::operator::Operator;
use wheels_xcal::database::{ConsolidatedDb, TestRecord};
use wheels_xcal::handover_logger::PassiveLogger;

use crate::checkpoint::CheckpointWriter;
use crate::integrity::{UnitError, UnitReport, UnitStatus};
use crate::runner::Campaign;
use crate::static_tests::static_sites;

/// One independent slice of the campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkUnit {
    /// One operator's round-robin test cycles over one drive day.
    Drive {
        /// The phone's operator.
        op: Operator,
        /// Index into the drive plan's days.
        day: usize,
    },
    /// One operator's static city baseline at one site.
    Static {
        /// The phone's operator.
        op: Operator,
        /// Route odometer of the site, meters.
        site_od: f64,
    },
    /// One operator's all-day passive handover logger.
    Passive {
        /// The logger phone's operator.
        op: Operator,
    },
}

impl WorkUnit {
    /// The unit's fault-plan key: a kind tag plus the unit coordinates,
    /// unique across the schedule (site odometers are distinct reals, so
    /// their bit patterns are distinct words).
    pub fn fault_words(&self) -> [u64; 3] {
        match *self {
            WorkUnit::Drive { op, day } => [1, op as u64, day as u64],
            WorkUnit::Static { op, site_od } => [2, op as u64, site_od.to_bits()],
            WorkUnit::Passive { op } => [3, op as u64, 0],
        }
    }

    /// Human-readable unit key for integrity reports.
    pub fn label(&self) -> String {
        match *self {
            WorkUnit::Drive { op, day } => format!("drive/{op}/day{day}"),
            WorkUnit::Static { op, site_od } => format!("static/{op}/od{site_od:.0}"),
            WorkUnit::Passive { op } => format!("passive/{op}"),
        }
    }
}

/// The output of one [`WorkUnit`]: records carry shard-local ids
/// (`0..n` in generation order) until [`merge_shards`] reassigns them.
#[derive(Debug, Default)]
pub struct Shard {
    /// Test records produced by the unit.
    pub records: Vec<TestRecord>,
    /// Passive logger output (passive units only).
    pub passive: Option<(Operator, PassiveLogger)>,
    /// Streaming fleet-load summary folded over the unit's time span
    /// (drive units of fleet-enabled campaigns only).
    pub fleet: Option<FleetUnitSketch>,
}

/// A supervised unit's result: the shard (absent for lost units) plus its
/// integrity record.
#[derive(Debug)]
pub struct UnitOutcome {
    /// The unit's data, if any attempt completed.
    pub shard: Option<Shard>,
    /// What happened getting it.
    pub report: UnitReport,
}

impl UnitOutcome {
    /// The outcome of a slot that was never filled: the unit is `Lost`
    /// with a [`UnitError::MissingSlot`] cause — surfaced explicitly
    /// instead of panicking the collection.
    fn missing_slot(label: String) -> Self {
        let mut report = UnitReport::new(label);
        report.status = UnitStatus::Lost;
        report.error = Some(UnitError::MissingSlot.to_string());
        UnitOutcome {
            shard: None,
            report,
        }
    }
}

impl Campaign {
    /// The canonical unit schedule: drive units (operator-major,
    /// day-minor), then static sites, then passive loggers. Merge order —
    /// and therefore the exported dataset — is defined by this sequence,
    /// never by worker completion order.
    pub fn plan_units(&self) -> Vec<WorkUnit> {
        let mut units = Vec::new();
        for &op in &self.ops {
            for day in 0..self.plan.days().len() {
                units.push(WorkUnit::Drive { op, day });
            }
        }
        if self.cfg.run_static && self.sched.run_static {
            for &op in &self.ops {
                let db = self.db_for(op);
                for (_city, site_od, _tech) in static_sites(&db, self.plan.route()) {
                    units.push(WorkUnit::Static { op, site_od });
                }
            }
        }
        if self.cfg.run_passive && self.sched.run_passive {
            for &op in &self.ops {
                units.push(WorkUnit::Passive { op });
            }
        }
        units
    }

    /// One attempt at a unit. An abortive injected fault (server outage,
    /// timeout overrun) kills the attempt before it produces data; the
    /// payload itself runs under `catch_unwind`, so a panicking work unit
    /// surfaces as a typed [`UnitError`] instead of tearing down the
    /// campaign.
    pub(crate) fn run_unit(
        &self,
        unit: &WorkUnit,
        fault: Option<Fault>,
    ) -> Result<Shard, UnitError> {
        match fault {
            Some(Fault::ServerOutage { outage_s }) => {
                return Err(UnitError::ServerUnreachable { outage_s })
            }
            Some(Fault::TimeoutOverrun { overrun_s }) => {
                return Err(UnitError::TimeoutOverrun { overrun_s })
            }
            _ => {}
        }
        catch_unwind(AssertUnwindSafe(|| self.run_unit_payload(unit)))
            .map_err(|payload| UnitError::Panicked {
                message: panic_message(payload),
            })
    }

    /// Run one unit under the supervisor: retry abortive failures with
    /// bounded simulated-clock backoff, apply degrading faults to the
    /// surviving payload, and settle on an `Ok`/`Degraded`/`Lost` status.
    pub(crate) fn run_unit_supervised(&self, unit: &WorkUnit, plan: &FaultPlan) -> UnitOutcome {
        let words = unit.fault_words();
        let max_attempts = self.cfg.max_retries.saturating_add(1);
        let mut report = UnitReport::new(unit.label());
        let mut last_err: Option<UnitError> = None;
        for attempt in 0..max_attempts {
            report.attempts = attempt + 1;
            let fault = plan.fault_for(&words, attempt);
            if let Some(f) = &fault {
                report.faults.push(f.label().to_string());
            }
            match self.run_unit(unit, fault) {
                Ok(mut shard) => {
                    if let Some(f) = fault {
                        apply_degrading_fault(&f, &mut shard, &mut report);
                    }
                    report.records_kept = shard.records.len();
                    report.status = if report.lost_anything() {
                        UnitStatus::Degraded
                    } else {
                        UnitStatus::Ok
                    };
                    return UnitOutcome {
                        shard: Some(shard),
                        report,
                    };
                }
                Err(e) => {
                    if attempt + 1 < max_attempts {
                        report.backoff_s += plan.backoff_s(&words, attempt);
                    }
                    last_err = Some(e);
                }
            }
        }
        report.status = UnitStatus::Lost;
        report.error = last_err.map(|e| e.to_string());
        UnitOutcome {
            shard: None,
            report,
        }
    }

    /// Run `units` under supervision, returning one outcome per unit in
    /// unit order.
    ///
    /// `jobs <= 1` runs inline on the caller's thread; otherwise a scoped
    /// pool of `jobs` workers drains a shared index queue, so a slow unit
    /// (a full drive day) never serializes the rest of the schedule. A
    /// slot left empty after execution becomes an explicit
    /// [`UnitError::MissingSlot`] loss, never a panic.
    pub(crate) fn execute_units(&self, units: &[WorkUnit], jobs: usize) -> Vec<UnitOutcome> {
        match self.execute_units_hooked(units, jobs, BTreeMap::new(), None, None) {
            Ok(outcomes) => outcomes,
            // Interrupts only come from the checkpoint/kill hooks, and
            // neither is installed on this path.
            // lint:allow(D7): no hook is installed, so the Err arm cannot be reached
            Err(i) => unreachable!("unhooked execution interrupted: {i}"),
        }
    }

    /// [`Campaign::execute_units`] with the durability hooks installed.
    ///
    /// `restored` holds outcomes recovered from a checkpoint log, keyed by
    /// [`WorkUnit::fault_words`]: matching units are *not* re-run (and not
    /// re-committed — their records are already durable). Every newly
    /// computed outcome is committed to `checkpoint` — written and fsynced
    /// — **before** it counts as done; a commit failure interrupts the run
    /// with [`ExecInterrupt::Io`] rather than silently continuing with a
    /// checkpoint stream that lies. `kill` is the chaos hook: it observes
    /// every durable commit and, when it fires, the run stops with
    /// [`ExecInterrupt::Killed`] exactly as if the process had died —
    /// except in-process, so tests can sweep kill points deterministically.
    ///
    /// Outcome order is canonical unit order regardless of which units
    /// were restored and which workers ran the rest.
    pub(crate) fn execute_units_hooked(
        &self,
        units: &[WorkUnit],
        jobs: usize,
        mut restored: BTreeMap<[u64; 3], UnitOutcome>,
        checkpoint: Option<&CheckpointWriter>,
        kill: Option<&ProcessKill>,
    ) -> Result<Vec<UnitOutcome>, ExecInterrupt> {
        let plan = FaultPlan::new(self.cfg.seed, self.cfg.fault_profile);
        let commit = |unit: &WorkUnit, outcome: &UnitOutcome| -> Result<(), ExecInterrupt> {
            if let Some(w) = checkpoint {
                w.commit(unit, outcome).map_err(|e| ExecInterrupt::Io {
                    context: format!("checkpoint commit for {}", unit.label()),
                    error: e.to_string(),
                })?;
            }
            if let Some(k) = kill {
                if k.on_commit() {
                    return Err(ExecInterrupt::Killed {
                        committed: k.committed(),
                    });
                }
            }
            Ok(())
        };
        if jobs <= 1 || units.len() <= 1 {
            let mut out = Vec::with_capacity(units.len());
            for unit in units {
                if let Some(outcome) = restored.remove(&unit.fault_words()) {
                    out.push(outcome);
                    continue;
                }
                let outcome = self.run_unit_supervised(unit, &plan);
                commit(unit, &outcome)?;
                out.push(outcome);
            }
            return Ok(out);
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<UnitOutcome>>> =
            units.iter().map(|_| Mutex::new(None)).collect();
        for (slot, unit) in slots.iter().zip(units) {
            if let Some(outcome) = restored.remove(&unit.fault_words()) {
                *slot.lock() = Some(outcome);
            }
        }
        let dead = AtomicBool::new(false);
        let interrupt: Mutex<Option<ExecInterrupt>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(units.len()) {
                scope.spawn(|| loop {
                    if dead.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(i) else { break };
                    // In range whenever `units.get(i)` is: one slot per unit.
                    let Some(slot) = slots.get(i) else { break };
                    if slot.lock().is_some() {
                        continue; // restored from a checkpoint
                    }
                    let outcome = self.run_unit_supervised(unit, &plan);
                    let commit_result = commit(unit, &outcome);
                    // The outcome is stored either way: on a kill it was
                    // already durably committed, and resume must see it.
                    *slot.lock() = Some(outcome);
                    if let Err(e) = commit_result {
                        let mut g = interrupt.lock();
                        if g.is_none() {
                            *g = Some(e);
                        }
                        dead.store(true, Ordering::SeqCst);
                        break;
                    }
                });
            }
        });
        if let Some(i) = interrupt.into_inner() {
            return Err(i);
        }
        Ok(slots
            .into_iter()
            .zip(units)
            .map(|(slot, unit)| match slot.into_inner() {
                Some(outcome) => outcome,
                None => UnitOutcome::missing_slot(unit.label()),
            })
            .collect())
    }
}

/// Why a hooked execution stopped before finishing every unit.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecInterrupt {
    /// A checkpoint commit could not be made durable; continuing would
    /// leave units that *look* done but would vanish on a crash.
    Io {
        /// What the executor was doing, e.g. the unit being committed.
        context: String,
        /// The underlying I/O error, stringified (keeps this `Clone`).
        error: String,
    },
    /// The [`ProcessKill`] chaos hook fired: the run is dead, exactly as
    /// if the OS had killed it, after `committed` durable unit commits.
    Killed {
        /// Durable commits observed when the hook fired.
        committed: usize,
    },
}

impl fmt::Display for ExecInterrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecInterrupt::Io { context, error } => {
                write!(f, "checkpoint I/O failure ({context}): {error}")
            }
            ExecInterrupt::Killed { committed } => {
                write!(f, "process killed after {committed} durable unit commits")
            }
        }
    }
}

impl std::error::Error for ExecInterrupt {}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The time span `[min start, max end]` covered by a shard's data, or
/// `None` for an empty shard.
fn shard_span(shard: &Shard) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in &shard.records {
        lo = lo.min(r.start_s);
        hi = hi.max(r.start_s + r.duration_s);
    }
    if let Some((_, log)) = &shard.passive {
        if let (Some(first), Some(last)) = (log.samples().first(), log.samples().last()) {
            lo = lo.min(first.time_s);
            hi = hi.max(last.time_s);
        }
    }
    (lo < hi).then_some((lo, hi))
}

/// Apply a non-abortive fault to a completed shard, charging the losses
/// to `report`. Pure in `(fault, shard)`, so parallel and sequential runs
/// degrade identically.
fn apply_degrading_fault(fault: &Fault, shard: &mut Shard, report: &mut UnitReport) {
    let Some((span0, span1)) = shard_span(shard) else {
        return;
    };
    let span = span1 - span0;
    match *fault {
        Fault::ProbeCrash { survive_frac } => {
            let t_crash = span0 + survive_frac * span;
            let before = shard.records.len();
            shard.records.retain(|r| r.start_s < t_crash);
            report.records_lost += before - shard.records.len();
            for r in &mut shard.records {
                report.kpi_samples_lost += r.truncate_streams_at(t_crash);
            }
            let kept: usize = shard.records.iter().map(|r| r.kpi.len()).sum();
            if report.kpi_samples_lost > 0 {
                report.truncated_kpi_frac =
                    report.kpi_samples_lost as f64 / (report.kpi_samples_lost + kept) as f64;
            }
            if let Some((_, log)) = &mut shard.passive {
                report.passive_samples_lost += log.truncate_after(t_crash);
            }
        }
        Fault::ModemDetach {
            start_frac,
            len_frac,
        } => {
            let w0 = span0 + start_frac * span;
            let w1 = (w0 + len_frac * span).min(span1);
            let before = shard.records.len();
            shard.records.retain(|r| !r.overlaps_window(w0, w1));
            report.records_lost += before - shard.records.len();
            if let Some((_, log)) = &mut shard.passive {
                report.passive_samples_lost += log.drop_window(w0, w1);
            }
        }
        // Abortive faults never reach a completed shard.
        Fault::ServerOutage { .. } | Fault::TimeoutOverrun { .. } => {}
    }
}

/// Fold per-unit shards (in canonical unit order) into one database.
///
/// Records are stably sorted by start time — ties keep unit order, so the
/// result is deterministic — and ids are reassigned `0..n` in final order.
/// Passive logs keep their unit (operator) order. The sort is total
/// (`f64::total_cmp`): a non-finite timestamp sorts deterministically
/// instead of panicking the merge.
pub fn merge_shards(shards: Vec<Shard>) -> ConsolidatedDb {
    let mut records: Vec<TestRecord> =
        Vec::with_capacity(shards.iter().map(|s| s.records.len()).sum());
    let mut passive = Vec::new();
    for shard in shards {
        records.extend(shard.records);
        if let Some(p) = shard.passive {
            passive.push(p);
        }
    }
    records.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    for (i, r) in records.iter_mut().enumerate() {
        r.id = i as u32;
    }
    ConsolidatedDb { records, passive }
}

/// [`merge_shards`] over supervised slots: lost units (`None`) contribute
/// nothing, surviving shards merge exactly as before — the dataset simply
/// has a gap where the unit's data would have been.
pub fn merge_shard_slots(slots: Vec<Option<Shard>>) -> ConsolidatedDb {
    merge_shards(slots.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use wheels_netsim::faults::FaultProfile;

    fn tiny(seed: u64, profile: FaultProfile) -> Campaign {
        let mut cfg = CampaignConfig::quick_network_only(seed);
        cfg.scale = 0.01;
        cfg.run_static = false;
        cfg.run_passive = false;
        cfg.fault_profile = profile;
        Campaign::new(cfg)
    }

    #[test]
    fn unit_keys_are_unique_across_the_schedule() {
        let campaign = tiny(42, FaultProfile::None);
        let units = campaign.plan_units();
        let mut words: Vec<[u64; 3]> = units.iter().map(WorkUnit::fault_words).collect();
        let mut labels: Vec<String> = units.iter().map(WorkUnit::label).collect();
        words.sort_unstable();
        words.dedup();
        labels.sort();
        labels.dedup();
        assert_eq!(words.len(), units.len(), "fault_words collide");
        assert_eq!(labels.len(), units.len(), "labels collide");
    }

    #[test]
    fn none_profile_is_all_ok_and_matches_unsupervised() {
        let campaign = tiny(42, FaultProfile::None);
        let outcome = campaign.run_supervised().expect("no fail-fast");
        assert!(outcome
            .integrity
            .units
            .iter()
            .all(|u| u.status == UnitStatus::Ok && u.attempts == 1 && u.faults.is_empty()));
        let plain = campaign.run();
        assert_eq!(plain.records.len(), outcome.db.records.len());
        for (a, b) in plain.records.iter().zip(&outcome.db.records) {
            assert_eq!(a.start_s, b.start_s);
            assert_eq!(a.kpi.len(), b.kpi.len());
        }
    }

    #[test]
    fn harsh_profile_survives_and_accounts_for_losses() {
        let campaign = tiny(42, FaultProfile::Harsh);
        let outcome = campaign.run_supervised().expect("tolerant by default");
        let report = &outcome.integrity;
        assert_eq!(report.units.len(), campaign.plan_units().len());
        assert!(
            report.degraded_count() + report.lost_count() > 0,
            "harsh profile injected nothing: {}",
            report.summary()
        );
        // Degraded units actually lost something; clean units didn't.
        for u in &report.units {
            match u.status {
                UnitStatus::Degraded => assert!(u.lost_anything(), "{:?}", u),
                UnitStatus::Ok => assert!(!u.lost_anything(), "{:?}", u),
                UnitStatus::Lost => assert!(u.error.is_some(), "{:?}", u),
            }
        }
    }

    #[test]
    fn zero_retries_plus_fail_fast_aborts_deterministically() {
        let mut cfg = CampaignConfig::quick_network_only(42);
        cfg.scale = 0.01;
        cfg.run_static = false;
        cfg.run_passive = false;
        cfg.fault_profile = FaultProfile::Harsh;
        cfg.max_retries = 0;
        cfg.fail_fast = true;
        let campaign = Campaign::new(cfg);
        // With no retry budget under harsh faults, some of the 24 drive
        // units is statistically certain to abort its only attempt.
        let a = campaign.run_supervised().expect_err("must abort");
        let b = campaign.run_supervised_jobs(4).expect_err("must abort");
        assert_eq!(a, b, "fail-fast abort must not depend on job count");
    }

    #[test]
    fn retries_are_bounded_by_budget() {
        let campaign = tiny(11, FaultProfile::Harsh);
        let outcome = campaign.run_supervised().expect("tolerant");
        for u in &outcome.integrity.units {
            assert!(u.attempts >= 1 && u.attempts <= campaign.cfg.max_retries + 1);
            if u.attempts == 1 {
                assert_eq!(u.backoff_s, 0.0, "no retry, no backoff: {u:?}");
            }
        }
    }

    #[test]
    fn merge_tolerates_missing_shards() {
        let campaign = tiny(42, FaultProfile::None);
        let units = campaign.plan_units();
        let shards: Vec<Option<Shard>> = units
            .iter()
            .enumerate()
            .map(|(i, u)| (i % 2 == 0).then(|| campaign.run_unit_payload(u)))
            .collect();
        let db = merge_shard_slots(shards);
        for (i, r) in db.records.iter().enumerate() {
            assert_eq!(r.id, i as u32);
        }
        for pair in db.records.windows(2) {
            assert!(pair[0].start_s <= pair[1].start_s);
        }
    }

    #[test]
    fn merge_never_panics_on_non_finite_times() {
        let campaign = tiny(42, FaultProfile::None);
        let units = campaign.plan_units();
        let mut shard = campaign.run_unit_payload(&units[0]);
        assert!(shard.records.len() >= 2, "need records to poison");
        shard.records[0].start_s = f64::NAN;
        shard.records[1].start_s = f64::INFINITY;
        let db = merge_shards(vec![shard]);
        for (i, r) in db.records.iter().enumerate() {
            assert_eq!(r.id, i as u32);
        }
    }
}
