//! D4 must fire: RNG construction from ad-hoc seed arithmetic instead of
//! `netsim::rng` stream derivation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn make_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0xDEAD_BEEF)
}

fn from_bytes(seed: [u8; 32]) -> SmallRng {
    SmallRng::from_seed(seed)
}

fn mix(state: &mut u64) -> u64 {
    rand::splitmix64(state)
}
