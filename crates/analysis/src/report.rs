//! One-call full report: every table and figure rendered into a single
//! markdown document (what `repro all` prints, with section headers).
//!
//! Sections are generated from a shared [`AnalysisIndex`] and can be
//! fanned out across worker threads ([`generate_jobs`]). The fan-out uses
//! the same atomic-counter work queue as `wheels-campaign`'s executor:
//! each worker claims section slots with a `fetch_add`, writes the
//! rendered body into that slot, and the assembler concatenates slots in
//! definition order — so the report is byte-identical at any job count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wheels_geo::route::Route;
use wheels_xcal::database::ConsolidatedDb;

use crate::figures as figs;
use crate::index::AnalysisIndex;
use crate::map::render_fig1_maps_for;

/// Section of the full report.
#[derive(Debug, Clone)]
pub struct Section {
    /// Paper artifact id ("fig3", "table2", ...).
    pub id: &'static str,
    /// Section heading.
    pub title: &'static str,
    /// Rendered body.
    pub body: String,
}

/// (id, title) of every report section, in presentation order.
pub const SECTION_DEFS: [(&str, &str); 19] = [
    ("fig1", "Fig. 1 — passive vs active coverage views"),
    ("fig2", "Fig. 2 — technology coverage"),
    ("fig3", "Fig. 3 — static vs driving performance"),
    ("fig4", "Fig. 4 — per-technology performance"),
    ("fig5", "Fig. 5 — throughput by timezone"),
    ("fig6", "Fig. 6 — operator diversity"),
    ("fig7", "Fig. 7 — throughput vs speed"),
    ("fig8", "Fig. 8 — RTT vs speed"),
    ("table2", "Table 2 — KPI correlations"),
    ("fig9", "Fig. 9 — per-test statistics"),
    ("fig10", "Fig. 10 — performance vs hs5G time"),
    ("table3", "Table 3 — Ookla comparison"),
    ("fig11", "Fig. 11 — handover statistics"),
    ("fig12", "Fig. 12 — handover impact"),
    ("fig13", "Fig. 13/18/19 — AR"),
    ("fig14", "Fig. 14/20 — CAV"),
    ("fig15", "Fig. 15/21 — 360° video"),
    ("fig16", "Fig. 16/22 — cloud gaming"),
    ("ext-mptcp", "Extension — MPTCP over three operators"),
];

/// Render one section body from the shared index.
fn body(ix: &AnalysisIndex<'_>, route: &Route, id: &str) -> String {
    match id {
        "fig1" => format!(
            "{}\n{}",
            figs::fig01_coverage_views::compute(ix).render(),
            render_fig1_maps_for(ix.db(), route.total_m(), 96, ix.ops())
        ),
        "fig2" => figs::fig02_coverage::compute(ix).render(),
        "fig3" => figs::fig03_static_driving::compute(ix).render(),
        "fig4" => figs::fig04_tech_perf::compute(ix).render(),
        "fig5" => figs::fig05_timezones::compute(ix).render(),
        "fig6" => figs::fig06_operator_diversity::compute(ix).render(),
        "fig7" => figs::fig07_speed_tput::compute(ix).render(),
        "fig8" => figs::fig08_speed_rtt::compute(ix).render(),
        "table2" => figs::table2_correlations::compute(ix).render(),
        "fig9" => figs::fig09_test_stats::compute(ix).render(),
        "fig10" => figs::fig10_hs5g::compute(ix).render(),
        "table3" => figs::table3_ookla::compute(ix).render(),
        "fig11" => figs::fig11_handovers::compute(ix).render(),
        "fig12" => figs::fig12_ho_impact::compute(ix).render(),
        "fig13" => figs::fig13_ar::compute(ix).render(),
        "fig14" => figs::fig14_cav::compute(ix).render(),
        "fig15" => figs::fig15_video::compute(ix).render(),
        "fig16" => figs::fig16_gaming::compute(ix).render(),
        "ext-mptcp" => figs::ext_multipath::compute(ix).render(),
        other => unreachable!("unknown section id {other}"),
    }
}

/// Render every paper artifact (plus the coverage maps and the MPTCP
/// extension) from a shared analysis index, fanned out over `jobs`
/// worker threads. Output order (and bytes) is independent of `jobs`.
pub fn sections_jobs(ix: &AnalysisIndex<'_>, route: &Route, jobs: usize) -> Vec<Section> {
    let jobs = jobs.max(1).min(SECTION_DEFS.len());
    let slots: Vec<Mutex<Option<String>>> =
        SECTION_DEFS.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= SECTION_DEFS.len() {
                    break;
                }
                let rendered = body(ix, route, SECTION_DEFS[i].0);
                *slots[i].lock().expect("section slot poisoned") = Some(rendered);
            });
        }
    });
    SECTION_DEFS
        .iter()
        .zip(slots)
        .map(|(&(id, title), slot)| Section {
            id,
            title,
            body: slot
                .into_inner()
                .expect("section slot poisoned")
                .expect("every slot filled"),
        })
        .collect()
}

/// Render every section sequentially from a shared analysis index.
pub fn sections_from(ix: &AnalysisIndex<'_>, route: &Route) -> Vec<Section> {
    sections_jobs(ix, route, 1)
}

/// Render every section from a raw database (builds a temporary index).
pub fn sections(db: &ConsolidatedDb, route: &Route) -> Vec<Section> {
    sections_from(&AnalysisIndex::build(db), route)
}

/// Assemble rendered sections into the final markdown document.
fn assemble(secs: Vec<Section>) -> String {
    let mut out = String::from("# Campaign report\n\n");
    for s in secs {
        out.push_str(&format!("## {}\n\n```\n{}\n```\n\n", s.title, s.body.trim_end()));
    }
    out
}

/// The full report as one markdown string, generated with `jobs` worker
/// threads over a shared index. Byte-identical for every job count.
pub fn generate_jobs(ix: &AnalysisIndex<'_>, route: &Route, jobs: usize) -> String {
    assemble(sections_jobs(ix, route, jobs))
}

/// The full report as one markdown string (single-threaded).
pub fn generate(db: &ConsolidatedDb, route: &Route) -> String {
    assemble(sections(db, route))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::{network_db, network_ix};

    #[test]
    fn report_contains_every_artifact() {
        let db = network_db();
        let route = Route::cross_country();
        let secs = sections(db, &route);
        assert_eq!(secs.len(), 19);
        for (s, (id, title)) in secs.iter().zip(SECTION_DEFS) {
            assert!(!s.body.trim().is_empty(), "{} is empty", s.id);
            assert_eq!(s.id, id);
            assert_eq!(s.title, title);
        }
        let report = generate(db, &route);
        for title in ["Fig. 2", "Table 2", "Fig. 12", "MPTCP"] {
            assert!(report.contains(title), "missing {title}");
        }
    }

    #[test]
    fn parallel_report_is_byte_identical() {
        let ix = network_ix();
        let route = Route::cross_country();
        let sequential = generate_jobs(ix, &route, 1);
        for jobs in [2, 4, 19] {
            assert_eq!(
                sequential,
                generate_jobs(ix, &route, jobs),
                "report differs at {jobs} jobs"
            );
        }
    }
}
