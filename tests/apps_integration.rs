//! End-to-end app QoE over the simulated network (§7 at reduced scale).

use std::sync::OnceLock;

use wheels::campaign::{Campaign, CampaignConfig};
use wheels::xcal::database::{ConsolidatedDb, TestKind};

fn db() -> &'static ConsolidatedDb {
    static DB: OnceLock<ConsolidatedDb> = OnceLock::new();
    DB.get_or_init(|| {
        let mut cfg = CampaignConfig::quick(99);
        cfg.scale = 0.035;
        cfg.passive_tick_s = 60.0;
        cfg.run_passive = false;
        Campaign::new(cfg).run()
    })
}

#[test]
fn every_app_kind_ran() {
    for kind in [
        TestKind::AppAr,
        TestKind::AppCav,
        TestKind::AppVideo,
        TestKind::AppGaming,
    ] {
        let n = db().records.iter().filter(|r| r.kind == kind).count();
        assert!(n >= 3, "{kind:?}: only {n} runs");
    }
}

#[test]
fn ar_metrics_within_model_bounds() {
    for r in db().records.iter().filter(|r| r.kind == TestKind::AppAr) {
        let a = r.app.expect("AR runs carry metrics");
        let e2e = a.e2e_ms_mean.unwrap();
        let fps = a.offload_fps.unwrap();
        let map = a.map_accuracy.unwrap();
        assert!(e2e > 30.0, "E2E {e2e}");
        assert!((0.0..=30.0).contains(&fps), "FPS {fps}");
        assert!((10.0..=38.5).contains(&map), "mAP {map}");
    }
}

#[test]
fn cav_never_meets_100ms() {
    // §7.1.2: the lowest E2E of the whole trip was 148 ms.
    for r in db().records.iter().filter(|r| r.kind == TestKind::AppCav) {
        let e2e = r.app.unwrap().e2e_ms_mean.unwrap();
        assert!(e2e > 100.0, "CAV E2E {e2e} beats the impossible budget");
    }
}

#[test]
fn video_qoe_bounded_and_sometimes_negative() {
    let qoes: Vec<f32> = db()
        .records
        .iter()
        .filter(|r| r.kind == TestKind::AppVideo && !r.is_static)
        .filter_map(|r| r.app?.qoe)
        .collect();
    assert!(!qoes.is_empty());
    for q in &qoes {
        assert!((-2_000.0..=100.0).contains(q), "QoE {q}");
    }
    // §7.2: a substantial share of driving sessions are negative.
    let neg = qoes.iter().filter(|q| **q < 0.0).count();
    assert!(neg * 10 >= qoes.len(), "only {neg}/{} negative", qoes.len());
}

#[test]
fn gaming_bitrate_capped_and_latency_floored() {
    for r in db().records.iter().filter(|r| r.kind == TestKind::AppGaming) {
        let a = r.app.unwrap();
        assert!(a.send_bitrate_mbps.unwrap() <= 100.0);
        assert!(a.net_latency_ms.unwrap() > 10.0);
        assert!((0.0..=0.30).contains(&a.frame_drop_frac.unwrap()));
    }
}

#[test]
fn compressed_and_raw_runs_both_present() {
    for kind in [TestKind::AppAr, TestKind::AppCav] {
        let comp = db()
            .records
            .iter()
            .filter(|r| r.kind == kind && r.app.unwrap().compressed == Some(true))
            .count();
        let raw = db()
            .records
            .iter()
            .filter(|r| r.kind == kind && r.app.unwrap().compressed == Some(false))
            .count();
        assert!(comp > 0 && raw > 0, "{kind:?}: comp {comp} raw {raw}");
    }
}
