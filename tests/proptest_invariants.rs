//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;

use wheels::analysis::Ecdf;
use wheels::apps::video::bba::Bba;
use wheels::apps::video::BITRATES_MBPS;
use wheels::geo::coord::LatLon;
use wheels::geo::route::Route;
use wheels::geo::timezone::Timezone;
use wheels::netsim::cubic::Cubic;
use wheels::netsim::tcp::{CongestionControl, FluidTcp, MSS};
use wheels::radio::mcs::{mcs_from_sinr, spectral_efficiency, MAX_MCS};
use wheels::netsim::faults::{FaultPlan, FaultProfile};
use wheels::netsim::rng::{derive_seed, stream, DOMAIN_CYCLE, DOMAIN_PASSIVE, DOMAIN_PHONE, DOMAIN_STATIC};
use wheels::ran::handover::A3Tracker;
use wheels::xcal::timestamp::Timestamp;

proptest! {
    #[test]
    fn rng_streams_never_collide_across_unit_keys(campaign_seed in 0u64..u64::MAX) {
        // Every (domain, operator, day) work-unit key must map to its own
        // stream: a collision would make two units consume correlated
        // randomness and silently couple "independent" measurements.
        let mut seen = std::collections::HashSet::new();
        for domain in [DOMAIN_PHONE, DOMAIN_CYCLE, DOMAIN_STATIC, DOMAIN_PASSIVE] {
            for op in 0u64..3 {
                for day in 0u64..8 {
                    prop_assert!(
                        seen.insert(derive_seed(campaign_seed, domain, &[op, day])),
                        "stream collision at domain {domain:#x} op {op} day {day}"
                    );
                }
            }
        }
    }

    #[test]
    fn rng_seed_perturbation_changes_every_stream(
        campaign_seed in 0u64..u64::MAX, bit in 0u32..64
    ) {
        // Flipping any single bit of the campaign seed must reroute every
        // derived stream — otherwise two campaigns could share a unit.
        let other = campaign_seed ^ (1u64 << bit);
        for op in 0u64..3 {
            for day in 0u64..8 {
                prop_assert_ne!(
                    derive_seed(campaign_seed, DOMAIN_PHONE, &[op, day]),
                    derive_seed(other, DOMAIN_PHONE, &[op, day]),
                    "op {} day {} stream unchanged under seed flip", op, day
                );
            }
        }
    }

    #[test]
    fn rng_stream_is_pure_and_key_order_sensitive(
        campaign_seed in 0u64..u64::MAX, a in 0u64..1000, b in 0u64..1000
    ) {
        use rand::RngCore;
        let mut x = stream(campaign_seed, DOMAIN_PHONE, &[a, b]);
        let mut y = stream(campaign_seed, DOMAIN_PHONE, &[a, b]);
        for _ in 0..16 {
            prop_assert_eq!(x.next_u64(), y.next_u64());
        }
        if a != b {
            prop_assert_ne!(
                derive_seed(campaign_seed, DOMAIN_PHONE, &[a, b]),
                derive_seed(campaign_seed, DOMAIN_PHONE, &[b, a]),
                "key words must not commute"
            );
        }
    }
    #[test]
    fn fault_plan_decisions_never_collide_across_units(campaign_seed in 0u64..u64::MAX) {
        // Every (unit-kind, operator, coordinate, attempt) must draw its
        // fault decision from its own derived seed: a collision would make
        // two "independent" units fail in lockstep. Mirrors the work-unit
        // key space: kind tags {1,2,3}, 3 operators, 8 days/sites, and the
        // supervisor's full retry budget.
        let plan = FaultPlan::new(campaign_seed, FaultProfile::Harsh);
        let mut seen = std::collections::HashSet::new();
        for kind in 1u64..=3 {
            for op in 0u64..3 {
                for coord in 0u64..8 {
                    for attempt in 0u32..4 {
                        prop_assert!(
                            seen.insert(plan.attempt_seed(&[kind, op, coord], attempt)),
                            "fault-decision collision at kind {kind} op {op} coord {coord} attempt {attempt}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fault_plan_flips_under_single_bit_seed_perturbation(
        campaign_seed in 0u64..u64::MAX, bit in 0u32..64
    ) {
        // Flipping any one bit of the campaign seed must reroute every
        // unit's fault stream, like the RNG streams above — otherwise two
        // campaigns could share a failure schedule.
        let a = FaultPlan::new(campaign_seed, FaultProfile::Harsh);
        let b = FaultPlan::new(campaign_seed ^ (1u64 << bit), FaultProfile::Harsh);
        for op in 0u64..3 {
            for day in 0u64..8 {
                prop_assert_ne!(
                    a.attempt_seed(&[1, op, day], 0),
                    b.attempt_seed(&[1, op, day], 0),
                    "op {} day {} fault stream unchanged under seed flip", op, day
                );
            }
        }
    }

    #[test]
    fn fault_plan_none_profile_is_inert(campaign_seed in 0u64..u64::MAX, attempt in 0u32..8) {
        let plan = FaultPlan::new(campaign_seed, FaultProfile::None);
        for kind in 1u64..=3 {
            for op in 0u64..3 {
                prop_assert_eq!(plan.fault_for(&[kind, op, 0], attempt), None);
            }
        }
    }

    #[test]
    fn haversine_is_a_metric(
        lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
        lat3 in -80.0f64..80.0, lon3 in -179.0f64..179.0,
    ) {
        let a = LatLon::new(lat1, lon1);
        let b = LatLon::new(lat2, lon2);
        let c = LatLon::new(lat3, lon3);
        let ab = a.haversine_m(&b);
        let ba = b.haversine_m(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(ab >= 0.0);
        // Triangle inequality (with float slack).
        prop_assert!(a.haversine_m(&c) <= ab + b.haversine_m(&c) + 1e-6);
    }

    #[test]
    fn route_point_at_stays_on_route(od in -1e6f64..7e6) {
        let route = Route::cross_country();
        let p = route.point_at(od);
        prop_assert!(p.odometer_m >= 0.0 && p.odometer_m <= route.total_m());
        prop_assert!((-90.0..=90.0).contains(&p.pos.lat));
        prop_assert!((-180.0..=180.0).contains(&p.pos.lon));
    }

    #[test]
    fn route_odometer_distance_dominates_geometry(
        od1 in 0.0f64..5.7e6, delta in 0.0f64..1e5
    ) {
        // Driving `delta` odometer meters cannot move you more than
        // `delta` great-circle meters (roads are never shorter than the
        // chord), modulo the road factor and float slack.
        let route = Route::cross_country();
        let a = route.point_at(od1);
        let b = route.point_at(od1 + delta);
        let geom = a.pos.haversine_m(&b.pos);
        prop_assert!(geom <= (b.odometer_m - a.odometer_m) + 2.0);
    }

    #[test]
    fn timestamps_roundtrip_any_format(plan_s in 0.0f64..8.0*86_400.0) {
        let t = Timestamp::from_plan_s(plan_s);
        for tz in Timezone::ALL {
            let s = t.as_local(tz).to_string();
            let back = Timestamp::parse_local(&s, tz).unwrap();
            prop_assert!((back.plan_s - plan_s).abs() < 0.002);
        }
        let utc = Timestamp::parse_utc(&t.as_utc().to_string()).unwrap();
        prop_assert!((utc.plan_s - plan_s).abs() < 0.002);
    }

    #[test]
    fn mcs_map_is_monotone_and_bounded(s1 in -30.0f64..50.0, s2 in -30.0f64..50.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let m_lo = mcs_from_sinr(lo);
        let m_hi = mcs_from_sinr(hi);
        prop_assert!(m_lo <= m_hi);
        prop_assert!(m_hi <= MAX_MCS);
        prop_assert!(spectral_efficiency(m_hi) >= spectral_efficiency(m_lo));
    }

    #[test]
    fn cubic_cwnd_positive_under_any_event_sequence(events in prop::collection::vec(0u8..3, 1..200)) {
        let mut c = Cubic::new();
        let mut t = 0.0;
        for e in events {
            t += 0.05;
            match e {
                0 => c.on_ack(t, c.cwnd_bytes(), 0.05),
                1 => c.on_loss(t),
                _ => c.on_timeout(t),
            }
            prop_assert!(c.cwnd_bytes() >= 2.0 * MSS - 1e-9);
            prop_assert!(c.cwnd_bytes().is_finite());
        }
    }

    #[test]
    fn fluid_tcp_never_outruns_the_link(caps in prop::collection::vec(0.0f64..500.0, 10..200)) {
        let mut flow = FluidTcp::new(Box::new(Cubic::new()));
        let dt = 0.05;
        let mut t = 0.0;
        let mut delivered = 0.0;
        let mut offered = 0.0;
        for cap in caps {
            let out = flow.tick(t, dt, cap, 0.04);
            delivered += out.delivered_bytes;
            offered += wheels::netsim::mbps_to_bps(cap) * dt;
            prop_assert!(out.delivered_bytes >= 0.0);
            t += dt;
        }
        prop_assert!(delivered <= offered + 1.0);
    }

    #[test]
    fn bba_rate_always_on_ladder(buffer in 0.0f64..40.0, prev_idx in 0usize..4) {
        let bba = Bba::default();
        let prev = BITRATES_MBPS[prev_idx];
        let r = bba.pick(buffer, &BITRATES_MBPS, Some(prev));
        prop_assert!(BITRATES_MBPS.contains(&r), "rate {r} not on ladder");
    }

    #[test]
    fn ecdf_percentiles_are_monotone(samples in prop::collection::vec(-1e5f64..1e5, 1..300)) {
        let e = Ecdf::new(samples);
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = e.percentile(p);
            prop_assert!(v >= last);
            last = v;
        }
        prop_assert!(e.frac_below(e.max()) == 1.0);
    }

    #[test]
    fn a3_never_triggers_without_sustained_advantage(
        rsrps in prop::collection::vec((-120.0f64..-60.0, -120.0f64..-60.0), 1..100)
    ) {
        // If the neighbor never exceeds serving + hysteresis, no trigger —
        // regardless of the sequence.
        let mut a3 = A3Tracker::default();
        let mut t = 0.0;
        for (serving, neighbor) in rsrps {
            t += 0.1;
            let capped = neighbor.min(serving + 2.9);
            let fired = a3.observe(t, serving, Some((wheels::ran::cell::CellId(1), capped)));
            prop_assert!(!fired);
        }
    }
}
