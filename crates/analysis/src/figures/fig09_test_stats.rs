//! Fig. 9: per-test mean and standard deviation (as % of the mean) of
//! throughput and RTT — the 30 s / 20 s timescale of §5.6.

use wheels_ran::operator::Operator;
use wheels_xcal::database::TestKind;

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};
use crate::stats::{mean, std_dev};

/// Per-operator distributions of per-test means and std-dev percentages.
#[derive(Debug, Clone)]
pub struct OpTestStats {
    /// Operator.
    pub op: Operator,
    /// Per-test mean DL throughput, Mbps.
    pub dl_mean: Ecdf,
    /// Per-test mean UL throughput, Mbps.
    pub ul_mean: Ecdf,
    /// Per-test mean RTT, ms.
    pub rtt_mean: Ecdf,
    /// Per-test DL std-dev as % of the mean.
    pub dl_stdpct: Ecdf,
    /// Per-test UL std-dev as % of the mean.
    pub ul_stdpct: Ecdf,
    /// Per-test RTT std-dev as % of the mean.
    pub rtt_stdpct: Ecdf,
}

/// Fig. 9 data.
#[derive(Debug, Clone)]
pub struct TestStats {
    /// Per-operator stats.
    pub per_op: Vec<OpTestStats>,
}

fn tput_stats(ix: &AnalysisIndex<'_>, op: Operator, kind: TestKind) -> (Ecdf, Ecdf) {
    let mut means = Vec::new();
    let mut stdpcts = Vec::new();
    for r in ix.records(op, kind, false) {
        let v: Vec<f64> = r.tput_samples().collect();
        if v.len() < 10 {
            continue;
        }
        let m = mean(&v);
        means.push(m);
        if m > 1e-6 {
            stdpcts.push(std_dev(&v) / m * 100.0);
        }
    }
    (Ecdf::new(means), Ecdf::new(stdpcts))
}

fn rtt_stats(ix: &AnalysisIndex<'_>, op: Operator) -> (Ecdf, Ecdf) {
    let mut means = Vec::new();
    let mut stdpcts = Vec::new();
    for r in ix.records(op, TestKind::Rtt, false) {
        let v: Vec<f64> = r.rtt_ms.iter().map(|&x| x as f64).collect();
        if v.len() < 10 {
            continue;
        }
        let m = mean(&v);
        means.push(m);
        if m > 1e-6 {
            stdpcts.push(std_dev(&v) / m * 100.0);
        }
    }
    (Ecdf::new(means), Ecdf::new(stdpcts))
}

/// Compute Fig. 9 from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> TestStats {
    TestStats {
        per_op: ix
            .ops()
            .iter()
            .map(|&op| {
                let (dl_mean, dl_stdpct) = tput_stats(ix, op, TestKind::ThroughputDl);
                let (ul_mean, ul_stdpct) = tput_stats(ix, op, TestKind::ThroughputUl);
                let (rtt_mean, rtt_stdpct) = rtt_stats(ix, op);
                OpTestStats {
                    op,
                    dl_mean,
                    ul_mean,
                    rtt_mean,
                    dl_stdpct,
                    ul_stdpct,
                    rtt_stdpct,
                }
            })
            .collect(),
    }
}

impl TestStats {
    /// Stats for one operator.
    pub fn for_op(&self, op: Operator) -> &OpTestStats {
        self.per_op
            .iter()
            .find(|p| p.op == op)
            .expect("all operators computed")
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 9 — per-test mean & std-dev%");
        out.push('\n');
        for p in &self.per_op {
            out.push_str(&cdf_row(&format!("{} DL mean (Mbps)", p.op.code()), &p.dl_mean));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} UL mean (Mbps)", p.op.code()), &p.ul_mean));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} RTT mean (ms)", p.op.code()), &p.rtt_mean));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} DL std%", p.op.code()), &p.dl_stdpct));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} UL std%", p.op.code()), &p.ul_stdpct));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} RTT std%", p.op.code()), &p.rtt_stdpct));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn per_test_medians_in_papers_range() {
        // §5.6: median DL 30/37/48 Mbps, UL 13/14/10 Mbps, RTT 64/82/81 ms.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            let dl = p.dl_mean.median();
            let ul = p.ul_mean.median();
            let rtt = p.rtt_mean.median();
            assert!((5.0..110.0).contains(&dl), "{op} DL median {dl}");
            assert!((2.0..40.0).contains(&ul), "{op} UL median {ul}");
            assert!((30.0..160.0).contains(&rtt), "{op} RTT median {rtt}");
        }
    }

    #[test]
    fn per_test_mean_median_exceeds_sample_median() {
        // §5.6: "the median throughput is higher than that in Fig. 3
        // (which shows the CDF of 500 ms throughput samples), as the
        // throughput of the samples is long-tailed."
        let ix = small_ix();
        let f = compute(ix);
        let samples = crate::figures::fig03_static_driving::compute(ix);
        for op in Operator::ALL {
            let per_test = f.for_op(op).dl_mean.median();
            let per_sample = samples.for_op(op).driving_dl.median();
            assert!(
                per_test > per_sample * 0.8,
                "{op}: per-test {per_test} vs per-sample {per_sample}"
            );
        }
    }

    #[test]
    fn throughput_fluctuates_heavily_within_tests() {
        // §5.6: median std% 45-70 for throughput.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            assert!(p.dl_stdpct.median() > 25.0, "{op} DL std% {}", p.dl_stdpct.median());
        }
    }

    #[test]
    fn rtt_fluctuates_less_than_throughput() {
        // §5.6: RTT std% medians 18-29 vs 44-70 for throughput.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.rtt_stdpct.is_empty() || p.dl_stdpct.is_empty() {
                continue;
            }
            assert!(
                p.rtt_stdpct.median() < p.dl_stdpct.median() + 25.0,
                "{op}: rtt {} vs dl {}",
                p.rtt_stdpct.median(),
                p.dl_stdpct.median()
            );
        }
    }
}
