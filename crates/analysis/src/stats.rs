//! Basic statistics: mean, standard deviation, percentiles, Pearson's r.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Population standard deviation (0 for fewer than 2 samples).
pub fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// `p`-th percentile (0 ≤ p ≤ 100) with linear interpolation.
/// Returns 0 for an empty slice.
pub fn percentile(v: &[f64], p: f64) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s: Vec<f64> = v.to_vec();
    s.sort_by(f64::total_cmp);
    percentile_sorted(&s, p)
}

/// `p`-th percentile of an already sorted slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median.
pub fn median(v: &[f64]) -> f64 {
    percentile(v, 50.0)
}

/// Pearson's correlation coefficient between paired samples.
/// Returns 0 when either side has no variance or fewer than 2 pairs.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson needs paired samples");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut num = 0.0;
    let mut dx2 = 0.0;
    let mut dy2 = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        num += dx * dy;
        dx2 += dx * dx;
        dy2 += dy * dy;
    }
    if dx2 <= 0.0 || dy2 <= 0.0 {
        return 0.0;
    }
    num / (dx2 * dy2).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yn = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &yn) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let x: Vec<f64> = (0..1000).map(|i| i as f64 * 7.0 % 13.0).collect();
        let y: Vec<f64> = (0..1000).map(|i| i as f64 * 11.0 % 17.0).collect();
        assert!(pearson(&x, &y).abs() < 0.15);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn pearson_mismatched_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
