//! The nuttcp-style bulk transfer test.
//!
//! §5: *"we used nuttcp with the default TCP congestion control algorithm,
//! CUBIC, to generate downlink and uplink backlogged traffic ... with a
//! single TCP connection ... Each test lasted for 30-35 s and logged
//! throughput every 500 ms."*
//!
//! [`BulkTransferTest`] drives a [`FluidTcp`] flow over a caller-supplied
//! link (capacity + base RTT as functions of time) and returns the 500 ms
//! application-layer throughput samples XCAL would log.

use crate::cubic::Cubic;
use crate::tcp::{CongestionControl, FluidTcp};

/// One 500 ms application-layer throughput sample.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputSample {
    /// End of the sample window, seconds (absolute).
    pub time_s: f64,
    /// Mean throughput over the window, Mbps.
    pub mbps: f64,
}

/// Configuration of a bulk transfer test.
#[derive(Debug, Clone, Copy)]
pub struct BulkTransferTest {
    /// Test duration, seconds (paper: 30–35 s).
    pub duration_s: f64,
    /// Throughput sampling period, seconds (paper: 0.5 s).
    pub sample_s: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
}

impl Default for BulkTransferTest {
    fn default() -> Self {
        BulkTransferTest {
            duration_s: 30.0,
            sample_s: 0.5,
            tick_s: 0.02,
        }
    }
}

impl BulkTransferTest {
    /// Run the test starting at absolute time `t0_s` with the default CUBIC
    /// controller. `link` maps absolute time to `(capacity_mbps,
    /// base_rtt_s)`.
    pub fn run(
        &self,
        t0_s: f64,
        link: impl FnMut(f64) -> (f64, f64),
    ) -> Vec<ThroughputSample> {
        self.run_with(t0_s, Box::new(Cubic::new()), link)
    }

    /// Run with an explicit congestion controller (for the CUBIC-vs-Reno
    /// ablation).
    pub fn run_with(
        &self,
        t0_s: f64,
        cc: Box<dyn CongestionControl + Send>,
        mut link: impl FnMut(f64) -> (f64, f64),
    ) -> Vec<ThroughputSample> {
        assert!(self.tick_s > 0.0 && self.sample_s >= self.tick_s);
        let mut flow = FluidTcp::new(cc);
        let mut samples = Vec::with_capacity((self.duration_s / self.sample_s) as usize + 1);
        let mut window_bytes = 0.0;
        let mut window_start = 0.0_f64;
        let mut t = 0.0_f64;
        while t < self.duration_s {
            let (cap, rtt) = link(t0_s + t);
            let out = flow.tick(t0_s + t, self.tick_s, cap, rtt);
            window_bytes += out.delivered_bytes;
            t += self.tick_s;
            if t - window_start >= self.sample_s - 1e-9 {
                samples.push(ThroughputSample {
                    time_s: t0_s + t,
                    mbps: crate::bps_to_mbps(window_bytes / (t - window_start)),
                });
                window_bytes = 0.0;
                window_start = t;
            }
        }
        samples
    }

    /// Mean throughput over a full run, Mbps.
    pub fn mean_mbps(samples: &[ThroughputSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().map(|s| s.mbps).sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_60_samples_for_30s() {
        let t = BulkTransferTest::default();
        let samples = t.run(0.0, |_| (50.0, 0.05));
        assert_eq!(samples.len(), 60);
    }

    #[test]
    fn steady_link_yields_near_capacity() {
        let t = BulkTransferTest::default();
        let samples = t.run(100.0, |_| (50.0, 0.05));
        let mean = BulkTransferTest::mean_mbps(&samples);
        assert!((38.0..51.0).contains(&mean), "{mean}");
        // Later samples (post slow-start) should be at capacity.
        let tail = &samples[20..];
        let tail_mean = tail.iter().map(|s| s.mbps).sum::<f64>() / tail.len() as f64;
        assert!(tail_mean > 44.0, "{tail_mean}");
    }

    #[test]
    fn capacity_drop_shows_in_samples() {
        let t = BulkTransferTest::default();
        let samples = t.run(0.0, |time| if time < 15.0 { (100.0, 0.05) } else { (5.0, 0.05) });
        let early = samples[10].mbps;
        let late = samples[55].mbps;
        assert!(early > 50.0, "{early}");
        assert!(late < 10.0, "{late}");
    }

    #[test]
    fn blackout_zeroes_samples() {
        let t = BulkTransferTest::default();
        let samples = t.run(0.0, |time| {
            if (10.0..12.0).contains(&time) {
                (0.0, 0.05)
            } else {
                (20.0, 0.05)
            }
        });
        let during: Vec<_> = samples
            .iter()
            .filter(|s| (10.6..11.9).contains(&s.time_s))
            .collect();
        assert!(!during.is_empty());
        assert!(during.iter().all(|s| s.mbps < 1.0), "{during:?}");
    }

    #[test]
    fn sample_timestamps_are_absolute() {
        let t = BulkTransferTest::default();
        let samples = t.run(1_000.0, |_| (10.0, 0.05));
        assert!(samples[0].time_s > 1_000.0);
        assert!(samples.last().unwrap().time_s <= 1_030.0 + 1e-6);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(BulkTransferTest::mean_mbps(&[]), 0.0);
    }
}
