//! Clean counterpart of `bad/d4_bare_rng.rs`: units draw their streams
//! through `netsim::rng`, and a constructor that *receives* a derived
//! seed documents that provenance in its allow.

use wheels_netsim::rng::{self, DOMAIN_PHONE};

fn unit_rng(campaign_seed: u64, op: u64, day: u64) -> impl Sized {
    rng::stream(campaign_seed, DOMAIN_PHONE, &[op, day])
}

fn component_rng(derived_seed: u64) -> impl Sized {
    // lint:allow(D4): seed arrives pre-derived via netsim::rng::derive_seed
    rand::rngs::SmallRng::seed_from_u64(derived_seed)
}
