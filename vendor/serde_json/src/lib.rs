//! Offline stand-in for `serde_json`.
//!
//! Deterministic JSON serialization (compact and 2-space pretty forms,
//! matching serde_json's layout) and a recursive-descent parser, both
//! over the vendored `serde` [`Value`] model. Number tokens parsed from
//! text are kept verbatim ([`serde::Num::Raw`]) so parse→serialize is
//! byte-stable, and native floats are written with Rust's shortest
//! round-trip `Display` so serialize→parse is value-exact. The
//! campaign's byte-identical export guarantee (sequential == parallel)
//! is tested against this writer's output.
//!
//! Serialization **streams**: [`to_string`] / [`to_string_pretty`] drive
//! [`Serialize::stream`] straight into one growing buffer, and
//! [`to_writer`] / [`to_writer_pretty`] drain into any `io::Write` with
//! a bounded in-memory buffer. The historical tree path ([`write_value`]
//! over a materialized [`Value`]) is kept public as the equivalence
//! oracle — the streamed bytes are proptested identical to it.

#![forbid(unsafe_code)]

pub use serde::Error;
use serde::ser::JsonWriter;
use serde::{Deserialize, Num, Serialize, Value};

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON (`{"a":1,"b":[2,3]}`), streamed.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut w = JsonWriter::compact();
    value.stream(&mut w);
    Ok(w.finish())
}

/// Serialize to pretty JSON (2-space indent, serde_json layout), streamed.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut w = JsonWriter::pretty();
    value.stream(&mut w);
    Ok(w.finish())
}

/// Stream compact JSON into `w` with a bounded (64 KiB) buffer — the
/// whole document never sits in memory a second time.
pub fn to_writer<W: std::io::Write, T: Serialize>(mut w: W, value: &T) -> Result<()> {
    let mut jw = JsonWriter::to_io(&mut w, None);
    value.stream(&mut jw);
    jw.finish_io().map_err(|e| Error::msg(format!("io error: {e}")))
}

/// Stream pretty JSON into `w` (see [`to_writer`]).
pub fn to_writer_pretty<W: std::io::Write, T: Serialize>(mut w: W, value: &T) -> Result<()> {
    let mut jw = JsonWriter::to_io(&mut w, Some(2));
    value.stream(&mut jw);
    jw.finish_io().map_err(|e| Error::msg(format!("io error: {e}")))
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.i)));
    }
    T::from_value(&v)
}

// ------------------------------------------------------------------- writer

/// Write a materialized [`Value`] tree into `out` — the historical tree
/// serializer, now a thin shell over the shared streaming emitter in
/// `serde::ser`. Public so benches and property tests can compare the
/// streamed path against it byte for byte.
pub fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let mut w = JsonWriter::append_to(std::mem::take(out), indent, depth);
    w.value(v);
    *out = w.finish();
}

/// serde_json writes integral floats as `1.0`, not `1`; keep that so the
/// number's float-ness survives a round-trip. One shared implementation
/// covers `f64` and `f32` (see [`serde::ser::write_float`]).
pub fn fmt_float<T: serde::ser::JsonFloat>(x: T) -> String {
    let mut out = String::new();
    serde::ser::write_float(&mut out, x);
    out
}

// ------------------------------------------------------------------- parser

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.i) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.i)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.i))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.i
            ))),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| Error::msg("non-utf8 number"))?;
        if tok.is_empty() || tok == "-" || tok.parse::<f64>().is_err() {
            return Err(Error::msg(format!("bad number at byte {start}")));
        }
        Ok(Value::Num(Num::Raw(tok.to_string())))
    }

    /// Four hex digits at the cursor (one `\uXXXX` payload); advances
    /// past them.
    fn hex4(&mut self) -> Result<u32> {
        if self.i + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.i..self.i + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.i += 4;
        Ok(code)
    }

    /// Decode one `\uXXXX` escape with the cursor on the first hex digit,
    /// leaving it past the last consumed digit. UTF-16 surrogate pairs
    /// (high `\\uD83D` then low `\\uDE00`) decode to their supplementary
    /// code point; lone or mismatched surrogates are rejected — real serde_json behaviour —
    /// instead of collapsing to U+FFFD.
    fn unicode_escape(&mut self) -> Result<char> {
        let hi = self.hex4()?;
        match hi {
            0xD800..=0xDBFF => {
                if self.bytes.get(self.i) != Some(&b'\\')
                    || self.bytes.get(self.i + 1) != Some(&b'u')
                {
                    return Err(Error::msg(format!(
                        "lone high surrogate \\u{hi:04x} (expected \\uDC00-\\uDFFF next)"
                    )));
                }
                self.i += 2;
                let lo = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(Error::msg(format!(
                        "invalid surrogate pair \\u{hi:04x}\\u{lo:04x}"
                    )));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                char::from_u32(code)
                    .ok_or_else(|| Error::msg("surrogate pair outside Unicode"))
            }
            0xDC00..=0xDFFF => {
                Err(Error::msg(format!("lone low surrogate \\u{hi:04x}")))
            }
            code => char::from_u32(code).ok_or_else(|| Error::msg("bad \\u escape")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            // Find the next byte of interest, copying UTF-8 through.
            let start = self.i;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.i += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.i])
                    .map_err(|_| Error::msg("non-utf8 string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.i += 1;
                            s.push(self.unicode_escape()?);
                            // unicode_escape leaves `i` on the last hex
                            // digit; the shared +1 below steps past it.
                            self.i -= 1;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Num;

    #[test]
    fn surrogate_pairs_decode() {
        // 😀 U+1F600 and 𝄞 U+1D11E, both above the BMP.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        assert_eq!(
            from_str::<String>("\"x\\uD834\\uDD1Ey\"").unwrap(),
            "x\u{1D11E}y"
        );
        // BMP escapes are unaffected.
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        for bad in [
            "\"\\ud800\"",          // lone high at end of string
            "\"\\ud83dx\"",         // high followed by a plain char
            "\"\\ud83d\\n\"",       // high followed by another escape
            "\"\\ud83d\\u0041\"",   // high followed by a non-low escape
            "\"\\udc00\"",          // lone low
            "\"\\ude00\\ud83d\"",   // pair in the wrong order
        ] {
            assert!(from_str::<String>(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn streamed_matches_tree_writer() {
        let v = Value::Object(vec![
            ("f".into(), Value::Num(Num::F64(2.5))),
            ("g".into(), Value::Num(Num::F32(1.0))),
            (
                "nested".into(),
                Value::Array(vec![
                    Value::Str("a\"b\\c\u{1F600}\u{1}".into()),
                    Value::Object(vec![]),
                    Value::Array(vec![]),
                    Value::Num(Num::Raw("-1.25e3".into())),
                ]),
            ),
        ]);
        for indent in [None, Some(2)] {
            let mut tree = String::new();
            write_value(&v, indent, 0, &mut tree);
            let mut w = JsonWriter::append_to(String::new(), indent, 0);
            serde::Serialize::stream(&v, &mut w);
            assert_eq!(w.finish(), tree);
        }
    }

    #[test]
    fn to_writer_matches_to_string() {
        let v = Value::Array(vec![
            Value::Num(Num::U64(1)),
            Value::Str("two".into()),
            Value::Bool(true),
        ]);
        let mut buf = Vec::new();
        to_writer(&mut buf, &v).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), to_string(&v).unwrap());
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &v).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            to_string_pretty(&v).unwrap()
        );
    }

    #[test]
    fn f32_layout_matches_f64_helper_and_roundtrips() {
        // The integral-float layout is one shared helper across widths.
        assert_eq!(fmt_float(1.0f32), "1.0");
        assert_eq!(fmt_float(1.0f64), "1.0");
        assert_eq!(fmt_float(-42.0f32), "-42.0");
        // Shortest-form f32 tokens parse back to the exact same f32 —
        // no double rounding through f64.
        for x in [0.1f32, 1.0, -3.5e-9, 16_777_216.0, 0.3, 1e15, f32::MIN_POSITIVE] {
            let j = to_string(&x).unwrap();
            let back: f32 = from_str(&j).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{j}");
        }
    }

    #[test]
    fn compact_and_pretty_shapes() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num(Num::U64(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Num(Num::F64(2.0)), Value::Null]),
            ),
        ]);
        let mut c = String::new();
        write_value(&v, None, 0, &mut c);
        assert_eq!(c, "{\"a\":1,\"b\":[2.0,null]}");
        let mut p = String::new();
        write_value(&v, Some(2), 0, &mut p);
        assert_eq!(p, "{\n  \"a\": 1,\n  \"b\": [\n    2.0,\n    null\n  ]\n}");
    }

    #[test]
    fn parse_roundtrip_is_byte_stable() {
        let text = "{\"x\":-1.25e3,\"y\":[true,false,\"a\\nb\"],\"z\":null}";
        let v: Value = {
            let mut p = Parser { bytes: text.as_bytes(), i: 0 };
            p.value(0).unwrap()
        };
        let mut out = String::new();
        write_value(&v, None, 0, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn float_display_roundtrips() {
        for x in [0.1f64, 1.0, -3.5e-9, 123456.789, 1e15, 0.30000000000000004] {
            let s = fmt_float(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
