//! Clean counterpart of `bad/d1_sort_partial_cmp.rs`: the same sorts
//! keyed with `f64::total_cmp` lint clean, and a genuinely-needed
//! `partial_cmp` comparator can be allowed with a reason.

fn single_line(v: &mut Vec<f64>) {
    v.sort_by(f64::total_cmp);
}

fn multi_line(sites: &mut Vec<(f64, u32)>) {
    sites.sort_by(|a, b| a.0.total_cmp(&b.0));
}

fn min_max(xs: &[f64]) -> Option<&f64> {
    let _ = xs.iter().max_by(|a, b| a.total_cmp(b));
    xs.iter().min_by(|a, b| a.total_cmp(b))
}

fn search(xs: &[f64], od: f64) -> Result<usize, usize> {
    xs.binary_search_by(|s| s.total_cmp(&od))
}

fn suppressed(v: &mut Vec<MyOrd>) {
    // lint:allow(D1): MyOrd::partial_cmp is total by construction
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
