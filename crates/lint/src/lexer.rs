//! A spanned Rust tokenizer that separates code from string/comment
//! content.
//!
//! The rules in [`crate::rules`] are token matchers; to keep them honest
//! they must never fire on a forbidden token that only appears inside a
//! string literal, a comment, or a doc comment (`"Instant::now"` in a log
//! message is not a wall-clock read). The lexer walks the source once
//! with a small state machine covering line comments, nested block
//! comments, string literals (with escapes), raw strings (`r#"..."#`
//! with any hash count), byte/char literals, and lifetimes, and emits:
//!
//! * a [`Token`] stream — identifiers, lifetimes, numeric literals,
//!   string/char literal markers (content blanked), and single-character
//!   punctuation, each with a 1-based line and column;
//! * per physical line, a [`Line`]: `code` (the line with every
//!   string/char/comment byte replaced by a space, same char length as
//!   the input so column arithmetic stays valid) and `comment` (the
//!   concatenated comment text, which is where `lint:allow(...)`
//!   suppression directives live).
//!
//! The tokenizer is total: any byte soup lexes without panicking (see
//! `tests/lexer_props.rs`), and stripping is idempotent — lexing the
//! stripped code of a file reproduces that code byte for byte.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `partial_cmp`, `HashMap`).
    Ident,
    /// Lifetime (`'a`); `text` includes the tick.
    Lifetime,
    /// Integer literal (`42`, `0x5EED`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e-3`, `1.`).
    Float,
    /// String literal (plain, raw, or byte); content is not retained.
    Str,
    /// Char or byte-char literal; content is not retained.
    Char,
    /// One punctuation character (`text` is that single char).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text. Empty for [`TokenKind::Str`] and [`TokenKind::Char`]
    /// (rules must never depend on literal content).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based character column.
    pub col: usize,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One physical source line, split into its code and comment parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Code content; string/char/comment characters blanked to spaces.
    pub code: String,
    /// Comment text (line + block comments), delimiters stripped.
    pub comment: String,
}

/// A fully lexed file: the token stream plus the per-line strip view.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// Per physical line code/comment split (same line count as input).
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Inside `"..."`.
    Str,
    /// Inside `r##"..."##`; the payload is the hash count.
    RawStr(u32),
    /// Inside `'...'` (char or byte literal).
    Char,
}

/// Strip `src` into per-line code/comment parts (the legacy view; same
/// output as `tokenize(src).lines`).
pub fn strip(src: &str) -> Vec<Line> {
    tokenize(src).lines
}

/// Lex `src` into tokens and per-line code/comment parts.
pub fn tokenize(src: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let mut state = State::Code;
    for (line_no, raw) in src.split('\n').enumerate() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw_tail(&chars, i + 2));
                        // Blank the rest of the line in the code view.
                        for _ in i..chars.len() {
                            code.push(' ');
                        }
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        push_tok(&mut out, TokenKind::Str, String::new(), line_no, i);
                        state = State::Str;
                        code.push(' ');
                        i += 1;
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        push_tok(&mut out, TokenKind::Str, String::new(), line_no, i);
                        let hashes = count_hashes(&chars, i + 1);
                        state = State::RawStr(hashes);
                        // Blank `r` + hashes + opening quote.
                        let span = 2 + hashes as usize;
                        for _ in 0..span.min(chars.len() - i) {
                            code.push(' ');
                        }
                        i += span;
                    }
                    'b' if next == Some('"') => {
                        push_tok(&mut out, TokenKind::Str, String::new(), line_no, i);
                        state = State::Str;
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    'b' if next == Some('r') && is_raw_string_start(&chars, i + 1) => {
                        push_tok(&mut out, TokenKind::Str, String::new(), line_no, i);
                        let hashes = count_hashes(&chars, i + 2);
                        state = State::RawStr(hashes);
                        let span = 3 + hashes as usize;
                        for _ in 0..span.min(chars.len() - i) {
                            code.push(' ');
                        }
                        i += span;
                    }
                    '\'' => {
                        // Disambiguate char literal from lifetime: a char
                        // literal is `'x'` or `'\...'`; a lifetime is `'`
                        // followed by an identifier with no closing quote.
                        if next == Some('\\') {
                            push_tok(&mut out, TokenKind::Char, String::new(), line_no, i);
                            state = State::Char;
                            code.push(' ');
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            // `'x'` — but `'a'` could also be a lifetime
                            // followed by a char literal in pathological
                            // generics; plain `'x'` is by far the common
                            // case and the safe read for token blanking.
                            push_tok(&mut out, TokenKind::Char, String::new(), line_no, i);
                            code.push(' ');
                            code.push(' ');
                            code.push(' ');
                            i += 3;
                        } else {
                            // Lifetime: keep the tick and name; it can't
                            // form a rule token but the parser uses it.
                            let mut text = String::from('\'');
                            code.push('\'');
                            let mut j = i + 1;
                            while j < chars.len() && is_ident_continue(chars[j]) {
                                text.push(chars[j]);
                                code.push(chars[j]);
                                j += 1;
                            }
                            push_tok(&mut out, TokenKind::Lifetime, text, line_no, i);
                            i = j;
                        }
                    }
                    c if is_ident_start(c) => {
                        let mut text = String::new();
                        let mut j = i;
                        while j < chars.len() && is_ident_continue(chars[j]) {
                            text.push(chars[j]);
                            code.push(chars[j]);
                            j += 1;
                        }
                        push_tok(&mut out, TokenKind::Ident, text, line_no, i);
                        i = j;
                    }
                    c if c.is_ascii_digit() => {
                        let (end, is_float) = scan_number(&chars, i);
                        let text: String = chars[i..end].iter().collect();
                        for ch in &chars[i..end] {
                            code.push(*ch);
                        }
                        let kind = if is_float { TokenKind::Float } else { TokenKind::Int };
                        push_tok(&mut out, kind, text, line_no, i);
                        i = end;
                    }
                    c if c.is_whitespace() => {
                        code.push(c);
                        i += 1;
                    }
                    _ => {
                        push_tok(&mut out, TokenKind::Punct, c.to_string(), line_no, i);
                        code.push(c);
                        i += 1;
                    }
                },
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        // Skip the escaped char (possibly the closing
                        // quote or another backslash).
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else {
                        if c == '"' {
                            state = State::Code;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && has_hashes(&chars, i + 1, hashes) {
                        state = State::Code;
                        let span = 1 + hashes as usize;
                        for _ in 0..span.min(chars.len() - i) {
                            code.push(' ');
                        }
                        i += span;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => {
                    if c == '\\' {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else {
                        if c == '\'' {
                            state = State::Code;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        out.lines.push(Line { code, comment });
    }
    out
}

fn push_tok(out: &mut LexedFile, kind: TokenKind, text: String, line_no: usize, col0: usize) {
    out.tokens.push(Token {
        kind,
        text,
        line: line_no + 1,
        col: col0 + 1,
    });
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan a numeric literal starting at `chars[start]` (an ASCII digit).
/// Returns `(end_index, is_float)`. Handles radix prefixes, `_`
/// separators, `1.5` / `1.` / `2e-3` floats, and type suffixes — and is
/// careful to stop before `..` (a range, not a float) and before
/// `1.method()` (an int with a method call).
fn scan_number(chars: &[char], start: usize) -> (usize, bool) {
    let mut j = start;
    // Radix-prefixed integers never contain a float part.
    if chars[j] == '0' {
        if let Some(r) = chars.get(j + 1) {
            if matches!(r, 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
                j += 2;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                return (j.max(start + 1), false);
            }
        }
    }
    let mut is_float = false;
    // Integer part, exponents, and suffixes: alphanumerics and `_`, with
    // a special case so `2e-3` consumes the signed exponent.
    let consume_digits_and_suffix = |j: &mut usize| {
        while *j < chars.len() {
            let c = chars[*j];
            if c.is_ascii_alphanumeric() || c == '_' {
                if matches!(c, 'e' | 'E')
                    && matches!(chars.get(*j + 1), Some('+') | Some('-'))
                    && chars.get(*j + 2).is_some_and(|d| d.is_ascii_digit())
                {
                    *j += 2; // the sign; the digit is consumed by the loop
                }
                *j += 1;
            } else {
                break;
            }
        }
    };
    consume_digits_and_suffix(&mut j);
    if j < chars.len() && chars[j] == '.' {
        match chars.get(j + 1) {
            // `1.5`: fractional part follows.
            Some(d) if d.is_ascii_digit() => {
                is_float = true;
                j += 1;
                consume_digits_and_suffix(&mut j);
            }
            // `1..n` is a range and `1.max(2)` is a method call — the
            // dot is not part of this literal.
            Some(&'.') => {}
            Some(&c) if is_ident_start(c) => {}
            // `1.` trailing-dot float (possibly at end of line).
            _ => {
                is_float = true;
                j += 1;
            }
        }
    }
    (j.max(start + 1), is_float)
}

fn raw_tail(chars: &[char], from: usize) -> String {
    chars[from.min(chars.len())..].iter().collect()
}

/// Is `chars[i] == 'r'` the start of a raw string (`r"`, `r#"`, ...)?
/// Requires `r` not to be part of a longer identifier (e.g. `for`, `var`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if chars.get(i) != Some(&'r') {
        return false;
    }
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn has_hashes(chars: &[char], mut i: usize, n: u32) -> bool {
    for _ in 0..n {
        if chars.get(i) != Some(&'#') {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        strip(src).into_iter().map(|l| l.code).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn line_comment_moves_to_comment_part() {
        let lines = strip("let x = 1; // lint:allow(D2): reason\nlet y = 2;");
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("lint:allow"));
        assert!(lines[0].comment.contains("lint:allow(D2): reason"));
        assert_eq!(lines[1].comment, "");
    }

    #[test]
    fn string_content_is_blanked() {
        let c = code_of("let s = \"Instant::now HashMap\"; s.len();");
        assert!(!c[0].contains("Instant::now"));
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let s ="));
        assert!(c[0].contains("s.len();"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let c = code_of(r#"let s = "a\"partial_cmp\"b"; sort_by(x);"#);
        assert!(!c[0].contains("partial_cmp"));
        assert!(c[0].contains("sort_by(x);"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"thread_rng \"quoted\" HashSet\"#; after();";
        let c = code_of(src);
        assert!(!c[0].contains("thread_rng"));
        assert!(!c[0].contains("HashSet"));
        assert!(c[0].contains("after();"));
    }

    #[test]
    fn raw_string_spanning_lines() {
        let src = "let s = r\"line one HashMap\nline two Instant::now\"; tail();";
        let c = code_of(src);
        assert!(!c[0].contains("HashMap"));
        assert!(!c[1].contains("Instant::now"));
        assert!(c[1].contains("tail();"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a(); /* outer HashMap /* inner */ still comment */ b();\nc(); /* open\nSystemTime::now\n*/ d();";
        let c = code_of(src);
        assert!(c[0].contains("a();") && c[0].contains("b();"));
        assert!(!c[0].contains("HashMap"));
        assert!(c[1].contains("c();"));
        assert!(!c[2].contains("SystemTime"));
        assert!(c[3].contains("d();"));
    }

    #[test]
    fn block_comment_text_is_captured() {
        let lines = strip("x(); /* lint:allow(D4): keyed */ y();");
        assert!(lines[0].comment.contains("lint:allow(D4): keyed"));
        assert!(lines[0].code.contains("y();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let c = code_of("fn f<'a>(x: &'a str) -> &'a str { x } g();");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        assert!(c[0].contains("g();"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let c = code_of("let q = '\"'; let e = '\\''; let n = '\\n'; done();");
        assert!(c[0].contains("done();"), "char-literal quotes must not open strings: {}", c[0]);
        assert!(!c[0].contains('"'));
    }

    #[test]
    fn code_length_is_preserved() {
        let src = "let s = \"abc\"; // tail";
        let lines = strip(src);
        assert_eq!(lines[0].code.chars().count(), src.chars().count());
    }

    #[test]
    fn multi_line_statement_survives() {
        let src = "v.sort_by(|a, b| {\n    a.partial_cmp(b)\n        .unwrap()\n});";
        let c = code_of(src);
        assert!(c[0].contains("sort_by"));
        assert!(c[1].contains("partial_cmp"));
        assert!(c[2].contains(".unwrap()"));
    }

    #[test]
    fn line_comment_inside_string_is_code() {
        let c = code_of("let url = \"http://x\"; real();");
        assert!(c[0].contains("real();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let c = code_of("let var = over\"s\"; next();");
        // `over"s"` — the `r` belongs to `over`, so the string is just "s".
        assert!(c[0].contains("next();"));
        assert!(c[0].contains("let var = over"));
    }

    #[test]
    fn tokens_carry_positions() {
        let lex = tokenize("let x = 42;\nfoo.bar();");
        let x = lex.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (1, 5));
        let bar = lex.tokens.iter().find(|t| t.is_ident("bar")).unwrap();
        assert_eq!((bar.line, bar.col), (2, 5));
    }

    #[test]
    fn numbers_lex_as_one_token() {
        let lex = tokenize("a(1_000u64, 0x5EED, 1.5e-3, 2., 0b1010);");
        let nums: Vec<(&TokenKind, &str)> = lex
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (&t.kind, t.text.as_str()))
            .collect();
        assert_eq!(
            nums,
            vec![
                (&TokenKind::Int, "1_000u64"),
                (&TokenKind::Int, "0x5EED"),
                (&TokenKind::Float, "1.5e-3"),
                (&TokenKind::Float, "2."),
                (&TokenKind::Int, "0b1010"),
            ]
        );
    }

    #[test]
    fn range_and_method_dots_are_not_float_parts() {
        let lex = tokenize("for i in 0..10 { let m = 1.max(2); }");
        assert!(lex.tokens.iter().any(|t| t.kind == TokenKind::Int && t.text == "0"));
        assert!(lex.tokens.iter().any(|t| t.kind == TokenKind::Int && t.text == "10"));
        assert!(lex.tokens.iter().any(|t| t.kind == TokenKind::Int && t.text == "1"));
        assert!(lex.tokens.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn string_and_char_tokens_are_content_free() {
        let lex = tokenize("let s = \"unwrap()\"; let c = 'x';");
        let strs: Vec<&Token> = lex
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str | TokenKind::Char))
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs.iter().all(|t| t.text.is_empty()));
        assert!(!lex.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_string_with_hashes_holding_quotes_and_comments() {
        // Regression: hashes + embedded quote + `//` inside the raw
        // string must not open a comment or end the string early.
        let src = "let s = r##\"a \"# b // not a comment\"##; tail();";
        let lex = tokenize(src);
        assert!(lex.lines[0].code.contains("tail();"));
        assert!(lex.lines[0].comment.is_empty());
        assert!(!lex.tokens.iter().any(|t| t.is_ident("comment")));
    }

    #[test]
    fn nested_block_comment_with_string_delimiters() {
        // Regression: `"` inside a nested block comment must not open a
        // string that swallows the comment close.
        let src = "before(); /* outer \" /* inner \" */ still */ after();";
        let lex = tokenize(src);
        assert!(lex.lines[0].code.contains("before();"));
        assert!(lex.lines[0].code.contains("after();"));
        assert!(lex.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn keywords_and_paths_tokenize_separately() {
        assert_eq!(
            idents("use std::collections::HashMap;"),
            vec!["use", "std", "collections", "HashMap"]
        );
    }
}
