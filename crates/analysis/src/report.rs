//! One-call full report: every table and figure rendered into a single
//! markdown document (what `repro all` prints, with section headers).

use wheels_geo::route::Route;
use wheels_xcal::database::ConsolidatedDb;

use crate::figures as figs;
use crate::map::render_fig1_maps;

/// Section of the full report.
#[derive(Debug, Clone)]
pub struct Section {
    /// Paper artifact id ("fig3", "table2", ...).
    pub id: &'static str,
    /// Section heading.
    pub title: &'static str,
    /// Rendered body.
    pub body: String,
}

/// Render every paper artifact (plus the coverage maps and the MPTCP
/// extension) from a campaign database.
pub fn sections(db: &ConsolidatedDb, route: &Route) -> Vec<Section> {
    let total_m = route.total_m();
    vec![
        Section {
            id: "fig1",
            title: "Fig. 1 — passive vs active coverage views",
            body: format!(
                "{}\n{}",
                figs::fig01_coverage_views::compute(db).render(),
                render_fig1_maps(db, total_m, 96)
            ),
        },
        Section {
            id: "fig2",
            title: "Fig. 2 — technology coverage",
            body: figs::fig02_coverage::compute(db).render(),
        },
        Section {
            id: "fig3",
            title: "Fig. 3 — static vs driving performance",
            body: figs::fig03_static_driving::compute(db).render(),
        },
        Section {
            id: "fig4",
            title: "Fig. 4 — per-technology performance",
            body: figs::fig04_tech_perf::compute(db).render(),
        },
        Section {
            id: "fig5",
            title: "Fig. 5 — throughput by timezone",
            body: figs::fig05_timezones::compute(db).render(),
        },
        Section {
            id: "fig6",
            title: "Fig. 6 — operator diversity",
            body: figs::fig06_operator_diversity::compute(db).render(),
        },
        Section {
            id: "fig7",
            title: "Fig. 7 — throughput vs speed",
            body: figs::fig07_speed_tput::compute(db).render(),
        },
        Section {
            id: "fig8",
            title: "Fig. 8 — RTT vs speed",
            body: figs::fig08_speed_rtt::compute(db).render(),
        },
        Section {
            id: "table2",
            title: "Table 2 — KPI correlations",
            body: figs::table2_correlations::compute(db).render(),
        },
        Section {
            id: "fig9",
            title: "Fig. 9 — per-test statistics",
            body: figs::fig09_test_stats::compute(db).render(),
        },
        Section {
            id: "fig10",
            title: "Fig. 10 — performance vs hs5G time",
            body: figs::fig10_hs5g::compute(db).render(),
        },
        Section {
            id: "table3",
            title: "Table 3 — Ookla comparison",
            body: figs::table3_ookla::compute(db).render(),
        },
        Section {
            id: "fig11",
            title: "Fig. 11 — handover statistics",
            body: figs::fig11_handovers::compute(db).render(),
        },
        Section {
            id: "fig12",
            title: "Fig. 12 — handover impact",
            body: figs::fig12_ho_impact::compute(db).render(),
        },
        Section {
            id: "fig13",
            title: "Fig. 13/18/19 — AR",
            body: figs::fig13_ar::compute(db).render(),
        },
        Section {
            id: "fig14",
            title: "Fig. 14/20 — CAV",
            body: figs::fig14_cav::compute(db).render(),
        },
        Section {
            id: "fig15",
            title: "Fig. 15/21 — 360° video",
            body: figs::fig15_video::compute(db).render(),
        },
        Section {
            id: "fig16",
            title: "Fig. 16/22 — cloud gaming",
            body: figs::fig16_gaming::compute(db).render(),
        },
        Section {
            id: "ext-mptcp",
            title: "Extension — MPTCP over three operators",
            body: figs::ext_multipath::compute(db).render(),
        },
    ]
}

/// The full report as one markdown string.
pub fn generate(db: &ConsolidatedDb, route: &Route) -> String {
    let mut out = String::from("# Campaign report\n\n");
    for s in sections(db, route) {
        out.push_str(&format!("## {}\n\n```\n{}\n```\n\n", s.title, s.body.trim_end()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_db;

    #[test]
    fn report_contains_every_artifact() {
        let db = network_db();
        let route = Route::cross_country();
        let secs = sections(db, &route);
        assert_eq!(secs.len(), 19);
        for s in &secs {
            assert!(!s.body.trim().is_empty(), "{} is empty", s.id);
        }
        let report = generate(db, &route);
        for title in ["Fig. 2", "Table 2", "Fig. 12", "MPTCP"] {
            assert!(report.contains(title), "missing {title}");
        }
    }
}
