//! D1 must fire: floats sorted through `partial_cmp` comparators, in
//! every ordering sink and across wrapped lines. (Not compiled — this is
//! lexer/rule input only.)

fn single_line(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn multi_line(sites: &mut Vec<(f64, u32)>) {
    sites.sort_by(|a, b| {
        a.0
            .partial_cmp(&b.0)
            .expect("odometer is finite")
    });
}

fn min_max(xs: &[f64]) -> Option<&f64> {
    let _ = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap());
    xs.iter().min_by(|a, b| a.partial_cmp(b).unwrap())
}

fn search(xs: &[f64], od: f64) -> Result<usize, usize> {
    xs.binary_search_by(|s| s.partial_cmp(&od).expect("finite"))
}
