//! Fig. 12: the impact of handovers on throughput.
//!
//! Following §6 exactly (Fig. 11c's timeline): with throughput logged in
//! 500 ms windows T₁..T₅ and a handover inside T₃,
//!
//! * ΔT₁ = T₃ − (T₂+T₄)/2 — the during-HO dip,
//! * ΔT₂ = (T₄+T₅)/2 − (T₁+T₂)/2 — post- minus pre-HO throughput,
//!
//! with ΔT₂ broken down by HO type (4G→4G, 5G→5G, 4G→5G, 5G→4G).

use wheels_ran::handover::HandoverKind;
use wheels_ran::operator::Operator;
use wheels_ran::Direction;
use wheels_xcal::database::{TestKind, TestRecord};

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};

/// Fig. 12 data per (operator, direction).
#[derive(Debug, Clone)]
pub struct HoImpact {
    /// ΔT₁ distributions.
    pub delta_t1: Vec<(Operator, Direction, Ecdf)>,
    /// ΔT₂ distributions, overall.
    pub delta_t2: Vec<(Operator, Direction, Ecdf)>,
    /// ΔT₂ distributions per HO kind.
    pub delta_t2_by_kind: Vec<(Operator, Direction, HandoverKind, Ecdf)>,
}

/// Extract (ΔT₁, ΔT₂, kind) for each handover in a record.
fn deltas(record: &TestRecord) -> Vec<(f64, f64, HandoverKind)> {
    const W: f64 = 0.5;
    let tput: Vec<Option<f64>> = record
        .kpi
        .iter()
        .map(|k| k.tput_mbps.map(f64::from))
        .collect();
    record
        .handovers
        .iter()
        .filter_map(|h| {
            // Window index of T3 (the window containing the HO).
            let i3 = ((h.time_s - record.start_s) / W).floor() as isize;
            if i3 < 2 || (i3 + 2) as usize >= tput.len() {
                return None; // need T1..T5 inside the test
            }
            let i3 = i3 as usize;
            let t = |i: usize| tput[i];
            let (t1, t2, t3, t4, t5) =
                (t(i3 - 2)?, t(i3 - 1)?, t(i3)?, t(i3 + 1)?, t(i3 + 2)?);
            let d1 = t3 - (t2 + t4) / 2.0;
            let d2 = (t4 + t5) / 2.0 - (t1 + t2) / 2.0;
            Some((d1, d2, h.kind))
        })
        .collect()
}

/// Compute Fig. 12 from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> HoImpact {
    let mut delta_t1 = Vec::new();
    let mut delta_t2 = Vec::new();
    let mut delta_t2_by_kind = Vec::new();
    for &op in ix.ops() {
        for dir in Direction::BOTH {
            let kind = match dir {
                Direction::Downlink => TestKind::ThroughputDl,
                Direction::Uplink => TestKind::ThroughputUl,
            };
            let all: Vec<(f64, f64, HandoverKind)> =
                ix.records(op, kind, false).flat_map(deltas).collect();
            delta_t1.push((op, dir, Ecdf::new(all.iter().map(|d| d.0))));
            delta_t2.push((op, dir, Ecdf::new(all.iter().map(|d| d.1))));
            for hk in HandoverKind::ALL {
                delta_t2_by_kind.push((
                    op,
                    dir,
                    hk,
                    Ecdf::new(all.iter().filter(|d| d.2 == hk).map(|d| d.1)),
                ));
            }
        }
    }
    HoImpact {
        delta_t1,
        delta_t2,
        delta_t2_by_kind,
    }
}

impl HoImpact {
    /// ΔT₁ distribution for one (op, dir).
    pub fn t1_for(&self, op: Operator, dir: Direction) -> &Ecdf {
        &self
            .delta_t1
            .iter()
            .find(|(o, d, _)| *o == op && *d == dir)
            .expect("all combos computed")
            .2
    }

    /// ΔT₂ distribution for one (op, dir).
    pub fn t2_for(&self, op: Operator, dir: Direction) -> &Ecdf {
        &self
            .delta_t2
            .iter()
            .find(|(o, d, _)| *o == op && *d == dir)
            .expect("all combos computed")
            .2
    }

    /// ΔT₂ for one (op, dir, kind).
    pub fn t2_kind_for(&self, op: Operator, dir: Direction, kind: HandoverKind) -> &Ecdf {
        &self
            .delta_t2_by_kind
            .iter()
            .find(|(o, d, k, _)| *o == op && *d == dir && *k == kind)
            .expect("all combos computed")
            .3
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 12 — ΔT1 (during-HO dip) and ΔT2 (post−pre), Mbps");
        out.push('\n');
        for (op, dir, e) in &self.delta_t1 {
            if e.is_empty() {
                continue;
            }
            out.push_str(&cdf_row(&format!("{} {} dT1", op.code(), dir.label()), e));
            out.push_str(&format!("  [negative: {:.0}%]\n", e.frac_below(0.0) * 100.0));
        }
        for (op, dir, e) in &self.delta_t2 {
            if e.is_empty() {
                continue;
            }
            out.push_str(&cdf_row(&format!("{} {} dT2", op.code(), dir.label()), e));
            out.push_str(&format!(
                "  [post>pre: {:.0}%]\n",
                (1.0 - e.frac_below(0.0)) * 100.0
            ));
        }
        for (op, dir, hk, e) in &self.delta_t2_by_kind {
            if e.len() < 5 {
                continue;
            }
            out.push_str(&cdf_row(
                &format!("{} {} dT2 {}", op.code(), dir.label(), hk.label()),
                e,
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn throughput_usually_dips_during_ho() {
        // Fig. 12 top: ΔT1 < 0 around 80 % of the time.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let e = f.t1_for(op, Direction::Downlink);
            if e.len() < 30 {
                continue;
            }
            let neg = e.frac_below(0.0);
            assert!(neg > 0.55, "{op}: dT1 negative only {neg}");
        }
    }

    #[test]
    fn post_ho_often_improves() {
        // Fig. 12 bottom: post-HO > pre-HO about 55-60 % of the time.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let e = f.t2_for(op, Direction::Downlink);
            if e.len() < 30 {
                continue;
            }
            let pos = 1.0 - e.frac_below(0.0);
            // Paper: 55-60 %. Our A3-triggered HOs are slightly more
            // "rational" than the real network's (which also does
            // load-balancing and ping-pong HOs), so the rate skews a bit
            // higher — documented in EXPERIMENTS.md.
            assert!(
                (0.30..0.90).contains(&pos),
                "{op}: post-HO improvement rate {pos}"
            );
        }
    }

    #[test]
    fn downgrade_hos_hurt_most() {
        // 5G→4G is the type that most often lowers post-HO throughput.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let down = f.t2_kind_for(op, Direction::Downlink, HandoverKind::Down5gTo4g);
            let up = f.t2_kind_for(op, Direction::Downlink, HandoverKind::Up4gTo5g);
            // ΔT₂ per HO is dominated by the (legitimate) cell-load
            // redraw; the tech-change signal needs volume to emerge, so
            // gate hard and allow a small epsilon.
            if down.len() < 150 || up.len() < 150 {
                continue;
            }
            assert!(
                down.median() < up.median() + 1.0,
                "{op}: down median {} vs up median {}",
                down.median(),
                up.median()
            );
        }
    }

    #[test]
    fn median_dt2_is_small() {
        // §6: "the median throughput difference is very low (0.5-2 Mbps)".
        let f = compute(small_ix());
        for op in Operator::ALL {
            let e = f.t2_for(op, Direction::Downlink);
            if e.len() < 30 {
                continue;
            }
            assert!(e.median().abs() < 12.0, "{op}: dT2 median {}", e.median());
        }
    }
}
