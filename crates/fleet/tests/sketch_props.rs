//! Property tests for the sketch merge laws the campaign relies on:
//! associativity, identity, determinism under arbitrary shard splits,
//! and agreement with an exact (per-observation) reference at small
//! populations where the exact computation is affordable.

use proptest::prelude::*;

use wheels_fleet::{
    load_bin, CellHourObs, FleetUnitSketch, LOAD_BINS, MICRO, TECH_SLOTS, UTIL_CLAMP,
};

/// An arbitrary stream of cell-hour observations, the raw material every
/// work unit folds. Values cover the full operating envelope including
/// overload (`util > 1`) and fractional spans.
fn arb_obs() -> impl Strategy<Value = CellHourObs> {
    (
        0u32..48,
        0u8..TECH_SLOTS as u8,
        0u8..24,
        0u64..5_000,
        0u64..2 * MICRO,
        0.0f64..1.5,
        1u64..=MICRO,
    )
        .prop_map(|(cell, tech, hour_of_day, subs, active_micro, util, span_micro)| {
            CellHourObs { cell, tech, hour_of_day, subs, active_micro, util, span_micro }
        })
}

fn fold(observations: &[CellHourObs]) -> FleetUnitSketch {
    let mut s = FleetUnitSketch::empty();
    for o in observations {
        s.observe(o);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) for arbitrary observation groups.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(arb_obs(), 0..30),
        b in prop::collection::vec(arb_obs(), 0..30),
        c in prop::collection::vec(arb_obs(), 0..30),
    ) {
        let (sa, sb, sc) = (fold(&a), fold(&b), fold(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty sketch is a two-sided identity.
    #[test]
    fn empty_is_identity(a in prop::collection::vec(arb_obs(), 0..40)) {
        let s = fold(&a);
        let mut left = FleetUnitSketch::empty();
        left.merge(&s);
        let mut right = s.clone();
        right.merge(&FleetUnitSketch::empty());
        prop_assert_eq!(&left, &s);
        prop_assert_eq!(&right, &s);
    }

    /// Splitting one observation stream into arbitrary contiguous shards
    /// and merging the per-shard sketches reproduces the single-shard
    /// sketch exactly — the `--jobs` independence theorem in miniature.
    #[test]
    fn any_shard_split_merges_to_the_whole(
        all in prop::collection::vec(arb_obs(), 1..80),
        cuts in prop::collection::vec(0usize..80, 0..6),
    ) {
        let whole = fold(&all);
        let mut bounds: Vec<usize> =
            cuts.iter().map(|c| c % (all.len() + 1)).collect();
        bounds.push(0);
        bounds.push(all.len());
        bounds.sort_unstable();
        let mut merged = FleetUnitSketch::empty();
        for w in bounds.windows(2) {
            merged.merge(&fold(&all[w[0]..w[1]]));
        }
        prop_assert_eq!(merged, whole);
    }

    /// Sketch totals agree with an exact per-observation reference at
    /// small populations: subscriber-hours match to fixed-point
    /// resolution and histogram mass is conserved bin by bin.
    #[test]
    fn sketch_matches_exact_reference(all in prop::collection::vec(arb_obs(), 0..60)) {
        let s = fold(&all);
        let exact_sub_hours: u64 = all.iter().map(|o| o.active_micro).sum();
        prop_assert_eq!(s.sub_hours_micro, exact_sub_hours);

        let mut exact_bins = vec![0u64; LOAD_BINS];
        for o in &all {
            exact_bins[load_bin(o.util)] += o.span_micro;
        }
        prop_assert_eq!(&s.hist.bins, &exact_bins);

        // Per-cell hour mass is conserved, and every utilization the
        // sketch accumulated stayed within the clamp envelope.
        for cell in &s.cells {
            let exact_hours: u64 = all
                .iter()
                .filter(|o| o.cell == cell.cell)
                .map(|o| o.span_micro)
                .sum();
            prop_assert_eq!(cell.hours_micro, exact_hours);
            let max_milli =
                (UTIL_CLAMP * 1e3 * (cell.hours_micro as f64 / MICRO as f64)).ceil() as u64;
            prop_assert!(cell.util_milli_hours <= max_milli + 1);
        }
    }
}
