#!/usr/bin/env bash
# Tier-1 CI gate. Everything runs --offline: the workspace vendors its
# external dependencies under vendor/ (see Cargo.toml [patch.crates-io]).
set -euo pipefail
cd "$(dirname "$0")"

echo "== static analysis (rules D1-D9, baseline ratchet) =="
# Source-level enforcement of the determinism and robustness invariants
# (D1-D6: float partial_cmp sorts, hash-ordered collections, ambient
# clocks and entropy, bare RNG construction, partial_cmp unwraps,
# iteration-order leaks; D7: panic surface; D8: hot-path allocation;
# D9: RNG-domain provenance). Runs first: it needs only the tiny
# dependency-free lint crate, so a violation fails CI in seconds
# instead of after the full build. The fixture self-check proves every
# rule both fires and is suppressible before the workspace run is
# trusted, and the lint crate itself must build warning-free.
#
# The workspace sweep is a ratchet against lint-baseline.json: any
# finding not in the baseline fails CI (fix it or suppress it with a
# reasoned `lint:allow`), and any baseline entry that no longer matches
# fails too (regenerate with --write-baseline so paid-down debt cannot
# silently return). The machine-readable report is archived as
# LINT_report.json next to the BENCH_*.json artifacts.
RUSTFLAGS="-D warnings" cargo build --offline -p wheels-lint
cargo run -q --offline -p wheels-lint -- --fixtures
lint_t0=$(date +%s%N)
cargo run -q --offline -p wheels-lint -- \
  --baseline lint-baseline.json --json-out LINT_report.json \
  crates/ src/ examples/ tests/
lint_t1=$(date +%s%N)
echo "lint stage wall time: $(( (lint_t1 - lint_t0) / 1000000 )) ms"

echo "== build (release) =="
cargo build --release --offline

echo "== tests (root package) =="
cargo test -q --offline

echo "== tests (full workspace) =="
cargo test -q --offline --workspace

echo "== sequential vs parallel equivalence (2 seeds x jobs {1,2,4}) =="
cargo test -q --offline --test parallel_equivalence

echo "== fault-injection equivalence (harsh profile, jobs 1 vs 4, 2 seeds) =="
# Determinism must survive injected apparatus faults: the exported dataset
# AND the per-unit integrity report are byte-identical at every job count,
# and the harsh profile must actually degrade at least one unit.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for seed in 11 42; do
  ./target/release/repro --scale smoke --seed "$seed" --fault-profile harsh \
    --jobs 1 --export "$tmp/j1-$seed.json" table1 > /dev/null
  ./target/release/repro --scale smoke --seed "$seed" --fault-profile harsh \
    --jobs 4 --export "$tmp/j4-$seed.json" table1 > /dev/null
  cmp "$tmp/j1-$seed.json" "$tmp/j4-$seed.json"
  cmp "$tmp/j1-$seed.json.integrity.json" "$tmp/j4-$seed.json.integrity.json"
  grep -q -e '"Degraded"' -e '"Lost"' "$tmp/j1-$seed.json.integrity.json" || {
    echo "seed $seed: harsh profile left every unit clean"; exit 1;
  }
done

echo "== scenario layer: paper spec byte-identity + non-paper smoke =="
# The declarative ScenarioSpec path must reproduce the hard-wired paper
# constructors byte for byte: same export, same report, at the same seed.
./target/release/repro --scale smoke --seed 42 \
  --export "$tmp/direct-42.json" all > "$tmp/direct-42.txt" 2> /dev/null
./target/release/repro --scale smoke --seed 42 --scenario paper \
  --export "$tmp/scenario-42.json" all > "$tmp/scenario-42.txt" 2> /dev/null
cmp "$tmp/direct-42.json" "$tmp/scenario-42.json"
cmp "$tmp/direct-42.txt" "$tmp/scenario-42.txt"
# A non-paper registry world must run the full pipeline without panics,
# and a dumped spec must load back through the JSON file path.
./target/release/repro --scale smoke --seed 7 --scenario rail-corridor all \
  > "$tmp/rail.txt" 2> /dev/null
grep -q "T-Mobile (T), AT&T (A)" "$tmp/rail.txt"
./target/release/repro --scenario metro-loop --scenario-dump > "$tmp/metro.json"
./target/release/repro --scale smoke --seed 7 --scenario "$tmp/metro.json" table1 \
  > "$tmp/metro.txt" 2> /dev/null
grep -q "Operators" "$tmp/metro.txt"

echo "== report byte-equivalence (quarter scale, fig-jobs 1 vs 4) =="
# The figure fan-out must not change a single byte of `repro all`.
./target/release/repro --scale quarter --fig-jobs 1 all \
  > "$tmp/report-f1.txt" 2> /dev/null
./target/release/repro --scale quarter --fig-jobs 4 --timings \
  --timings-json BENCH_report.json all \
  > "$tmp/report-f4.txt"
cmp "$tmp/report-f1.txt" "$tmp/report-f4.txt"
echo "report timings:"
cat BENCH_report.json

echo "== campaign + export timing, jobs/export-jobs byte gates (quarter scale) =="
# The campaign and export phases are the standing optimization targets:
# prove both fan-outs are still byte-pure — the export, integrity
# report, and table must not differ by one byte between
# {--jobs, --export-jobs} 1 and 4. (BENCH_campaign.json is recorded by
# the fleet gate below: same quarter/seed-11 world, fleet enabled.)
#
# The measured export goes to RAM-backed storage when available so
# export_s tracks the serializer, not the container's highly variable
# disk; a discarded warm-up run first, because on fresh microVMs the
# first touch of that much page cache stalls on host-side page backing.
benchtmp="$tmp"
if [ -d /dev/shm ] && [ -w /dev/shm ]; then
  benchtmp="$(mktemp -d /dev/shm/wheels-bench.XXXXXX)"
  trap 'rm -rf "$tmp" "$benchtmp"' EXIT
fi
./target/release/repro --scale quarter --seed 11 --jobs 1 --export-jobs 1 \
  --export "$benchtmp/warm.json" table1 > /dev/null 2> /dev/null
rm -f "$benchtmp/warm.json" "$benchtmp/warm.json.integrity.json"
./target/release/repro --scale quarter --seed 11 --jobs 1 --export-jobs 1 \
  --export "$benchtmp/q-j1.json" table1 \
  > "$tmp/q-j1.txt" 2> /dev/null
./target/release/repro --scale quarter --seed 11 --jobs 4 --export-jobs 4 \
  --export "$benchtmp/q-j4.json" table1 > "$tmp/q-j4.txt" 2> /dev/null
cmp "$benchtmp/q-j1.json" "$benchtmp/q-j4.json"
cmp "$benchtmp/q-j1.json.integrity.json" "$benchtmp/q-j4.json.integrity.json"
cmp "$tmp/q-j1.txt" "$tmp/q-j4.txt"

echo "== crash-resume byte gate (quarter scale, kill mid-run, jobs 1 and 4) =="
# The crash-safety contract end to end, against the real binary: kill a
# checkpointed run after 5 durable unit commits (exit 137), resume it,
# and demand an export, integrity report, and table byte-identical to
# the uninterrupted jobs-1 golden from the previous stage — at both
# worker counts. No torn export may exist after the kill.
for jobs in 1 4; do
  ck="$tmp/ck-j$jobs"
  set +e
  ./target/release/repro --scale quarter --seed 11 --jobs "$jobs" \
    --checkpoint-dir "$ck" --kill-after 5 \
    --export "$tmp/crash-j$jobs.json" table1 > /dev/null 2> "$tmp/kill-j$jobs.err"
  status=$?
  set -e
  [ "$status" -eq 137 ] || {
    echo "jobs $jobs: expected kill exit 137, got $status"; exit 1;
  }
  [ ! -e "$tmp/crash-j$jobs.json" ] || {
    echo "jobs $jobs: killed run left an export file"; exit 1;
  }
  ./target/release/repro --scale quarter --seed 11 --jobs "$jobs" \
    --checkpoint-dir "$ck" --resume \
    --export "$tmp/resume-j$jobs.json" table1 \
    > "$tmp/resume-j$jobs.txt" 2> "$tmp/resume-j$jobs.err"
  grep -q "resume:" "$tmp/resume-j$jobs.err" || {
    echo "jobs $jobs: resume printed no accounting"; exit 1;
  }
  cmp "$tmp/resume-j$jobs.json" "$benchtmp/q-j1.json"
  cmp "$tmp/resume-j$jobs.json.integrity.json" "$benchtmp/q-j1.json.integrity.json"
  cmp "$tmp/resume-j$jobs.txt" "$tmp/q-j1.txt"
done

echo "== fleet gate: population-0 no-op + 10^4-subscriber byte gates =="
# The fleet axis must be a strict no-op when off: --population 0 is
# byte-identical — export and full report — to the same binary without
# the flag (the scenario stage's smoke golden).
./target/release/repro --scale smoke --seed 42 --population 0 \
  --export "$tmp/pop0-42.json" all > "$tmp/pop0-42.txt" 2> /dev/null
cmp "$tmp/direct-42.json" "$tmp/pop0-42.json"
cmp "$tmp/direct-42.txt" "$tmp/pop0-42.txt"
# A 10^4-subscriber quarter-scale fleet must be byte-identical at jobs
# 1 vs 4 — export, integrity report, and the fleet ground-truth section
# — and BENCH_campaign.json records this run (population and
# subscriber_hours_per_s in the canonical timings record).
./target/release/repro --scale quarter --seed 11 --jobs 1 --population 10000 \
  --export "$benchtmp/fleet-j1.json" --timings-json BENCH_campaign.json \
  ext-fleet table1 > "$tmp/fleet-j1.txt" 2> /dev/null
./target/release/repro --scale quarter --seed 11 --jobs 4 --population 10000 \
  --export "$benchtmp/fleet-j4.json" ext-fleet table1 \
  > "$tmp/fleet-j4.txt" 2> /dev/null
cmp "$benchtmp/fleet-j1.json" "$benchtmp/fleet-j4.json"
cmp "$benchtmp/fleet-j1.json.integrity.json" "$benchtmp/fleet-j4.json.integrity.json"
cmp "$tmp/fleet-j1.txt" "$tmp/fleet-j4.txt"
grep -q "population 10000" "$tmp/fleet-j1.txt"
grep -q '"population": 10000' BENCH_campaign.json
grep -q '"subscriber_hours_per_s"' BENCH_campaign.json
echo "fleet timings:"
cat BENCH_campaign.json

echo "CI OK"
