//! WGS-84 coordinates and great-circle geometry.
//!
//! The measurement apps in the paper log GPS positions; coverage is reported
//! per mile driven and handovers are normalized by distance. All distance
//! arithmetic in the workspace goes through [`LatLon::haversine_m`].

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 latitude/longitude pair, degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLon {
    /// Latitude in degrees, positive north. Valid range [-90, 90].
    pub lat: f64,
    /// Longitude in degrees, positive east. Valid range [-180, 180].
    pub lon: f64,
}

impl LatLon {
    /// Create a coordinate. Panics (debug) if outside the valid ranges —
    /// route data is static, so a bad coordinate is a programming error.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in meters (haversine formula).
    pub fn haversine_m(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial bearing from `self` towards `other`, degrees clockwise from
    /// north in [0, 360).
    pub fn bearing_deg(&self, other: &LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let b = y.atan2(x).to_degrees();
        (b + 360.0) % 360.0
    }

    /// Linear interpolation between two coordinates, `t` in [0, 1].
    ///
    /// For the segment lengths on this route (tens of km) the error versus a
    /// true great-circle interpolation is far below cell-placement noise, so
    /// the simple form is used — simplicity over cleverness.
    pub fn lerp(&self, other: &LatLon, t: f64) -> LatLon {
        let t = t.clamp(0.0, 1.0);
        LatLon {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }

    /// Destination point at `distance_m` along `bearing_deg` from `self`.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> LatLon {
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let brg = bearing_deg.to_radians();
        let dr = distance_m / EARTH_RADIUS_M;
        let lat2 = (lat1.sin() * dr.cos() + lat1.cos() * dr.sin() * brg.cos()).asin();
        let lon2 = lon1
            + (brg.sin() * dr.sin() * lat1.cos()).atan2(dr.cos() - lat1.sin() * lat2.sin());
        LatLon {
            lat: lat2.to_degrees(),
            lon: ((lon2.to_degrees() + 540.0) % 360.0) - 180.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn la() -> LatLon {
        LatLon::new(34.0522, -118.2437)
    }
    fn boston() -> LatLon {
        LatLon::new(42.3601, -71.0589)
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(la().haversine_m(&la()), 0.0);
    }

    #[test]
    fn haversine_la_boston_about_4170_km() {
        let d = la().haversine_m(&boston());
        // Great-circle LA–Boston is ~4,180 km.
        assert!((4_100_000.0..4_250_000.0).contains(&d), "{d}");
    }

    #[test]
    fn haversine_symmetric() {
        assert!((la().haversine_m(&boston()) - boston().haversine_m(&la())).abs() < 1e-6);
    }

    #[test]
    fn bearing_eastward_trip() {
        let b = la().bearing_deg(&boston());
        // Roughly ENE.
        assert!((40.0..90.0).contains(&b), "{b}");
    }

    #[test]
    fn lerp_endpoints() {
        let a = la();
        let b = boston();
        let p0 = a.lerp(&b, 0.0);
        let p1 = a.lerp(&b, 1.0);
        assert!((p0.lat - a.lat).abs() < 1e-12 && (p0.lon - a.lon).abs() < 1e-12);
        assert!((p1.lat - b.lat).abs() < 1e-12 && (p1.lon - b.lon).abs() < 1e-12);
    }

    #[test]
    fn lerp_clamps() {
        let a = la();
        let b = boston();
        let p = a.lerp(&b, 2.0);
        assert!((p.lat - b.lat).abs() < 1e-12);
    }

    #[test]
    fn destination_roundtrip() {
        let a = la();
        let b = a.destination(45.0, 10_000.0);
        let d = a.haversine_m(&b);
        assert!((d - 10_000.0).abs() < 1.0, "{d}");
    }

    #[test]
    fn midpoint_distance_split() {
        let a = la();
        let b = boston();
        let m = a.lerp(&b, 0.5);
        let d1 = a.haversine_m(&m);
        let d2 = m.haversine_m(&b);
        let total = a.haversine_m(&b);
        // Lerp midpoint is not the geodesic midpoint, but must be close for
        // our purposes (< 1% asymmetry over this baseline).
        assert!(((d1 + d2) - total) / total < 0.01);
        assert!((d1 - d2).abs() / total < 0.05);
    }
}
