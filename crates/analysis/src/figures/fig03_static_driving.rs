//! Fig. 3: overall throughput and RTT, static city baselines vs driving.

use std::sync::Arc;

use wheels_ran::operator::Operator;
use wheels_ran::Direction;

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};

/// One operator's six CDFs: (DL, UL, RTT) × (static, driving).
#[derive(Debug, Clone)]
pub struct OpPerf {
    /// Operator.
    pub op: Operator,
    /// Static downlink throughput samples, Mbps.
    pub static_dl: Arc<Ecdf>,
    /// Static uplink throughput, Mbps.
    pub static_ul: Arc<Ecdf>,
    /// Static RTT, ms.
    pub static_rtt: Arc<Ecdf>,
    /// Driving downlink throughput, Mbps.
    pub driving_dl: Arc<Ecdf>,
    /// Driving uplink throughput, Mbps.
    pub driving_ul: Arc<Ecdf>,
    /// Driving RTT, ms.
    pub driving_rtt: Arc<Ecdf>,
}

/// Fig. 3 data for all operators.
#[derive(Debug, Clone)]
pub struct StaticVsDriving {
    /// Per-operator CDFs.
    pub per_op: Vec<OpPerf>,
}

/// Assemble Fig. 3 from the index's canonical pre-sorted slices.
pub fn compute(ix: &AnalysisIndex<'_>) -> StaticVsDriving {
    StaticVsDriving {
        per_op: ix
            .ops()
            .iter()
            .map(|&op| OpPerf {
                op,
                static_dl: ix.tput_ecdf(op, Direction::Downlink, true),
                static_ul: ix.tput_ecdf(op, Direction::Uplink, true),
                static_rtt: ix.rtt_ecdf(op, true),
                driving_dl: ix.tput_ecdf(op, Direction::Downlink, false),
                driving_ul: ix.tput_ecdf(op, Direction::Uplink, false),
                driving_rtt: ix.rtt_ecdf(op, false),
            })
            .collect(),
    }
}

impl StaticVsDriving {
    /// Data for one operator.
    pub fn for_op(&self, op: Operator) -> &OpPerf {
        self.per_op
            .iter()
            .find(|p| p.op == op)
            .expect("all operators computed")
    }

    /// Fraction of driving throughput samples below 5 Mbps across all
    /// operators and directions (§5.1 reports ~35 %).
    pub fn frac_driving_below_5mbps(&self) -> f64 {
        let mut below = 0usize;
        let mut total = 0usize;
        for p in &self.per_op {
            for e in [&p.driving_dl, &p.driving_ul] {
                below += (e.frac_below(5.0) * e.len() as f64) as usize;
                total += e.len();
            }
        }
        if total == 0 {
            0.0
        } else {
            below as f64 / total as f64
        }
    }

    /// Render both panels.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 3a — static performance (Mbps / ms)");
        out.push('\n');
        for p in &self.per_op {
            out.push_str(&cdf_row(&format!("{} static DL", p.op.code()), &p.static_dl));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} static UL", p.op.code()), &p.static_ul));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} static RTT", p.op.code()), &p.static_rtt));
            out.push('\n');
        }
        out.push_str(&cdf_header("Fig. 3b — driving performance (Mbps / ms)"));
        out.push('\n');
        for p in &self.per_op {
            out.push_str(&cdf_row(&format!("{} driving DL", p.op.code()), &p.driving_dl));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} driving UL", p.op.code()), &p.driving_ul));
            out.push('\n');
            out.push_str(&cdf_row(
                &format!("{} driving RTT", p.op.code()),
                &p.driving_rtt,
            ));
            out.push('\n');
        }
        out.push_str(&format!(
            "driving samples below 5 Mbps: {:.1}% (paper: ~35%)\n",
            self.frac_driving_below_5mbps() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;

    #[test]
    fn static_medians_order_verizon_att_tmobile() {
        // Fig. 3a DL medians: 1511 (V) / 710 (A) / 311 (T) Mbps.
        let f = compute(small_ix());
        let f_v = f.for_op(Operator::Verizon);
        let f_a = f.for_op(Operator::Att);
        let f_t = f.for_op(Operator::TMobile);
        // Verizon's mmWave-everywhere static strategy wins outright.
        assert!(f_v.static_dl.median() > f_a.static_dl.median());
        assert!(f_v.static_dl.median() > f_t.static_dl.median());
        assert!(f_v.static_dl.median() > 500.0);
        // AT&T's mmWave peaks above T-Mobile's midband ceiling (paper:
        // maxima 2043 vs 812) — the per-city medians themselves are noisy
        // with only ~9 cities, as in the paper's own data.
        assert!(
            f_a.static_dl.max() > f_t.static_dl.max(),
            "A max {} vs T max {}",
            f_a.static_dl.max(),
            f_t.static_dl.max()
        );
    }

    #[test]
    fn driving_collapses_vs_static() {
        // §5.1: driving medians are 1-5 % of static DL medians.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.static_dl.is_empty() || p.driving_dl.is_empty() {
                continue;
            }
            let ratio = p.driving_dl.median() / p.static_dl.median();
            assert!(ratio < 0.35, "{op}: driving/static = {ratio}");
        }
    }

    #[test]
    fn uplink_order_of_magnitude_below_downlink_static() {
        let f = compute(small_ix());
        let p = f.for_op(Operator::Verizon);
        assert!(p.static_ul.median() * 3.0 < p.static_dl.median());
    }

    #[test]
    fn substantial_low_throughput_tail_driving() {
        let f = compute(small_ix());
        let frac = f.frac_driving_below_5mbps();
        assert!((0.15..0.60).contains(&frac), "below-5Mbps frac {frac}");
    }

    #[test]
    fn driving_rtt_inflated() {
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.static_rtt.is_empty() || p.driving_rtt.is_empty() {
                continue;
            }
            assert!(
                p.driving_rtt.percentile(90.0) > p.static_rtt.percentile(90.0),
                "{op}"
            );
            // Paper: driving maxima reach seconds.
            assert!(p.driving_rtt.max() > 300.0, "{op}: max {}", p.driving_rtt.max());
        }
    }

    #[test]
    fn driving_medians_in_papers_band() {
        // Fig. 3b: DL median/75th between 6-34 / 47-74 Mbps.
        let f = compute(small_ix());
        for op in Operator::ALL {
            let m = f.for_op(op).driving_dl.median();
            assert!((3.0..60.0).contains(&m), "{op} driving DL median {m}");
        }
    }
}
