//! The edge-assisted CAV benchmark app (§7.1.2, §C).
//!
//! Offloads 10 FPS LIDAR point clouds (2 MB raw, 38 KB compressed) for
//! cooperative perception. The paper's headline: today's networks cannot
//! hit the 100 ms E2E budget such pipelines need — the best observed E2E
//! across the whole trip was 148 ms.

use crate::config::{OffloadConfig, CAV_CONFIG};
use crate::offload::{OffloadRun, OffloadSummary};
use crate::AppLink;

/// E2E latency budget for accurate cooperative view reconstruction, ms
/// (§7.1.2, citing the AVR/AutoCast line of work).
pub const CAV_DEADLINE_MS: f64 = 100.0;

/// Result of one 20 s CAV run.
#[derive(Debug, Clone)]
pub struct CavResult {
    /// The underlying offload summary.
    pub offload: OffloadSummary,
    /// Fraction of offloaded frames meeting the 100 ms budget.
    pub deadline_hit_frac: f64,
}

/// The CAV app.
#[derive(Debug, Clone, Copy)]
pub struct CavApp {
    /// Configuration (defaults to Table 4's CAV column).
    pub config: OffloadConfig,
}

impl Default for CavApp {
    fn default() -> Self {
        CavApp { config: CAV_CONFIG }
    }
}

impl CavApp {
    /// Run once starting at `t0_s`, with or without point-cloud
    /// compression.
    pub fn run(&self, t0_s: f64, compressed: bool, link: &mut dyn AppLink) -> CavResult {
        let offload = OffloadRun {
            config: self.config,
            compressed,
        }
        .execute(t0_s, link);
        let hits = offload
            .frames
            .iter()
            .filter(|f| f.e2e_ms <= CAV_DEADLINE_MS)
            .count();
        let deadline_hit_frac = if offload.frames.is_empty() {
            0.0
        } else {
            hits as f64 / offload.frames.len() as f64
        };
        CavResult {
            offload,
            deadline_hit_frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantLink, LinkObs};

    #[test]
    fn even_ideal_5g_misses_the_100ms_budget_with_compression() {
        // §7.1.2: compression costs 34.8 + 19.1 ms, inference 44 ms —
        // 97.9 ms before a single network bit; the budget is unreachable.
        let r = CavApp::default().run(
            0.0,
            true,
            &mut ConstantLink {
                obs: LinkObs {
                    dl_mbps: 2_000.0,
                    ul_mbps: 400.0,
                    rtt_ms: 15.0,
                    in_handover: false,
                },
            },
        );
        assert_eq!(r.deadline_hit_frac, 0.0);
        assert!(r.offload.e2e_median_ms > 100.0);
    }

    #[test]
    fn uncompressed_needs_390_mbps_uplink() {
        // §7.1.2: 2000 KB in 41 ms needs ~390 Mbps. Check the arithmetic
        // falls out of our pipeline: at 390 Mbps + 15 ms RTT + 44 ms
        // inference, E2E ≈ 100 ms.
        let r = CavApp::default().run(
            0.0,
            false,
            &mut ConstantLink {
                obs: LinkObs {
                    dl_mbps: 2_000.0,
                    ul_mbps: 390.0,
                    rtt_ms: 15.0,
                    in_handover: false,
                },
            },
        );
        assert!((95.0..110.0).contains(&r.offload.e2e_median_ms), "{}", r.offload.e2e_median_ms);
    }

    #[test]
    fn compression_reduces_driving_e2e_about_8x() {
        // §7.1.2: "reducing the median E2E latency by 8X".
        let mut link = ConstantLink::poor();
        let with = CavApp::default().run(0.0, true, &mut link);
        let without = CavApp::default().run(0.0, false, &mut link);
        let ratio = without.offload.e2e_median_ms / with.offload.e2e_median_ms;
        assert!((4.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn driving_median_e2e_in_papers_range() {
        // Paper: median 269 ms (compressed) while driving.
        let r = CavApp::default().run(0.0, true, &mut ConstantLink::poor());
        assert!((150.0..450.0).contains(&r.offload.e2e_median_ms), "{}", r.offload.e2e_median_ms);
    }
}
