//! GPS traces as logged by the measurement apps.
//!
//! The handover-logger app (§3) records GPS alongside cell information; the
//! XCAL logs are joined against these traces during post-processing. A
//! [`GpsTrace`] is a uniformly sampled readout of a [`DrivePlan`].

use crate::coord::LatLon;
use crate::region::RegionKind;
use crate::timezone::Timezone;
use crate::trip::DrivePlan;

/// One GPS fix with the motion context the apps log.
#[derive(Debug, Clone, Copy)]
pub struct GpsSample {
    /// Plan time, seconds.
    pub time_s: f64,
    /// Position.
    pub pos: LatLon,
    /// Speed over ground, m/s.
    pub speed_mps: f64,
    /// Course over ground, degrees.
    pub bearing_deg: f64,
    /// Odometer, meters (not logged by real GPS; kept for joining).
    pub odometer_m: f64,
    /// Region classification at this fix.
    pub region: RegionKind,
    /// Timezone at this fix.
    pub timezone: Timezone,
    /// True if the vehicle was in a driving window.
    pub driving: bool,
}

/// A uniformly sampled GPS trace.
#[derive(Debug, Clone)]
pub struct GpsTrace {
    samples: Vec<GpsSample>,
    interval_s: f64,
}

impl GpsTrace {
    /// Sample `plan` every `interval_s` seconds across all driving windows
    /// (overnight gaps are skipped — the loggers were powered but parked,
    /// and parked samples carry no coverage-per-mile information).
    pub fn sample_driving(plan: &DrivePlan, interval_s: f64) -> Self {
        assert!(interval_s > 0.0, "interval must be positive");
        let mut samples = Vec::new();
        for day in plan.days() {
            let mut t = day.start_time_s as f64;
            while t <= day.end_time_s as f64 {
                let s = plan.state_at(t);
                samples.push(GpsSample {
                    time_s: s.time_s,
                    pos: s.pos,
                    speed_mps: s.speed_mps,
                    bearing_deg: s.bearing_deg,
                    odometer_m: s.odometer_m,
                    region: s.region,
                    timezone: s.timezone,
                    driving: s.driving,
                });
                t += interval_s;
            }
        }
        GpsTrace {
            samples,
            interval_s,
        }
    }

    /// The samples in time order.
    pub fn samples(&self) -> &[GpsSample] {
        &self.samples
    }

    /// Sampling interval, seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Total driven distance represented by the trace, meters.
    pub fn distance_m(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.odometer_m - a.odometer_m,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_covers_whole_route() {
        let plan = DrivePlan::cross_country(3);
        let trace = GpsTrace::sample_driving(&plan, 30.0);
        let total = plan.route().total_m();
        assert!((trace.distance_m() - total).abs() < 2_000.0);
    }

    #[test]
    fn samples_time_ordered() {
        let plan = DrivePlan::cross_country(3);
        let trace = GpsTrace::sample_driving(&plan, 60.0);
        for w in trace.samples().windows(2) {
            assert!(w[1].time_s > w[0].time_s);
        }
    }

    #[test]
    fn finer_interval_more_samples() {
        let plan = DrivePlan::cross_country(3);
        let coarse = GpsTrace::sample_driving(&plan, 60.0);
        let fine = GpsTrace::sample_driving(&plan, 10.0);
        assert!(fine.samples().len() > 4 * coarse.samples().len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let plan = DrivePlan::cross_country(3);
        let _ = GpsTrace::sample_driving(&plan, 0.0);
    }
}
