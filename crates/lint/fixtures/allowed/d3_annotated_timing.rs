//! Clean counterpart of `bad/d3_ambient_nondeterminism.rs`: timing
//! instrumentation that never feeds simulation state, annotated the way
//! `crates/bench/src/bin/repro.rs --timings` is.

use std::time::Duration; // Duration alone is just arithmetic — clean.
// lint:allow(D3): phase-timing instrumentation, reported not simulated
use std::time::Instant;

fn timed<F: FnOnce()>(f: F) -> Duration {
    let t0 = Instant::now(); // lint:allow(D3): reported, never fed back into state
    f();
    t0.elapsed()
}

fn simulated_clock(step: u64) -> f64 {
    // The simulation's own clock: pure function of the step count.
    step as f64 * 0.5
}
