//! Extension: the multi-connectivity what-if (§5.4 / §8 recommendation 2).
//!
//! For every instant where all three phones ran concurrent throughput
//! tests, replay the three observed per-500 ms throughput series as path
//! capacities under a [`MultipathFlow`] and ask: how much would an
//! MPTCP-capable phone have gained over the best single operator?
//!
//! This is *not* a paper figure — it is the experiment the paper's
//! conclusion calls for.

use wheels_netsim::mptcp::{MptcpMode, MultipathFlow};
use wheels_ran::Direction;
use wheels_xcal::database::TestRecord;

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};

/// One concurrent triple replayed under multipath.
#[derive(Debug, Clone, Copy)]
pub struct TripleOutcome {
    /// Best single-operator mean, Mbps.
    pub best_single_mbps: f64,
    /// Aggregate-mode multipath mean, Mbps.
    pub aggregate_mbps: f64,
    /// Best-path-mode multipath mean, Mbps.
    pub bestpath_mbps: f64,
}

/// Extension results per direction.
#[derive(Debug, Clone)]
pub struct MultipathWhatIf {
    /// (direction, per-triple outcomes).
    pub per_dir: Vec<(Direction, Vec<TripleOutcome>)>,
}

/// Replay one concurrent group (one path per operator in the panel). The
/// recorded 500 ms throughputs act as the per-path capacity process.
fn replay(records: &[&TestRecord]) -> Option<TripleOutcome> {
    let series: Vec<Vec<f64>> = records
        .iter()
        .map(|r| r.tput_samples().collect::<Vec<f64>>())
        .collect();
    let paths = series.len();
    if paths == 0 {
        return None;
    }
    let n = series.iter().map(Vec::len).min()?;
    if n < 20 {
        return None;
    }
    let singles: Vec<f64> = series
        .iter()
        .map(|s| s.iter().take(n).sum::<f64>() / n as f64)
        .collect();
    let best_single = singles.iter().copied().fold(0.0, f64::max);

    // Per-path RTTs cycle through the paper's three cloud-path values, so
    // the three-operator panel reproduces the original assignment exactly.
    let rtts: Vec<f64> = (0..paths).map(|i| [0.055, 0.06, 0.058][i % 3]).collect();
    let run = |mode: MptcpMode| {
        let mut flow = MultipathFlow::new(paths, mode);
        let dt = 0.02;
        let mut t = 0.0;
        let total_s = n as f64 * 0.5;
        let mut caps = vec![0.0; paths];
        while t < total_s {
            let w = ((t / 0.5) as usize).min(n - 1);
            for (c, s) in caps.iter_mut().zip(&series) {
                *c = s[w];
            }
            flow.tick(t, dt, &caps, &rtts);
            t += dt;
        }
        wheels_netsim::bps_to_mbps(flow.total_delivered_bytes() / total_s)
    };
    Some(TripleOutcome {
        best_single_mbps: best_single,
        aggregate_mbps: run(MptcpMode::Aggregate),
        bestpath_mbps: run(MptcpMode::BestPath),
    })
}

/// Compute the what-if over the index's concurrent test triples.
pub fn compute(ix: &AnalysisIndex<'_>) -> MultipathWhatIf {
    let mut per_dir = Vec::new();
    for dir in Direction::BOTH {
        let mut outcomes = Vec::new();
        for t in ix.concurrent_triples(dir) {
            let records: Vec<&TestRecord> = t.iter().map(|&ri| ix.record(ri)).collect();
            if let Some(o) = replay(&records) {
                outcomes.push(o);
            }
        }
        per_dir.push((dir, outcomes));
    }
    MultipathWhatIf { per_dir }
}

impl MultipathWhatIf {
    /// Gain CDFs for one direction: (aggregate/best-single,
    /// bestpath/best-single).
    pub fn gains(&self, dir: Direction) -> (Ecdf, Ecdf) {
        let outcomes = &self
            .per_dir
            .iter()
            .find(|(d, _)| *d == dir)
            .expect("both directions computed")
            .1;
        let agg = Ecdf::new(
            outcomes
                .iter()
                .filter(|o| o.best_single_mbps > 0.5)
                .map(|o| o.aggregate_mbps / o.best_single_mbps),
        );
        let best = Ecdf::new(
            outcomes
                .iter()
                .filter(|o| o.best_single_mbps > 0.5)
                .map(|o| o.bestpath_mbps / o.best_single_mbps),
        );
        (agg, best)
    }

    /// Render the extension figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Extension — MPTCP over three operators (gain vs best single)");
        out.push('\n');
        for (dir, outcomes) in &self.per_dir {
            let (agg, best) = self.gains(*dir);
            out.push_str(&format!("  {} ({} concurrent triples)\n", dir.label(), outcomes.len()));
            out.push_str(&cdf_row("    aggregate gain x", &agg));
            out.push('\n');
            out.push_str(&cdf_row("    best-path gain x", &best));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix;

    #[test]
    fn aggregation_beats_best_single() {
        // §5.4's thesis: diversity means aggregation pays.
        let f = compute(network_ix());
        let (agg, _) = f.gains(Direction::Downlink);
        assert!(agg.len() > 20, "only {} triples", agg.len());
        assert!(
            agg.median() > 1.15,
            "aggregate median gain {}",
            agg.median()
        );
    }

    #[test]
    fn bestpath_never_much_worse_than_single() {
        let f = compute(network_ix());
        let (_, best) = f.gains(Direction::Downlink);
        if best.len() > 20 {
            // Switching lag costs something, but the scheduler must stay
            // within a modest factor of the oracle single path.
            assert!(best.median() > 0.45, "best-path median gain {}", best.median());
        }
    }

    #[test]
    fn uplink_triples_exist_too() {
        let f = compute(network_ix());
        let (agg, _) = f.gains(Direction::Uplink);
        assert!(agg.len() > 20);
        assert!(agg.median() > 1.0);
    }
}
