//! The best-effort frame-offloading pipeline shared by the AR and CAV apps.
//!
//! §C.1: the Android app "offloads pre-recorded frames to an edge GPU
//! server in a best-effort manner" — i.e. the next frame is picked up at
//! the first capture instant after the previous offload completes; frames
//! arriving while the pipeline is busy are skipped (the local tracker
//! covers for them).
//!
//! Per-frame E2E latency = compression + uplink transfer + uplink
//! propagation (RTT/2) + server inference (+ decompression for compressed
//! frames, server side) + downlink result propagation (RTT/2). The result
//! payload (bounding boxes) is negligible against the uplink frame.

use crate::config::OffloadConfig;
use crate::{AppLink, LinkObs};

/// Outcome of one offloaded frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameOutcome {
    /// Capture time of the frame, s (absolute).
    pub capture_s: f64,
    /// End-to-end latency, ms.
    pub e2e_ms: f64,
}

/// Summary of a 20 s offloading run.
#[derive(Debug, Clone)]
pub struct OffloadSummary {
    /// Whether compression was enabled.
    pub compressed: bool,
    /// Per-frame outcomes, in order.
    pub frames: Vec<FrameOutcome>,
    /// Frames offloaded per second of run.
    pub offload_fps: f64,
    /// Mean E2E, ms.
    pub e2e_mean_ms: f64,
    /// Median E2E, ms.
    pub e2e_median_ms: f64,
    /// Handovers observed during the run (sampled per frame).
    pub handover_frames: usize,
}

/// One offloading run over a link.
#[derive(Debug, Clone, Copy)]
pub struct OffloadRun {
    /// App configuration (Table 4 column).
    pub config: OffloadConfig,
    /// Whether to compress frames before upload.
    pub compressed: bool,
}

impl OffloadRun {
    /// Execute the run starting at absolute time `t0_s`.
    pub fn execute(&self, t0_s: f64, link: &mut dyn AppLink) -> OffloadSummary {
        let cfg = &self.config;
        let period_s = cfg.frame_period_ms() / 1_000.0;
        let frame_bits = cfg.frame_bytes(self.compressed) * 8.0;
        let mut frames = Vec::new();
        let mut handover_frames = 0;
        // Pipeline becomes free at `free_at`; the next frame offloaded is
        // the first capture at or after that instant.
        let mut free_at = t0_s;
        let end = t0_s + cfg.run_s;
        loop {
            // Next capture instant >= free_at, aligned to the frame clock.
            let k = ((free_at - t0_s) / period_s).ceil().max(0.0);
            let capture = t0_s + k * period_s;
            if capture >= end {
                break;
            }
            let obs = link.sample(capture);
            if obs.in_handover {
                handover_frames += 1;
            }
            let e2e_ms = Self::frame_e2e_ms(cfg, self.compressed, frame_bits, &obs);
            frames.push(FrameOutcome {
                capture_s: capture,
                e2e_ms,
            });
            free_at = capture + e2e_ms / 1_000.0;
        }
        let mut e2e: Vec<f64> = frames.iter().map(|f| f.e2e_ms).collect();
        e2e.sort_by(f64::total_cmp);
        let mean = if e2e.is_empty() {
            0.0
        } else {
            e2e.iter().sum::<f64>() / e2e.len() as f64
        };
        let median = e2e.get(e2e.len() / 2).copied().unwrap_or(0.0);
        OffloadSummary {
            compressed: self.compressed,
            offload_fps: frames.len() as f64 / cfg.run_s,
            e2e_mean_ms: mean,
            e2e_median_ms: median,
            handover_frames,
            frames,
        }
    }

    /// E2E latency of one frame under the observed link.
    fn frame_e2e_ms(cfg: &OffloadConfig, compressed: bool, frame_bits: f64, obs: &LinkObs) -> f64 {
        // A handover blanks the uplink for roughly its interruption; fold
        // it in as a very low effective rate rather than a special case.
        let ul_mbps = if obs.in_handover {
            (obs.ul_mbps * 0.05).max(0.05)
        } else {
            obs.ul_mbps.max(0.05)
        };
        let upload_ms = frame_bits / (ul_mbps * 1e6) * 1_000.0;
        let compress_ms = if compressed { cfg.compression_ms } else { 0.0 };
        let decompress_ms = if compressed { cfg.decompression_ms } else { 0.0 };
        compress_ms + upload_ms + obs.rtt_ms + cfg.inference_ms + decompress_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AR_CONFIG, CAV_CONFIG};
    use crate::ConstantLink;

    #[test]
    fn good_link_ar_matches_best_static_ballpark() {
        // Paper best static: E2E 68 ms, 12.5 FPS offloaded.
        let run = OffloadRun {
            config: AR_CONFIG,
            compressed: true,
        };
        let s = run.execute(0.0, &mut ConstantLink::good());
        assert!((40.0..90.0).contains(&s.e2e_mean_ms), "{}", s.e2e_mean_ms);
        assert!((10.0..20.0).contains(&s.offload_fps), "{}", s.offload_fps);
    }

    #[test]
    fn poor_link_degrades_ar() {
        let run = OffloadRun {
            config: AR_CONFIG,
            compressed: true,
        };
        let s = run.execute(0.0, &mut ConstantLink::poor());
        // ~50 KB over 3 Mbps ≈ 137 ms upload + 90 RTT + 32 pipeline.
        assert!(s.e2e_median_ms > 180.0, "{}", s.e2e_median_ms);
        assert!(s.offload_fps < 6.0, "{}", s.offload_fps);
    }

    #[test]
    fn compression_off_is_slower_for_cav() {
        let mk = |compressed| OffloadRun {
            config: CAV_CONFIG,
            compressed,
        };
        let mut link = ConstantLink::poor();
        let with = mk(true).execute(0.0, &mut link);
        let without = mk(false).execute(0.0, &mut link);
        // 2000 KB vs 38 KB over 3 Mbps: ~5 s vs ~0.25 s; ratio ~8x at the
        // paper's driving medians.
        assert!(
            without.e2e_median_ms > 4.0 * with.e2e_median_ms,
            "{} vs {}",
            without.e2e_median_ms,
            with.e2e_median_ms
        );
    }

    #[test]
    fn offload_fps_never_exceeds_source_fps() {
        let run = OffloadRun {
            config: AR_CONFIG,
            compressed: true,
        };
        let mut link = ConstantLink {
            obs: crate::LinkObs {
                dl_mbps: 1_000.0,
                ul_mbps: 1_000.0,
                rtt_ms: 0.1,
                in_handover: false,
            },
        };
        let s = run.execute(0.0, &mut link);
        assert!(s.offload_fps <= AR_CONFIG.fps + 1e-9);
    }

    #[test]
    fn frames_are_capture_aligned() {
        let run = OffloadRun {
            config: AR_CONFIG,
            compressed: true,
        };
        let s = run.execute(10.0, &mut ConstantLink::good());
        let period = AR_CONFIG.frame_period_ms() / 1_000.0;
        for f in &s.frames {
            let k = (f.capture_s - 10.0) / period;
            assert!((k - k.round()).abs() < 1e-6, "misaligned at {}", f.capture_s);
        }
    }

    #[test]
    fn handover_frames_counted_and_slow() {
        struct HoLink;
        impl AppLink for HoLink {
            fn sample(&mut self, t_s: f64) -> crate::LinkObs {
                crate::LinkObs {
                    dl_mbps: 100.0,
                    ul_mbps: 50.0,
                    rtt_ms: 30.0,
                    in_handover: (2.0..2.5).contains(&(t_s % 10.0)),
                }
            }
        }
        let run = OffloadRun {
            config: AR_CONFIG,
            compressed: true,
        };
        let s = run.execute(0.0, &mut HoLink);
        assert!(s.handover_frames > 0);
        let max = s.frames.iter().map(|f| f.e2e_ms).fold(0.0, f64::max);
        let median = s.e2e_median_ms;
        assert!(max > 2.0 * median, "HO frames should stick out: {max} vs {median}");
    }
}
