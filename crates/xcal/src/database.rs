//! The consolidated per-test database.
//!
//! §B: the post-processing pipeline "loads all the segregated XCAL files
//! ... and creates a consolidated database, which includes both the XCAL
//! and the app layer data". Every figure and table in the paper is a query
//! over this database; `wheels-analysis` consumes it.

use serde::{Deserialize, Serialize};

use wheels_geo::timezone::Timezone;
use wheels_ran::handover::HandoverEvent;
use wheels_ran::operator::Operator;
use wheels_ran::Direction;
use wheels_netsim::server::ServerKind;

use crate::handover_logger::PassiveLogger;
use crate::kpi::KpiSample;

/// The kind of test a record holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestKind {
    /// nuttcp downlink bulk transfer (30 s).
    ThroughputDl,
    /// nuttcp uplink bulk transfer (30 s).
    ThroughputUl,
    /// ICMP ping test (20 s).
    Rtt,
    /// Edge-assisted AR offload run (20 s).
    AppAr,
    /// Edge-assisted CAV offload run (20 s).
    AppCav,
    /// 360° video streaming session (180 s).
    AppVideo,
    /// Cloud gaming session (60 s).
    AppGaming,
}

impl TestKind {
    /// All kinds, round-robin order.
    pub const ALL: [TestKind; 7] = [
        TestKind::ThroughputDl,
        TestKind::ThroughputUl,
        TestKind::Rtt,
        TestKind::AppAr,
        TestKind::AppCav,
        TestKind::AppVideo,
        TestKind::AppGaming,
    ];

    /// Short label (used in XCAL file names).
    pub fn label(self) -> &'static str {
        match self {
            TestKind::ThroughputDl => "DL",
            TestKind::ThroughputUl => "UL",
            TestKind::Rtt => "RTT",
            TestKind::AppAr => "AR",
            TestKind::AppCav => "CAV",
            TestKind::AppVideo => "VIDEO",
            TestKind::AppGaming => "GAME",
        }
    }

    /// Measured traffic direction for throughput tests.
    pub fn direction(self) -> Option<Direction> {
        match self {
            TestKind::ThroughputDl => Some(Direction::Downlink),
            TestKind::ThroughputUl => Some(Direction::Uplink),
            _ => None,
        }
    }
}

/// Per-run application QoE metrics (fields used depend on the app).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AppMetrics {
    /// Frame compression enabled (AR/CAV).
    pub compressed: Option<bool>,
    /// Mean end-to-end offload latency, ms (AR/CAV).
    pub e2e_ms_mean: Option<f32>,
    /// Median end-to-end offload latency, ms (AR/CAV).
    pub e2e_ms_median: Option<f32>,
    /// Offloaded frames per second (AR/CAV).
    pub offload_fps: Option<f32>,
    /// Object-detection accuracy, mAP % (AR).
    pub map_accuracy: Option<f32>,
    /// Average per-run QoE (360° video, Yin et al. formula).
    pub qoe: Option<f32>,
    /// Average video bitrate, Mbps (360° video).
    pub avg_bitrate_mbps: Option<f32>,
    /// Rebuffering time as a fraction of playback (360° video).
    pub rebuffer_frac: Option<f32>,
    /// Sending bitrate, Mbps (cloud gaming).
    pub send_bitrate_mbps: Option<f32>,
    /// Network latency, ms (cloud gaming).
    pub net_latency_ms: Option<f32>,
    /// Frame drop rate, fraction (cloud gaming).
    pub frame_drop_frac: Option<f32>,
}

/// One test's consolidated record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestRecord {
    /// Unique id.
    pub id: u32,
    /// Operator under test.
    pub op: Operator,
    /// Test kind.
    pub kind: TestKind,
    /// Start, plan seconds.
    pub start_s: f64,
    /// Duration, seconds.
    pub duration_s: f64,
    /// Server kind used.
    pub server_kind: ServerKind,
    /// Server site name.
    pub server_name: String,
    /// True for the static city baselines (Fig. 3a).
    pub is_static: bool,
    /// Odometer at start, meters.
    pub start_odometer_m: f64,
    /// Odometer at end, meters.
    pub end_odometer_m: f64,
    /// Timezone at the test location.
    pub timezone: Timezone,
    /// Fraction of test time connected to high-speed 5G (mid/mmWave).
    pub frac_hs5g: f32,
    /// 500 ms KPI samples.
    pub kpi: Vec<KpiSample>,
    /// Ping RTTs, ms (RTT tests only).
    pub rtt_ms: Vec<f32>,
    /// Handovers during the test.
    pub handovers: Vec<HandoverEvent>,
    /// App QoE metrics (app tests only).
    pub app: Option<AppMetrics>,
}

impl TestRecord {
    /// Distance driven during the test, miles.
    pub fn distance_miles(&self) -> f64 {
        (self.end_odometer_m - self.start_odometer_m).max(0.0) / wheels_geo::METERS_PER_MILE
    }

    /// Handovers per mile (None when the vehicle moved less than a tenth
    /// of a mile — normalizing a 30 s stop-light test by meters of creep
    /// produces absurd rates, so such tests are excluded as the paper's
    /// per-mile statistics implicitly do).
    pub fn handovers_per_mile(&self) -> Option<f64> {
        let miles = self.distance_miles();
        if miles < 0.1 {
            None
        } else {
            Some(self.handovers.len() as f64 / miles)
        }
    }

    /// Truncate the record's logged streams at plan time `t_s`, as if the
    /// XCAL probe died at that instant: KPI samples and handovers stamped
    /// after `t_s` are gone, and the (unstamped) ping series keeps only
    /// the fraction of samples collected before the crash. The scheduled
    /// `start_s`/`duration_s` are untouched — the test *ran*, its log is
    /// just short. Returns the number of KPI samples lost.
    pub fn truncate_streams_at(&mut self, t_s: f64) -> usize {
        let before = self.kpi.len();
        self.kpi.retain(|k| k.time_s <= t_s);
        self.handovers.retain(|h| h.time_s <= t_s);
        if !self.rtt_ms.is_empty() && self.duration_s > 0.0 {
            let frac = ((t_s - self.start_s) / self.duration_s).clamp(0.0, 1.0);
            let keep = (self.rtt_ms.len() as f64 * frac).floor() as usize;
            self.rtt_ms.truncate(keep);
        }
        before - self.kpi.len()
    }

    /// True if the test's `[start_s, start_s + duration_s]` span overlaps
    /// the closed window `[w0_s, w1_s]` (used to decide which tests a
    /// modem-detach window kills).
    pub fn overlaps_window(&self, w0_s: f64, w1_s: f64) -> bool {
        self.start_s <= w1_s && self.start_s + self.duration_s >= w0_s
    }

    /// Throughput samples (Mbps) of this record, if any.
    pub fn tput_samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.kpi.iter().filter_map(|k| k.tput_mbps.map(f64::from))
    }

    /// Mean throughput of the test, Mbps.
    pub fn mean_tput_mbps(&self) -> Option<f64> {
        let (n, sum) = self
            .tput_samples()
            .fold((0usize, 0.0f64), |(n, sum), v| (n + 1, sum + v));
        (n > 0).then(|| sum / n as f64)
    }
}

/// The consolidated database of the whole campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConsolidatedDb {
    /// Every test of the campaign, in time order.
    pub records: Vec<TestRecord>,
    /// Passive handover-logger data per operator.
    pub passive: Vec<(Operator, PassiveLogger)>,
}

impl ConsolidatedDb {
    /// Records for one operator and test kind.
    pub fn by_op_kind(
        &self,
        op: Operator,
        kind: TestKind,
    ) -> impl Iterator<Item = &TestRecord> + '_ {
        self.records
            .iter()
            .filter(move |r| r.op == op && r.kind == kind)
    }

    /// Driving (non-static) records of one operator and kind.
    pub fn driving(&self, op: Operator, kind: TestKind) -> impl Iterator<Item = &TestRecord> + '_ {
        self.by_op_kind(op, kind).filter(|r| !r.is_static)
    }

    /// Static baseline records of one operator and kind.
    pub fn static_runs(
        &self,
        op: Operator,
        kind: TestKind,
    ) -> impl Iterator<Item = &TestRecord> + '_ {
        self.by_op_kind(op, kind).filter(|r| r.is_static)
    }

    /// All driving throughput KPI samples for (operator, direction).
    pub fn tput_kpi(&self, op: Operator, dir: Direction) -> impl Iterator<Item = &KpiSample> + '_ {
        let kind = match dir {
            Direction::Downlink => TestKind::ThroughputDl,
            Direction::Uplink => TestKind::ThroughputUl,
        };
        self.driving(op, kind).flat_map(|r| r.kpi.iter())
    }

    /// The passive log for one operator, if present.
    pub fn passive_for(&self, op: Operator) -> Option<&PassiveLogger> {
        self.passive.iter().find(|(o, _)| *o == op).map(|(_, l)| l)
    }

    /// Total number of handovers recorded in tests for one operator.
    pub fn handover_count(&self, op: Operator) -> usize {
        self.records
            .iter()
            .filter(|r| r.op == op)
            .map(|r| r.handovers.len())
            .sum()
    }

    /// Distinct serving cells seen in tests for one operator.
    pub fn unique_cells(&self, op: Operator) -> usize {
        let mut cells: Vec<u32> = self
            .records
            .iter()
            .filter(|r| r.op == op)
            .flat_map(|r| r.kpi.iter().map(|k| k.cell.0))
            .collect();
        cells.sort_unstable();
        cells.dedup();
        cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wheels_geo::region::RegionKind;
    use wheels_radio::band::Technology;
    use wheels_ran::cell::CellId;

    fn kpi(t: f64, tput: Option<f32>, cell: u32) -> KpiSample {
        KpiSample {
            time_s: t,
            tput_mbps: tput,
            tech: Technology::LteA,
            cell: CellId(cell),
            rsrp_dbm: -100.0,
            sinr_db: 10.0,
            mcs: 10,
            bler: 0.1,
            ca: 2,
            handovers_in_window: 0,
            speed_mps: 30.0,
            odometer_m: 0.0,
            region: RegionKind::Highway,
            timezone: Timezone::Central,
            in_handover: false,
        }
    }

    fn record(id: u32, op: Operator, kind: TestKind, is_static: bool) -> TestRecord {
        TestRecord {
            id,
            op,
            kind,
            start_s: id as f64 * 100.0,
            duration_s: 30.0,
            server_kind: ServerKind::Cloud,
            server_name: "EC2 Ohio".into(),
            is_static,
            start_odometer_m: 0.0,
            end_odometer_m: 1_609.344,
            timezone: Timezone::Central,
            frac_hs5g: 0.0,
            kpi: vec![kpi(0.0, Some(10.0), 1), kpi(0.5, Some(20.0), 2)],
            rtt_ms: vec![],
            handovers: vec![],
            app: None,
        }
    }

    #[test]
    fn filters_by_op_kind_and_static() {
        let db = ConsolidatedDb {
            records: vec![
                record(0, Operator::Verizon, TestKind::ThroughputDl, false),
                record(1, Operator::Verizon, TestKind::ThroughputDl, true),
                record(2, Operator::Att, TestKind::ThroughputDl, false),
                record(3, Operator::Verizon, TestKind::Rtt, false),
            ],
            passive: vec![],
        };
        assert_eq!(db.by_op_kind(Operator::Verizon, TestKind::ThroughputDl).count(), 2);
        assert_eq!(db.driving(Operator::Verizon, TestKind::ThroughputDl).count(), 1);
        assert_eq!(db.static_runs(Operator::Verizon, TestKind::ThroughputDl).count(), 1);
        assert_eq!(db.tput_kpi(Operator::Verizon, Direction::Downlink).count(), 2);
    }

    #[test]
    fn distance_and_handover_rates() {
        let r = record(0, Operator::TMobile, TestKind::ThroughputDl, false);
        assert!((r.distance_miles() - 1.0).abs() < 1e-9);
        assert_eq!(r.handovers_per_mile(), Some(0.0));
        assert!((r.mean_tput_mbps().unwrap() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn unique_cells_deduplicated() {
        let db = ConsolidatedDb {
            records: vec![
                record(0, Operator::Verizon, TestKind::ThroughputDl, false),
                record(1, Operator::Verizon, TestKind::ThroughputUl, false),
            ],
            passive: vec![],
        };
        // Both records contain cells {1, 2}.
        assert_eq!(db.unique_cells(Operator::Verizon), 2);
    }

    #[test]
    fn truncate_streams_drops_late_data_only() {
        let mut r = record(0, Operator::Verizon, TestKind::Rtt, false);
        // record(): start_s = 0, duration 30, kpi at t = 0.0 and 0.5.
        r.rtt_ms = vec![10.0; 100];
        let lost = r.truncate_streams_at(0.25);
        assert_eq!(lost, 1, "one of two KPI samples is after t=0.25");
        assert_eq!(r.kpi.len(), 1);
        // 0.25/30 of the ping series survives: floor(100 * 1/120) = 0.
        assert!(r.rtt_ms.is_empty());
        assert_eq!(r.start_s, 0.0);
        assert_eq!(r.duration_s, 30.0);
    }

    #[test]
    fn truncate_after_end_is_a_noop() {
        let mut r = record(0, Operator::Verizon, TestKind::Rtt, false);
        r.rtt_ms = vec![10.0; 100];
        assert_eq!(r.truncate_streams_at(1e9), 0);
        assert_eq!(r.kpi.len(), 2);
        assert_eq!(r.rtt_ms.len(), 100);
    }

    #[test]
    fn window_overlap_is_inclusive() {
        let r = record(0, Operator::Att, TestKind::ThroughputDl, false);
        // Span [0, 30].
        assert!(r.overlaps_window(30.0, 40.0));
        assert!(r.overlaps_window(-5.0, 0.0));
        assert!(r.overlaps_window(10.0, 20.0));
        assert!(!r.overlaps_window(30.1, 40.0));
    }

    #[test]
    fn zero_distance_gives_no_rate() {
        let mut r = record(0, Operator::Att, TestKind::ThroughputDl, true);
        r.end_odometer_m = r.start_odometer_m;
        assert_eq!(r.handovers_per_mile(), None);
    }
}
