#!/usr/bin/env bash
# Tier-1 CI gate. Everything runs --offline: the workspace vendors its
# external dependencies under vendor/ (see Cargo.toml [patch.crates-io]).
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline

echo "== tests (root package) =="
cargo test -q --offline

echo "== tests (full workspace) =="
cargo test -q --offline --workspace

echo "== sequential vs parallel equivalence (2 seeds x jobs {1,2,4}) =="
cargo test -q --offline --test parallel_equivalence

echo "CI OK"
