//! The trip's wall clock and the three timestamp formats of §B.
//!
//! Plan time 0 is 2022-08-08 00:00:00 EDT (the morning the drive left Los
//! Angeles, where it was still 21:00 on Aug 7 — exactly the kind of thing
//! that made the real log synchronization hard). Three formats appear in
//! the logs:
//!
//! * **UTC** — some applications logged in UTC;
//! * **local** — other applications and the XCAL `.drm` *filenames* used
//!   the vehicle's current local time;
//! * **EDT** — XCAL file *contents* were stamped in EDT regardless of
//!   where the vehicle was.
//!
//! The whole trip stays inside August 2022, so we can do date arithmetic
//! with day-of-month only (no month/year rollover), keeping this module
//! dependency-free and exactly as sophisticated as it needs to be.

use std::fmt;

use wheels_geo::timezone::Timezone;

/// Day-of-month in August 2022 on which plan time 0 falls (EDT).
pub const EPOCH_DAY_AUG: u32 = 8;

/// A point in trip time. Internally: seconds since 2022-08-08 00:00 EDT.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Timestamp {
    /// Seconds since the plan epoch (2022-08-08 00:00:00 EDT).
    pub plan_s: f64,
}

/// A broken-down civil time (always August 2022).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    /// Day of month (may run past 15 for late arrivals).
    pub day: u32,
    /// Hour 0-23.
    pub hour: u32,
    /// Minute 0-59.
    pub min: u32,
    /// Second 0-59.
    pub sec: u32,
    /// Milliseconds 0-999.
    pub ms: u32,
}

impl fmt::Display for Civil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "2022-08-{:02} {:02}:{:02}:{:02}.{:03}",
            self.day, self.hour, self.min, self.sec, self.ms
        )
    }
}

impl Timestamp {
    /// From plan seconds.
    pub fn from_plan_s(plan_s: f64) -> Self {
        Timestamp { plan_s }
    }

    /// Civil time in an arbitrary UTC offset (hours).
    fn civil_at_offset(&self, offset_from_edt_h: i32) -> Civil {
        let total_ms = ((self.plan_s + offset_from_edt_h as f64 * 3_600.0) * 1_000.0).round();
        // Offsets west of EDT can push the clock before the epoch midnight
        // (e.g. LA local time on the evening of Aug 7).
        let day_ms = 86_400_000.0;
        let mut day = EPOCH_DAY_AUG as i64;
        let mut rem = total_ms;
        while rem < 0.0 {
            rem += day_ms;
            day -= 1;
        }
        day += (rem / day_ms) as i64;
        let in_day = (rem % day_ms) as u64;
        Civil {
            day: day as u32,
            hour: (in_day / 3_600_000) as u32,
            min: (in_day / 60_000 % 60) as u32,
            sec: (in_day / 1_000 % 60) as u32,
            ms: (in_day % 1_000) as u32,
        }
    }

    /// Civil time in EDT (the timezone XCAL stamped file *contents* in).
    pub fn as_edt(&self) -> Civil {
        self.civil_at_offset(0)
    }

    /// Civil time in UTC (what some apps logged).
    pub fn as_utc(&self) -> Civil {
        self.civil_at_offset(4)
    }

    /// Civil time in the vehicle's current local timezone (what other apps
    /// and XCAL *filenames* used).
    pub fn as_local(&self, tz: Timezone) -> Civil {
        self.civil_at_offset(tz.offset_from_eastern_hours())
    }

    /// Parse a civil string (`2022-08-DD HH:MM:SS.mmm`) known to be in the
    /// given offset back to a [`Timestamp`]. Returns `None` on malformed
    /// input.
    fn parse_at_offset(s: &str, offset_from_edt_h: i32) -> Option<Timestamp> {
        let s = s.trim();
        let (date, time) = s.split_once(' ')?;
        let mut dp = date.split('-');
        let (y, m, d) = (dp.next()?, dp.next()?, dp.next()?);
        if y != "2022" || m != "08" {
            return None;
        }
        let day: i64 = d.parse().ok()?;
        let (hms, ms_str) = time.split_once('.').unwrap_or((time, "0"));
        let mut tp = hms.split(':');
        let h: i64 = tp.next()?.parse().ok()?;
        let mi: i64 = tp.next()?.parse().ok()?;
        let sec: i64 = tp.next()?.parse().ok()?;
        let ms: i64 = ms_str.parse().ok()?;
        if !(0..24).contains(&h) || !(0..60).contains(&mi) || !(0..60).contains(&sec) {
            return None;
        }
        let in_tz_s = ((day - EPOCH_DAY_AUG as i64) * 86_400 + h * 3_600 + mi * 60 + sec) as f64
            + ms as f64 / 1_000.0;
        Some(Timestamp {
            plan_s: in_tz_s - offset_from_edt_h as f64 * 3_600.0,
        })
    }

    /// Parse an EDT-stamped string.
    pub fn parse_edt(s: &str) -> Option<Timestamp> {
        Self::parse_at_offset(s, 0)
    }

    /// Parse a UTC-stamped string.
    pub fn parse_utc(s: &str) -> Option<Timestamp> {
        Self::parse_at_offset(s, 4)
    }

    /// Parse a local-time-stamped string given the timezone it was written
    /// in.
    pub fn parse_local(s: &str, tz: Timezone) -> Option<Timestamp> {
        Self::parse_at_offset(s, tz.offset_from_eastern_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_midnight_edt() {
        let t = Timestamp::from_plan_s(0.0);
        assert_eq!(t.as_edt().to_string(), "2022-08-08 00:00:00.000");
    }

    #[test]
    fn epoch_in_utc_is_4am() {
        let t = Timestamp::from_plan_s(0.0);
        assert_eq!(t.as_utc().to_string(), "2022-08-08 04:00:00.000");
    }

    #[test]
    fn epoch_in_la_is_previous_evening() {
        // 2022-08-08 00:00 EDT == 2022-08-07 21:00 PDT — the footgun that
        // makes naive filename matching mis-date every Pacific-zone log.
        let t = Timestamp::from_plan_s(0.0);
        assert_eq!(
            t.as_local(Timezone::Pacific).to_string(),
            "2022-08-07 21:00:00.000"
        );
    }

    #[test]
    fn roundtrip_all_formats() {
        let t = Timestamp::from_plan_s(3.5 * 86_400.0 + 12_345.678);
        let edt = t.as_edt().to_string();
        let utc = t.as_utc().to_string();
        for tz in Timezone::ALL {
            let local = t.as_local(tz).to_string();
            let back = Timestamp::parse_local(&local, tz).unwrap();
            assert!((back.plan_s - t.plan_s).abs() < 0.002, "{tz}: {local}");
        }
        assert!((Timestamp::parse_edt(&edt).unwrap().plan_s - t.plan_s).abs() < 0.002);
        assert!((Timestamp::parse_utc(&utc).unwrap().plan_s - t.plan_s).abs() < 0.002);
    }

    #[test]
    fn cross_format_confusion_is_hours_off() {
        // Parsing an EDT string as if it were UTC shifts by 4 h — the bug
        // class the paper's sync software had to defend against.
        let t = Timestamp::from_plan_s(50_000.0);
        let edt = t.as_edt().to_string();
        let wrong = Timestamp::parse_utc(&edt).unwrap();
        assert!((wrong.plan_s - (t.plan_s - 4.0 * 3_600.0)).abs() < 0.002);
    }

    #[test]
    fn malformed_strings_rejected() {
        assert!(Timestamp::parse_edt("not a time").is_none());
        assert!(Timestamp::parse_edt("2021-08-08 00:00:00.000").is_none());
        assert!(Timestamp::parse_edt("2022-09-08 00:00:00.000").is_none());
        assert!(Timestamp::parse_edt("2022-08-08 25:00:00.000").is_none());
    }

    #[test]
    fn milliseconds_preserved() {
        let t = Timestamp::from_plan_s(1.234);
        assert_eq!(t.as_edt().ms, 234);
    }
}
