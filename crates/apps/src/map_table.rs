//! Table 5: object-detection accuracy (mAP) vs E2E offloading latency.
//!
//! The paper measured, offline on the Argoverse dataset with Faster R-CNN
//! and an off-the-shelf local-tracking algorithm, the mAP achieved when the
//! edge result arrives N frame-times late (the tracker moves stale boxes
//! forward until the fresh result lands). Two columns: without and with
//! (lossy) frame compression.

/// mAP (%) per E2E-latency bin (bin i = latency in [i, i+1) frame times),
/// without compression. 30 bins (Table 5).
pub const MAP_NO_COMPRESSION: [f64; 30] = [
    38.45, 37.22, 36.04, 34.65, 33.36, 32.20, 31.08, 28.03, 27.01, 25.62, 25.77, 23.29, 22.75,
    22.48, 21.59, 20.59, 20.11, 19.53, 18.40, 18.01, 17.52, 16.96, 16.59, 15.41, 15.78, 15.86,
    14.81, 14.70, 14.44, 14.05,
];

/// mAP (%) per E2E-latency bin, with compression (lossy, slightly lower).
pub const MAP_WITH_COMPRESSION: [f64; 30] = [
    38.45, 36.14, 34.75, 33.12, 31.82, 30.50, 29.53, 26.99, 25.73, 25.21, 24.35, 22.44, 21.56,
    21.64, 21.16, 20.35, 19.69, 18.95, 17.61, 17.85, 17.00, 16.55, 15.97, 15.16, 14.94, 15.37,
    14.71, 13.77, 13.62, 13.70,
];

/// mAP (%) for an E2E latency expressed in *frame times*.
///
/// Latencies beyond the table's 30 bins clamp to the last bin — the
/// tracker's accuracy floor.
pub fn map_for_latency(frame_times: f64, compressed: bool) -> f64 {
    let table = if compressed {
        &MAP_WITH_COMPRESSION
    } else {
        &MAP_NO_COMPRESSION
    };
    let bin = (frame_times.max(0.0) as usize).min(table.len() - 1);
    table.get(bin).copied().unwrap_or(0.0)
}

/// mAP (%) for an E2E latency in ms at a given source frame rate.
pub fn map_for_latency_ms(e2e_ms: f64, fps: f64, compressed: bool) -> f64 {
    map_for_latency(e2e_ms / (1_000.0 / fps), compressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_30_bins() {
        assert_eq!(MAP_NO_COMPRESSION.len(), 30);
        assert_eq!(MAP_WITH_COMPRESSION.len(), 30);
    }

    #[test]
    fn first_bin_identical_across_columns() {
        // Within one frame time the result is fresh; compression loss has
        // not yet had a chance to matter (Table 5 row 0-1: 38.45 / 38.45).
        assert_eq!(MAP_NO_COMPRESSION[0], MAP_WITH_COMPRESSION[0]);
    }

    #[test]
    fn accuracy_broadly_decreasing() {
        // The table has small non-monotonic wiggles (measurement noise);
        // check the broad trend over 5-bin strides.
        for t in [&MAP_NO_COMPRESSION, &MAP_WITH_COMPRESSION] {
            for i in 0..(t.len() - 5) {
                assert!(t[i] > t[i + 5], "bin {i}");
            }
        }
    }

    #[test]
    fn lookup_bins_correctly() {
        assert_eq!(map_for_latency(0.5, false), 38.45);
        assert_eq!(map_for_latency(1.5, false), 37.22);
        assert_eq!(map_for_latency(6.4, true), 29.53);
    }

    #[test]
    fn clamps_beyond_table() {
        assert_eq!(map_for_latency(99.0, false), 14.05);
        assert_eq!(map_for_latency(-1.0, true), 38.45);
    }

    #[test]
    fn ms_conversion_at_30fps() {
        // 214 ms at 30 FPS = 6.42 frame times -> bin 6 (compressed: 29.53),
        // matching the paper's driving median mAP of ~30.1.
        let m = map_for_latency_ms(214.0, 30.0, true);
        assert_eq!(m, 29.53);
    }
}
