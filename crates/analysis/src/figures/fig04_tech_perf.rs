//! Fig. 4: driving throughput/RTT CDFs per technology; Verizon edge vs
//! cloud split.

use std::sync::Arc;

use wheels_netsim::server::ServerKind;
use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;

use crate::ecdf::Ecdf;
use crate::index::{AnalysisIndex, EcdfQuery, QueryMetric};
use crate::render::{cdf_header, cdf_row};

/// One CDF series keyed by (operator, technology, server kind).
pub type TechSeries = Vec<(Operator, Technology, ServerKind, Arc<Ecdf>)>;

/// CDFs per (operator, technology, server kind).
#[derive(Debug, Clone)]
pub struct TechPerf {
    /// (op, tech, server kind, DL tput ECDF).
    pub dl: TechSeries,
    /// (op, tech, server kind, UL tput ECDF).
    pub ul: TechSeries,
    /// (op, tech, server kind, RTT ECDF).
    pub rtt: TechSeries,
}

/// Compute Fig. 4 (driving tests only) from memoized index queries.
pub fn compute(ix: &AnalysisIndex<'_>) -> TechPerf {
    let mut dl = Vec::new();
    let mut ul = Vec::new();
    let mut rtt = Vec::new();
    for &op in ix.ops() {
        let kinds: &[ServerKind] = if op.has_edge_servers() {
            &[ServerKind::Cloud, ServerKind::Edge]
        } else {
            &[ServerKind::Cloud]
        };
        for &server in kinds {
            for tech in Technology::ALL {
                let cell = |metric: QueryMetric| {
                    ix.query(EcdfQuery::metric(op, metric).tech(tech).server(server))
                };
                dl.push((op, tech, server, cell(QueryMetric::TputDl)));
                ul.push((op, tech, server, cell(QueryMetric::TputUl)));
                rtt.push((op, tech, server, cell(QueryMetric::Rtt)));
            }
        }
    }
    TechPerf { dl, ul, rtt }
}

impl TechPerf {
    /// Look up one series.
    pub fn get(
        list: &[(Operator, Technology, ServerKind, Arc<Ecdf>)],
        op: Operator,
        tech: Technology,
        server: ServerKind,
    ) -> Option<&Ecdf> {
        list.iter()
            .find(|(o, t, s, _)| *o == op && *t == tech && *s == server)
            .map(|(_, _, _, e)| &**e)
    }

    /// Pool a direction's samples across server kinds for (op, tech).
    pub fn pooled(
        list: &[(Operator, Technology, ServerKind, Arc<Ecdf>)],
        op: Operator,
        tech: Technology,
    ) -> Ecdf {
        Ecdf::new(
            list.iter()
                .filter(|(o, t, _, _)| *o == op && *t == tech)
                .flat_map(|(_, _, _, e)| e.samples().iter().copied()),
        )
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 4 — per-technology driving performance");
        out.push('\n');
        for (title, list, unit) in [
            ("downlink throughput", &self.dl, "Mbps"),
            ("uplink throughput", &self.ul, "Mbps"),
            ("RTT", &self.rtt, "ms"),
        ] {
            out.push_str(&format!("  [{title}, {unit}]\n"));
            for (op, tech, server, e) in list.iter() {
                if e.is_empty() {
                    continue;
                }
                out.push_str(&cdf_row(
                    &format!("{} {} ({})", op.code(), tech.label(), server.label()),
                    e,
                ));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_ix as small_ix;
    use wheels_ran::Direction as Dir;

    #[test]
    fn five_g_outperforms_4g_downlink() {
        let f = compute(small_ix());
        for op in Operator::ALL {
            let lte = TechPerf::pooled(&f.dl, op, Technology::Lte);
            let mid = TechPerf::pooled(&f.dl, op, Technology::Nr5gMid);
            if lte.len() < 30 || mid.len() < 30 {
                continue;
            }
            assert!(
                mid.percentile(75.0) > lte.percentile(75.0),
                "{op}: mid p75 {} vs lte p75 {}",
                mid.percentile(75.0),
                lte.percentile(75.0)
            );
        }
    }

    #[test]
    fn tmobile_midband_reaches_high_rates_with_deep_fades() {
        // §5.2: T-Mobile midband up to 760 Mbps DL but 40 % of samples
        // below 2 Mbps (largest fluctuation).
        let f = compute(small_ix());
        let mid = TechPerf::pooled(&f.dl, Operator::TMobile, Technology::Nr5gMid);
        assert!(mid.max() > 120.0, "max {}", mid.max());
        assert!(mid.frac_below(5.0) > 0.10, "low tail {}", mid.frac_below(5.0));
    }

    #[test]
    fn verizon_edge_rtt_below_cloud() {
        let f = compute(small_ix());
        // Pool RTT over techs for edge vs cloud.
        let pool = |server| {
            Ecdf::new(
                f.rtt
                    .iter()
                    .filter(|(o, _, s, _)| *o == Operator::Verizon && *s == server)
                    .flat_map(|(_, _, _, e)| e.samples().iter().copied()),
            )
        };
        let edge = pool(ServerKind::Edge);
        let cloud = pool(ServerKind::Cloud);
        if edge.len() > 20 && cloud.len() > 20 {
            assert!(
                edge.median() < cloud.median(),
                "edge {} vs cloud {}",
                edge.median(),
                cloud.median()
            );
        }
    }

    #[test]
    fn mmwave_rtt_lowest_for_verizon() {
        let f = compute(small_ix());
        let mm = TechPerf::pooled(&f.rtt, Operator::Verizon, Technology::Nr5gMmWave);
        let lte = TechPerf::pooled(&f.rtt, Operator::Verizon, Technology::Lte);
        if mm.len() > 10 && lte.len() > 10 {
            assert!(mm.median() < lte.median());
        }
    }

    #[test]
    fn directions_defined_for_all() {
        let _ = Dir::BOTH;
        let f = compute(small_ix());
        assert!(!f.dl.is_empty() && !f.ul.is_empty() && !f.rtt.is_empty());
    }
}
