//! Handover state machine: A3-style triggering, execution delay, event log.
//!
//! §6 of the paper quantifies handovers during the drive: typically 1–3 per
//! mile (median) with short interruptions (median 49–76 ms depending on
//! operator), a small throughput dip during the HO (Fig. 12 top), and a
//! post-HO throughput that is *higher* than pre-HO 55–60 % of the time.
//!
//! Triggering follows the standard A3 event: a neighbor must exceed the
//! serving cell by a hysteresis margin continuously for a time-to-trigger
//! before the HO executes. Execution blanks the user plane for a lognormal
//! interruption whose median matches the per-operator values in Fig. 11b.

use rand::rngs::SmallRng;
use rand::Rng;

use wheels_radio::band::Technology;

use crate::cell::CellId;
use crate::operator::Operator;

/// Hysteresis margin for the A3 event, dB.
pub const A3_HYSTERESIS_DB: f64 = 3.0;
/// Time-to-trigger for the A3 event, seconds.
pub const A3_TTT_S: f64 = 0.64;

/// Classification of a handover by the technologies involved (Fig. 12
/// breaks ΔT₂ down by these four types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum HandoverKind {
    /// 4G → 4G (LTE/LTE-A to LTE/LTE-A).
    Horizontal4g,
    /// 5G → 5G.
    Horizontal5g,
    /// 4G → 5G (typically improves throughput).
    Up4gTo5g,
    /// 5G → 4G (the type that most often lowers post-HO throughput).
    Down5gTo4g,
}

impl HandoverKind {
    /// Classify from the technologies on each side.
    pub fn classify(from: Technology, to: Technology) -> Self {
        match (from.is_5g(), to.is_5g()) {
            (false, false) => HandoverKind::Horizontal4g,
            (true, true) => HandoverKind::Horizontal5g,
            (false, true) => HandoverKind::Up4gTo5g,
            (true, false) => HandoverKind::Down5gTo4g,
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            HandoverKind::Horizontal4g => "4G->4G",
            HandoverKind::Horizontal5g => "5G->5G",
            HandoverKind::Up4gTo5g => "4G->5G",
            HandoverKind::Down5gTo4g => "5G->4G",
        }
    }

    /// All four kinds in the paper's order.
    pub const ALL: [HandoverKind; 4] = [
        HandoverKind::Horizontal4g,
        HandoverKind::Horizontal5g,
        HandoverKind::Up4gTo5g,
        HandoverKind::Down5gTo4g,
    ];
}

/// A completed handover, as recorded in the signaling log.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct HandoverEvent {
    /// Time the HO executed, seconds.
    pub time_s: f64,
    /// Source cell and technology.
    pub from: (CellId, Technology),
    /// Target cell and technology.
    pub to: (CellId, Technology),
    /// User-plane interruption, milliseconds.
    pub duration_ms: f64,
    /// Kind (horizontal/vertical).
    pub kind: HandoverKind,
}

/// Median user-plane interruption per operator, ms (Fig. 11b).
pub fn median_interruption_ms(op: Operator) -> f64 {
    match op {
        Operator::Verizon => 51.0,
        Operator::TMobile => 75.0,
        Operator::Att => 57.0,
    }
}

/// Draw a handover interruption for `op`: lognormal with the operator's
/// median and a shape matching the reported 75th percentiles (σ ≈ 0.48).
pub fn draw_interruption_ms(op: Operator, rng: &mut SmallRng) -> f64 {
    let median = median_interruption_ms(op);
    let sigma = 0.48;
    let z: f64 = {
        let mut s = 0.0;
        for _ in 0..12 {
            s += rng.gen::<f64>();
        }
        s - 6.0
    };
    (median.ln() + sigma * z).exp()
}

/// A3 trigger tracker for one serving link.
#[derive(Debug, Clone, Default)]
pub struct A3Tracker {
    candidate: Option<CellId>,
    since_s: f64,
}

impl A3Tracker {
    /// Feed one measurement instant. Returns `true` when the A3 condition
    /// has held for the time-to-trigger and a handover should execute.
    pub fn observe(
        &mut self,
        t_s: f64,
        serving_rsrp: f64,
        best_other: Option<(CellId, f64)>,
    ) -> bool {
        match best_other {
            Some((cell, rsrp)) if rsrp > serving_rsrp + A3_HYSTERESIS_DB => {
                if self.candidate == Some(cell) {
                    t_s - self.since_s >= A3_TTT_S
                } else {
                    self.candidate = Some(cell);
                    self.since_s = t_s;
                    false
                }
            }
            _ => {
                self.candidate = None;
                false
            }
        }
    }

    /// The candidate currently under evaluation, if any.
    pub fn candidate(&self) -> Option<CellId> {
        self.candidate
    }

    /// Reset after a handover executes.
    pub fn reset(&mut self) {
        self.candidate = None;
        self.since_s = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::sub_rng;

    #[test]
    fn classify_matrix() {
        use Technology::*;
        assert_eq!(HandoverKind::classify(Lte, LteA), HandoverKind::Horizontal4g);
        assert_eq!(
            HandoverKind::classify(Nr5gMid, Nr5gLow),
            HandoverKind::Horizontal5g
        );
        assert_eq!(HandoverKind::classify(LteA, Nr5gMid), HandoverKind::Up4gTo5g);
        assert_eq!(
            HandoverKind::classify(Nr5gMmWave, Lte),
            HandoverKind::Down5gTo4g
        );
    }

    #[test]
    fn interruption_medians_match_fig11b() {
        let mut rng = sub_rng(1, 1);
        for op in Operator::ALL {
            let mut v: Vec<f64> = (0..20_000).map(|_| draw_interruption_ms(op, &mut rng)).collect();
            v.sort_by(f64::total_cmp);
            let med = v[v.len() / 2];
            let p75 = v[(v.len() * 3) / 4];
            let target = median_interruption_ms(op);
            assert!((med - target).abs() < target * 0.08, "{op}: median {med}");
            // 75th ≈ median × 1.38 (paper: 53→73, 76→107, 58→74).
            assert!((1.25..1.55).contains(&(p75 / med)), "{op}: p75/med {}", p75 / med);
        }
    }

    #[test]
    fn tmobile_handovers_slowest() {
        assert!(
            median_interruption_ms(Operator::TMobile) > median_interruption_ms(Operator::Verizon)
        );
        assert!(median_interruption_ms(Operator::TMobile) > median_interruption_ms(Operator::Att));
    }

    #[test]
    fn a3_requires_sustained_advantage() {
        let mut a3 = A3Tracker::default();
        let c = CellId(7);
        // Advantage appears at t=0; must not trigger before TTT.
        assert!(!a3.observe(0.0, -95.0, Some((c, -90.0))));
        assert!(!a3.observe(0.3, -95.0, Some((c, -90.0))));
        assert!(a3.observe(0.7, -95.0, Some((c, -90.0))));
    }

    #[test]
    fn a3_resets_when_advantage_lapses() {
        let mut a3 = A3Tracker::default();
        let c = CellId(7);
        assert!(!a3.observe(0.0, -95.0, Some((c, -90.0))));
        // Advantage disappears (within hysteresis) — timer resets.
        assert!(!a3.observe(0.3, -95.0, Some((c, -94.0))));
        assert!(!a3.observe(0.7, -95.0, Some((c, -90.0))));
        assert!(!a3.observe(1.0, -95.0, Some((c, -90.0))));
        assert!(a3.observe(1.4, -95.0, Some((c, -90.0))));
    }

    #[test]
    fn a3_candidate_switch_restarts_timer() {
        let mut a3 = A3Tracker::default();
        assert!(!a3.observe(0.0, -95.0, Some((CellId(1), -90.0))));
        assert!(!a3.observe(0.5, -95.0, Some((CellId(2), -89.0))));
        assert!(!a3.observe(1.0, -95.0, Some((CellId(2), -89.0))));
        assert!(a3.observe(1.2, -95.0, Some((CellId(2), -89.0))));
    }

    #[test]
    fn no_trigger_without_neighbor() {
        let mut a3 = A3Tracker::default();
        assert!(!a3.observe(0.0, -95.0, None));
        assert!(!a3.observe(10.0, -95.0, None));
    }
}
