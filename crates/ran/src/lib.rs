//! # wheels-ran
//!
//! Radio-access-network simulator for the *Cellular Networks on the Wheels*
//! replication: the three major US operators, their per-region/per-timezone
//! deployment strategies, serving-cell selection, the traffic-dependent
//! LTE↔5G upgrade policies, cell load, and the handover state machine.
//!
//! This crate is where the paper's headline coverage findings are
//! *mechanistically* produced:
//!
//! * fragmented, operator-diverse 5G coverage (Fig. 2a) — from the
//!   deployment profiles in [`deployment`];
//! * geographic diversity (Fig. 2c) and speed-bin structure (Fig. 2d) —
//!   deployment densities keyed on timezone and region kind;
//! * direction-dependent upgrades and the passive-logger pessimism
//!   (Fig. 1, Fig. 2b) — the [`policy::UpgradePolicy`];
//! * handover rates, durations and throughput impact (Fig. 11, Fig. 12) —
//!   the [`handover`] state machine;
//! * the weak KPI–throughput correlations (Table 2) — the [`load`] process
//!   dominating capacity variance.
//!
//! The top-level type is [`ue::UeRadio`]: one per (phone, operator), stepped
//! along the drive, yielding [`ue::LinkSnapshot`]s that the rest of the
//! workspace consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod config;
pub mod deployment;
pub mod fleet;
pub mod handover;
pub mod load;
pub mod operator;
pub mod policy;
pub mod selection;
pub mod tuning;
pub mod ue;

pub use cell::{CellDb, CellId, CellSite};
pub use config::LinkConfig;
pub use fleet::{FleetLoad, FleetParams};
pub use handover::{HandoverEvent, HandoverKind};
pub use operator::Operator;
pub use policy::{TrafficDemand, UpgradePolicy};
pub use load::{LoadParams, LoadScale};
pub use tuning::OperatorTuning;
pub use ue::{LinkSnapshot, UeRadio};

/// Traffic direction. The paper analyzes downlink and uplink separately
/// throughout (coverage in Fig. 2b, performance everywhere else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Server → UE.
    Downlink,
    /// UE → server.
    Uplink,
}

impl Direction {
    /// Both directions, downlink first.
    pub const BOTH: [Direction; 2] = [Direction::Downlink, Direction::Uplink];

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Downlink => "DL",
            Direction::Uplink => "UL",
        }
    }
}
