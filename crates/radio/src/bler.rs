//! Residual block error rate.
//!
//! Link adaptation targets ~10 % first-transmission BLER; what the XCAL logs
//! (and Table 2 correlates) is the *residual* BLER, which stays near the
//! target when adaptation keeps up and blows up when SINR collapses faster
//! than the outer loop can track — i.e. at low SINR and high speed. Because
//! the adaptation loop holds BLER roughly constant across the usable SINR
//! range, BLER correlates only weakly with throughput, exactly what Table 2
//! reports (|r| ≤ 0.23 for every operator/direction).

/// Residual BLER in [0, 1] for a wideband SINR (dB) at vehicle speed
/// `speed_mps` (m/s).
///
/// * Above ~5 dB SINR: flat near the 8 % adaptation target.
/// * Below: sigmoidal rise towards ~35 % as the link falls apart.
/// * Speed adds a Doppler/tracking penalty of up to ~6 % at highway speed.
pub fn bler_from_sinr(sinr_db: f64, speed_mps: f64) -> f64 {
    let base = 0.08;
    let collapse = 0.27 / (1.0 + ((sinr_db + 1.0) / 1.8).exp());
    let doppler = 0.06 * (speed_mps / 31.0).clamp(0.0, 1.0);
    (base + collapse + doppler).clamp(0.0, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_target_at_good_sinr() {
        let b = bler_from_sinr(15.0, 0.0);
        assert!((0.05..0.12).contains(&b), "{b}");
    }

    #[test]
    fn rises_at_low_sinr() {
        assert!(bler_from_sinr(-6.0, 0.0) > bler_from_sinr(10.0, 0.0) + 0.1);
    }

    #[test]
    fn monotone_decreasing_in_sinr() {
        let mut last = 1.0;
        for s in -10..30 {
            let b = bler_from_sinr(s as f64, 0.0);
            assert!(b <= last);
            last = b;
        }
    }

    #[test]
    fn speed_penalty_bounded() {
        let slow = bler_from_sinr(10.0, 0.0);
        let fast = bler_from_sinr(10.0, 31.0);
        assert!(fast > slow);
        assert!(fast - slow <= 0.061);
    }

    #[test]
    fn never_leaves_unit_interval() {
        for s in (-40..60).step_by(5) {
            for v in [0.0, 10.0, 40.0, 100.0] {
                let b = bler_from_sinr(s as f64, v);
                assert!((0.0..=0.9).contains(&b));
            }
        }
    }
}
