//! Lexer stress file: every forbidden token below lives in a string, a
//! raw string, a char-adjacent position, or a comment — none may fire.
//!
//! Mentioning HashMap, Instant::now, thread_rng, seed_from_u64 and
//! partial_cmp in doc comments is legal: sort_by(|a, b| a.partial_cmp(b).unwrap())

const PLAIN: &str = "use std::collections::HashMap; Instant::now()";
const ESCAPED: &str = "quote \" then thread_rng() and SystemTime::now()";
const RAW: &str = r#"seed_from_u64(42) and "nested" splitmix64(&mut s)"#;
const RAW_MULTI: &str = r##"
v.sort_by(|a, b| a.partial_cmp(b).unwrap());
std::env::var("PATH")
"##;

/* block comment: std::collections::HashSet::new(), from_entropy(),
   v.sort_by(|a, b| a.partial_cmp(b).expect("x")) — still a comment,
   /* nested: UNIX_EPOCH */ and still going */

fn lifetime_soup<'a>(x: &'a str, q: char) -> (&'a str, bool) {
    // The '"' char literal must not open a string state that would hide
    // real code from the linter (or swallow the rest of the file).
    (x, q == '"')
}

fn actual_code_after_all_of_the_above() -> u64 {
    7
}
