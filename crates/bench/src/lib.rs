//! # wheels-bench
//!
//! The reproduction harness. Two entry points:
//!
//! * `cargo run --release -p wheels-bench --bin repro -- <id|all>` —
//!   run the campaign (full scale by default) and print every table and
//!   figure of the paper. `repro all` emits the complete report used to
//!   fill EXPERIMENTS.md.
//! * `cargo bench -p wheels-bench` — criterion benches: component
//!   microbenchmarks, per-figure generation benches (reduced scale), and
//!   the ablation studies called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wheels_campaign::{
    Campaign, CampaignAborted, CampaignConfig, CampaignError, CampaignOutcome, CheckpointOptions,
    FaultProfile, ScenarioSpec,
};
use wheels_xcal::database::ConsolidatedDb;

/// Scale presets for the repro binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReproScale {
    /// Full 8-day campaign (the paper's scale).
    Full,
    /// ~1/4 density: same shape, faster.
    Quarter,
    /// Miniature: smoke-test the plumbing.
    Smoke,
}

impl ReproScale {
    /// The campaign config for this preset.
    pub fn config(self, seed: u64) -> CampaignConfig {
        let mut cfg = CampaignConfig::full(seed);
        match self {
            ReproScale::Full => {}
            ReproScale::Quarter => cfg.scale = 0.25,
            ReproScale::Smoke => {
                cfg.scale = 0.02;
                cfg.passive_tick_s = 10.0;
            }
        }
        cfg
    }
}

/// Run a campaign and return both the database and the campaign (for
/// route/Table-1 context).
pub fn run_campaign(scale: ReproScale, seed: u64) -> (Campaign, ConsolidatedDb) {
    run_campaign_jobs(scale, seed, 1)
}

/// [`run_campaign`] on `jobs` worker threads. Output is byte-identical
/// for every `jobs` value (see `tests/parallel_equivalence.rs`); only
/// wall-clock time changes.
pub fn run_campaign_jobs(scale: ReproScale, seed: u64, jobs: usize) -> (Campaign, ConsolidatedDb) {
    let campaign = Campaign::new(scale.config(seed));
    let db = campaign.run_jobs(jobs);
    (campaign, db)
}

/// Fault-injection knobs of the repro binary (`--fault-profile`,
/// `--max-retries`, `--fail-fast`).
#[derive(Debug, Clone, Copy)]
pub struct FaultOpts {
    /// Apparatus fault profile.
    pub profile: FaultProfile,
    /// Supervisor retry budget per unit.
    pub max_retries: u32,
    /// Abort the campaign on the first lost unit.
    pub fail_fast: bool,
}

impl Default for FaultOpts {
    fn default() -> Self {
        FaultOpts {
            profile: FaultProfile::None,
            max_retries: 2,
            fail_fast: false,
        }
    }
}

/// [`run_campaign_jobs`] under supervision: returns the dataset plus the
/// per-unit integrity report, or a [`CampaignAborted`] if `fail_fast` is
/// set and a unit was lost. With the default [`FaultOpts`] and no
/// `population` override, the dataset is byte-identical to
/// [`run_campaign_jobs`]. `population` maps to
/// [`wheels_campaign::CampaignConfig::population`]: `None`/`Some(0)` run
/// the strict fleetless paths, `Some(n)` drives the hidden load with `n`
/// seeded subscribers.
pub fn run_campaign_supervised(
    scale: ReproScale,
    seed: u64,
    jobs: usize,
    opts: FaultOpts,
    population: Option<u64>,
) -> Result<(Campaign, CampaignOutcome), CampaignAborted> {
    let mut cfg = scale.config(seed);
    cfg.fault_profile = opts.profile;
    cfg.max_retries = opts.max_retries;
    cfg.fail_fast = opts.fail_fast;
    cfg.population = population;
    let campaign = Campaign::new(cfg);
    let outcome = campaign.run_supervised_jobs(jobs)?;
    Ok((campaign, outcome))
}

/// [`run_campaign_supervised`] for a declarative scenario: the campaign
/// world (route, day plans, operator panel, server fleet, round-robin) is
/// compiled from `spec` instead of the hard-wired paper constructors.
/// With `ScenarioSpec::paper()` the dataset is byte-identical to
/// [`run_campaign_supervised`] at the same scale and seed.
pub fn run_scenario_supervised(
    spec: &ScenarioSpec,
    scale: ReproScale,
    seed: u64,
    jobs: usize,
    opts: FaultOpts,
    population: Option<u64>,
) -> Result<(Campaign, CampaignOutcome), CampaignAborted> {
    let mut cfg = scale.config(seed);
    cfg.fault_profile = opts.profile;
    cfg.max_retries = opts.max_retries;
    cfg.fail_fast = opts.fail_fast;
    cfg.population = population;
    let campaign = Campaign::from_spec(spec, cfg);
    let outcome = campaign.run_supervised_jobs(jobs)?;
    Ok((campaign, outcome))
}

/// [`run_campaign_supervised`] with durable per-unit checkpoints (the
/// direct paper-world path; see [`run_scenario_checkpointed`] for the
/// declarative-spec variant and the full durability contract).
pub fn run_campaign_checkpointed(
    scale: ReproScale,
    seed: u64,
    jobs: usize,
    fault_opts: FaultOpts,
    population: Option<u64>,
    opts: &CheckpointOptions,
) -> Result<(Campaign, CampaignOutcome), CampaignError> {
    let mut cfg = scale.config(seed);
    cfg.fault_profile = fault_opts.profile;
    cfg.max_retries = fault_opts.max_retries;
    cfg.fail_fast = fault_opts.fail_fast;
    cfg.population = population;
    let campaign = Campaign::new(cfg);
    let outcome = campaign.run_checkpointed_jobs(jobs, opts)?;
    Ok((campaign, outcome))
}

/// [`run_scenario_supervised`] with durable per-unit checkpoints — the
/// crash-safe entry point behind `repro --checkpoint-dir` / `--resume`.
/// A fresh run streams every completed unit to `opts.dir`; a resumed run
/// restores valid records, recomputes the rest, and returns an outcome
/// byte-identical to an uninterrupted run at the same `(spec, scale,
/// seed)`, at any `jobs` count.
pub fn run_scenario_checkpointed(
    spec: &ScenarioSpec,
    scale: ReproScale,
    seed: u64,
    jobs: usize,
    fault_opts: FaultOpts,
    population: Option<u64>,
    opts: &CheckpointOptions,
) -> Result<(Campaign, CampaignOutcome), CampaignError> {
    let mut cfg = scale.config(seed);
    cfg.fault_profile = fault_opts.profile;
    cfg.max_retries = fault_opts.max_retries;
    cfg.fail_fast = fault_opts.fail_fast;
    cfg.population = population;
    let campaign = Campaign::from_spec(spec, cfg);
    let outcome = campaign.run_checkpointed_jobs(jobs, opts)?;
    Ok((campaign, outcome))
}

/// The experiment ids the repro binary understands, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "fig9",
    "fig10", "table3", "fig11", "fig12", "table4", "table5", "fig13", "fig14", "fig15", "fig16",
];

/// Extension experiments beyond the paper's artifacts (run with
/// `repro ext-mptcp`, not included in `all`).
pub const EXTENSIONS: &[&str] = &["ext-mptcp", "ext-fleet"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs() {
        let (_c, db) = run_campaign(ReproScale::Smoke, 1);
        assert!(!db.records.is_empty());
    }

    #[test]
    fn supervised_default_opts_match_plain_run() {
        let (_c, db) = run_campaign(ReproScale::Smoke, 1);
        let (_c2, outcome) =
            run_campaign_supervised(ReproScale::Smoke, 1, 1, FaultOpts::default(), None)
                .expect("no faults, no abort");
        assert_eq!(db.records.len(), outcome.db.records.len());
        assert_eq!(outcome.integrity.lost_count(), 0);
        assert_eq!(outcome.integrity.degraded_count(), 0);
    }

    #[test]
    fn experiment_list_covers_every_artifact() {
        // 16 figures + 5 tables = 21 artifacts.
        assert_eq!(EXPERIMENTS.len(), 21);
    }
}
