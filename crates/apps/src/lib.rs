//! # wheels-apps
//!
//! The four "5G killer apps" the paper evaluates (§7):
//!
//! * [`ar`] / [`cav`] — the custom edge-assisted AR and CAV benchmark apps
//!   (§C.1): an Android app offloads camera frames / LIDAR point clouds to
//!   a GPU edge server running DNN object detection, best-effort, with and
//!   without frame compression. Configurations come verbatim from Table 4;
//!   object-detection accuracy from the Table 5 latency→mAP study.
//! * [`video`] — 360° video streaming (§D.1): Puffer-style server, 2 s
//!   chunks, {100, 50, 10, 5} Mbps ladder, BBA ABR, QoE per Yin et al.
//! * [`gaming`] — cloud gaming à la Steam Remote Play (§E.1): a bitrate
//!   adapter capped at 100 Mbps that protects frame rate at the cost of
//!   latency.
//!
//! This crate is substrate-agnostic: apps run over any [`AppLink`], which
//! the campaign implements with the RAN + RTT simulators, and the unit
//! tests implement synthetically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar;
pub mod cav;
pub mod config;
pub mod gaming;
pub mod map_table;
pub mod offload;
pub mod video;

pub use ar::ArApp;
pub use cav::CavApp;
pub use config::{OffloadConfig, AR_CONFIG, CAV_CONFIG};
pub use gaming::{GamingSession, GamingSummary};
pub use offload::{OffloadRun, OffloadSummary};
pub use video::{VideoSession, VideoSummary};

/// What an app observes about the network at an instant.
#[derive(Debug, Clone, Copy)]
pub struct LinkObs {
    /// Downlink goodput available to the app, Mbps.
    pub dl_mbps: f64,
    /// Uplink goodput available to the app, Mbps.
    pub ul_mbps: f64,
    /// Round-trip time, ms.
    pub rtt_ms: f64,
    /// Whether a handover interruption is in progress.
    pub in_handover: bool,
}

/// A time-varying network link an app runs over.
pub trait AppLink {
    /// Observe the link at absolute time `t_s` (seconds). Calls are made
    /// with non-decreasing `t_s`.
    fn sample(&mut self, t_s: f64) -> LinkObs;
}

/// A constant link, for tests and examples.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLink {
    /// The observation returned at every instant.
    pub obs: LinkObs,
}

impl AppLink for ConstantLink {
    fn sample(&mut self, _t_s: f64) -> LinkObs {
        self.obs
    }
}

impl ConstantLink {
    /// A comfortable static 5G link (edge server).
    pub fn good() -> Self {
        ConstantLink {
            obs: LinkObs {
                dl_mbps: 600.0,
                ul_mbps: 150.0,
                rtt_ms: 15.0,
                in_handover: false,
            },
        }
    }

    /// A struggling driving link.
    pub fn poor() -> Self {
        ConstantLink {
            obs: LinkObs {
                dl_mbps: 8.0,
                ul_mbps: 3.0,
                rtt_ms: 90.0,
                in_handover: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_link_is_constant() {
        let mut l = ConstantLink::good();
        let a = l.sample(0.0);
        let b = l.sample(100.0);
        assert_eq!(a.dl_mbps, b.dl_mbps);
        assert_eq!(a.rtt_ms, b.rtt_ms);
    }
}
