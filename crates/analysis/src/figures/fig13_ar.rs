//! Fig. 13 (Verizon) / Figs. 18-19 (all operators): the AR app.

use wheels_netsim::server::ServerKind;
use wheels_ran::operator::Operator;
use wheels_xcal::database::{TestKind, TestRecord};

use crate::ecdf::Ecdf;
use crate::index::AnalysisIndex;
use crate::render::{cdf_header, cdf_row};
use crate::stats::pearson;

/// One operator's AR results.
#[derive(Debug, Clone)]
pub struct OpArResults {
    /// Operator.
    pub op: Operator,
    /// Driving E2E latency per run (mean ms), with compression.
    pub e2e_compressed: Ecdf,
    /// Driving E2E latency per run, without compression.
    pub e2e_raw: Ecdf,
    /// Driving offloaded FPS per run (compressed runs).
    pub fps: Ecdf,
    /// Driving mAP per run (compressed runs).
    pub map: Ecdf,
    /// Best static E2E (compressed), ms.
    pub best_static_e2e: Option<f64>,
    /// Best static mAP (compressed).
    pub best_static_map: Option<f64>,
    /// (frac hs5G, mAP, server kind) scatter (compressed driving runs).
    pub map_vs_hs5g: Vec<(f64, f64, ServerKind)>,
    /// Pearson r between handovers-per-run and mAP.
    pub ho_map_corr: f64,
}

/// Fig. 13 data for all operators.
#[derive(Debug, Clone)]
pub struct ArResults {
    /// Per-operator results.
    pub per_op: Vec<OpArResults>,
}

fn runs<'a>(
    ix: &'a AnalysisIndex<'a>,
    op: Operator,
    is_static: bool,
) -> impl Iterator<Item = &'a TestRecord> + 'a {
    ix.records(op, TestKind::AppAr, is_static)
}

fn metric<'a>(
    it: impl Iterator<Item = &'a TestRecord> + 'a,
    compressed: bool,
    f: impl Fn(&wheels_xcal::database::AppMetrics) -> Option<f32> + 'a,
) -> impl Iterator<Item = f64> + 'a {
    it.filter_map(move |r| {
        let a = r.app.as_ref()?;
        if a.compressed != Some(compressed) {
            return None;
        }
        f(a).map(f64::from)
    })
}

/// Compute AR results from the index's record partitions.
pub fn compute(ix: &AnalysisIndex<'_>) -> ArResults {
    let per_op = ix
        .ops()
        .iter()
        .map(|&op| {
            let e2e_compressed = Ecdf::new(metric(runs(ix, op, false), true, |a| a.e2e_ms_mean));
            let e2e_raw = Ecdf::new(metric(runs(ix, op, false), false, |a| a.e2e_ms_mean));
            let fps = Ecdf::new(metric(runs(ix, op, false), true, |a| a.offload_fps));
            let map = Ecdf::new(metric(runs(ix, op, false), true, |a| a.map_accuracy));
            let best_static_e2e = metric(runs(ix, op, true), true, |a| a.e2e_ms_mean)
                .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.min(v))));
            let best_static_map = metric(runs(ix, op, true), true, |a| a.map_accuracy)
                .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))));
            let map_vs_hs5g: Vec<(f64, f64, ServerKind)> = runs(ix, op, false)
                .filter_map(|r| {
                    let a = r.app.as_ref()?;
                    if a.compressed != Some(true) {
                        return None;
                    }
                    Some((
                        r.frac_hs5g as f64,
                        a.map_accuracy? as f64,
                        r.server_kind,
                    ))
                })
                .collect();
            let pairs: Vec<(f64, f64)> = runs(ix, op, false)
                .filter_map(|r| {
                    let a = r.app.as_ref()?;
                    if a.compressed != Some(true) {
                        return None;
                    }
                    Some((r.handovers.len() as f64, a.map_accuracy? as f64))
                })
                .collect();
            let ho_map_corr = pearson(
                &pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
                &pairs.iter().map(|p| p.1).collect::<Vec<_>>(),
            );
            OpArResults {
                op,
                e2e_compressed,
                e2e_raw,
                fps,
                map,
                best_static_e2e,
                best_static_map,
                map_vs_hs5g,
                ho_map_corr,
            }
        })
        .collect();
    ArResults { per_op }
}

impl ArResults {
    /// Results for one operator.
    pub fn for_op(&self, op: Operator) -> &OpArResults {
        self.per_op
            .iter()
            .find(|p| p.op == op)
            .expect("all operators computed")
    }

    /// Render the figure.
    pub fn render(&self) -> String {
        let mut out = cdf_header("Fig. 13/18/19 — AR app (per run)");
        out.push('\n');
        for p in &self.per_op {
            out.push_str(&cdf_row(&format!("{} E2E comp (ms)", p.op.code()), &p.e2e_compressed));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} E2E raw (ms)", p.op.code()), &p.e2e_raw));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} offload FPS", p.op.code()), &p.fps));
            out.push('\n');
            out.push_str(&cdf_row(&format!("{} mAP (%)", p.op.code()), &p.map));
            out.push('\n');
            out.push_str(&format!(
                "  {} best static: E2E {:?} ms, mAP {:?} | r(HOs, mAP) = {:+.2}\n",
                p.op.code(),
                p.best_static_e2e.map(|v| v.round()),
                p.best_static_map.map(|v| (v * 10.0).round() / 10.0),
                p.ho_map_corr
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::small_ix;

    #[test]
    fn driving_e2e_well_above_best_static() {
        // §7.1.1: driving median E2E 214 ms ≈ 3× the 68 ms best static.
        let f = compute(small_ix());
        let p = f.for_op(Operator::Verizon);
        if let Some(best) = p.best_static_e2e {
            assert!(
                p.e2e_compressed.median() > 1.5 * best,
                "driving {} vs static {}",
                p.e2e_compressed.median(),
                best
            );
        }
    }

    #[test]
    fn compression_reduces_e2e() {
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.e2e_compressed.len() < 10 || p.e2e_raw.len() < 10 {
                continue;
            }
            assert!(
                p.e2e_compressed.median() < p.e2e_raw.median(),
                "{op}: comp {} vs raw {}",
                p.e2e_compressed.median(),
                p.e2e_raw.median()
            );
        }
    }

    #[test]
    fn map_capped_by_table5_and_degraded_driving() {
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.map.is_empty() {
                continue;
            }
            assert!(p.map.max() <= 38.46, "{op}: max mAP {}", p.map.max());
            assert!(p.map.median() < 36.5, "{op}: median mAP {}", p.map.median());
        }
    }

    #[test]
    fn handovers_do_not_correlate_with_map() {
        // §7.1.1 obs (3).
        let f = compute(small_ix());
        for op in Operator::ALL {
            let p = f.for_op(op);
            if p.map.len() < 30 {
                continue; // too few runs for a stable r at fixture scale
            }
            let r = p.ho_map_corr;
            assert!(r.abs() < 0.5, "{op}: r = {r}");
        }
    }

    #[test]
    fn verizon_leads_on_e2e() {
        // §C.3: Verizon's lower RTT gives the lowest E2E with compression.
        let f = compute(small_ix());
        let v = f.for_op(Operator::Verizon).e2e_compressed.median();
        let t = f.for_op(Operator::TMobile).e2e_compressed.median();
        if v > 0.0 && t > 0.0 {
            assert!(v < t * 1.4, "V {v} vs T {t}");
        }
    }
}
