//! Fig. 1: the two coverage-logging approaches disagree.
//!
//! The passive handover-logger (38-byte pings) sees mostly LTE/LTE-A; the
//! XCAL logs during backlogged tests see real 5G coverage. §4.1's lesson:
//! *"passive approaches that simply log the cellular network state in the
//! absence of heavy traffic are not reliable."*

use wheels_radio::band::Technology;
use wheels_ran::operator::Operator;
use wheels_xcal::database::ConsolidatedDb;

use super::{share_5g, tech_shares};
use crate::render::share_bar;

/// Distance-weighted technology shares, one entry per technology.
pub type Shares = [(Technology, f64); 5];

/// Per-operator comparison of the two coverage views.
#[derive(Debug, Clone)]
pub struct CoverageViews {
    /// (operator, passive shares, active shares) per operator.
    pub per_op: Vec<(Operator, Shares, Shares)>,
}

/// Compute both views for all operators.
pub fn compute(db: &ConsolidatedDb) -> CoverageViews {
    let per_op = Operator::ALL
        .iter()
        .map(|&op| {
            let passive = db
                .passive_for(op)
                .map(|p| p.tech_shares())
                .unwrap_or([(Technology::Lte, 0.0); 5]);
            let active = tech_shares(
                db.records
                    .iter()
                    .filter(|r| r.op == op && !r.is_static)
                    .flat_map(|r| r.kpi.iter()),
            );
            (op, passive, active)
        })
        .collect();
    CoverageViews { per_op }
}

impl CoverageViews {
    /// 5G share seen passively vs actively for one operator.
    pub fn gap_for(&self, op: Operator) -> Option<(f64, f64)> {
        self.per_op
            .iter()
            .find(|(o, _, _)| *o == op)
            .map(|(_, p, a)| (share_5g(p), share_5g(a)))
    }

    /// Render in the paper's per-operator layout.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fig. 1 — coverage: passive handover-logger vs XCAL during tests\n",
        );
        for (op, passive, active) in &self.per_op {
            let shares: Vec<(&str, f64)> =
                passive.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(&format!("{op} passive"), &shares));
            out.push('\n');
            let shares: Vec<(&str, f64)> = active.iter().map(|(t, f)| (t.label(), *f)).collect();
            out.push_str(&share_bar(&format!("{op} active"), &shares));
            out.push('\n');
            out.push_str(&format!(
                "  -> 5G share: passive {:.1}% vs active {:.1}%\n",
                share_5g(passive) * 100.0,
                share_5g(active) * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::test_support::network_db as small_db;

    #[test]
    fn passive_view_is_pessimistic() {
        let db = small_db();
        let v = compute(db);
        for op in Operator::ALL {
            let (passive, active) = v.gap_for(op).expect("all ops present");
            assert!(
                passive < active + 0.05,
                "{op}: passive {passive} should be below active {active}"
            );
        }
    }

    #[test]
    fn att_passive_essentially_4g_only() {
        // Fig. 1d: AT&T's handover-logger saw only LTE/LTE-A.
        let db = small_db();
        let (passive, _) = compute(db).gap_for(Operator::Att).unwrap();
        assert!(passive < 0.08, "AT&T passive 5G share {passive}");
    }

    #[test]
    fn render_mentions_all_operators() {
        let db = small_db();
        let r = compute(db).render();
        for op in Operator::ALL {
            assert!(r.contains(op.label()));
        }
    }
}
