//! Per-unit data-completeness accounting.
//!
//! The paper's campaign lost data — probes crashed, servers went dark,
//! sessions aborted — and its analysis accounts for the gaps. This module
//! is the simulated analogue: every work unit ends the campaign with a
//! [`UnitReport`] saying whether it ran clean, ran [`UnitStatus::Degraded`]
//! (completed, but the injected apparatus fault cost it records or KPI
//! samples), or was [`UnitStatus::Lost`] outright after the supervisor's
//! retries were exhausted. The collected [`IntegrityReport`] is exported
//! alongside the dataset JSON and is deterministic: unit order is the
//! canonical schedule order and every field derives from
//! `(config, seed)`, so sequential and parallel runs emit identical
//! reports byte for byte.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Why one attempt at a work unit produced no shard.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// The measurement endpoint was unreachable; the test suite aborted.
    ServerUnreachable {
        /// How long the endpoint stayed dark, simulated seconds.
        outage_s: f64,
    },
    /// The unit overran its time budget and the supervisor killed it.
    TimeoutOverrun {
        /// Seconds past the budget when it was killed.
        overrun_s: f64,
    },
    /// The worker panicked inside the unit (caught at the unit boundary,
    /// never allowed to take down the campaign).
    Panicked {
        /// The panic payload, if it carried a message.
        message: String,
    },
    /// The unit's result slot was empty after execution — the unit was
    /// never run or its worker died before storing a result.
    MissingSlot,
}

impl UnitError {
    /// Short kebab-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            UnitError::ServerUnreachable { .. } => "server-unreachable",
            UnitError::TimeoutOverrun { .. } => "timeout-overrun",
            UnitError::Panicked { .. } => "panicked",
            UnitError::MissingSlot => "missing-slot",
        }
    }
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::ServerUnreachable { outage_s } => {
                write!(f, "server unreachable ({outage_s:.1} s outage)")
            }
            UnitError::TimeoutOverrun { overrun_s } => {
                write!(f, "killed {overrun_s:.1} s past its time budget")
            }
            UnitError::Panicked { message } => write!(f, "worker panicked: {message}"),
            UnitError::MissingSlot => write!(f, "result slot empty after execution"),
        }
    }
}

impl std::error::Error for UnitError {}

/// How one work unit ended the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitStatus {
    /// Completed with its full payload.
    Ok,
    /// Completed, but an injected fault cost it data (lost records,
    /// truncated KPI streams, or dropped passive samples).
    Degraded,
    /// Produced no data: every attempt failed.
    Lost,
}

/// One unit's completeness record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitReport {
    /// Human-readable unit key, e.g. `drive/Verizon/day3`.
    pub unit: String,
    /// Final status.
    pub status: UnitStatus,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Labels of every fault injected across the attempts, in order.
    pub faults: Vec<String>,
    /// Test records that survived.
    pub records_kept: usize,
    /// Test records lost whole (probe dead before they started, or
    /// modem detached across their slot).
    pub records_lost: usize,
    /// KPI samples truncated out of surviving records.
    pub kpi_samples_lost: usize,
    /// `kpi_samples_lost` over all KPI samples the surviving records
    /// originally held (0 when nothing was truncated).
    pub truncated_kpi_frac: f64,
    /// Passive-logger samples lost (passive units only).
    pub passive_samples_lost: usize,
    /// Total simulated backoff the supervisor charged before retries.
    pub backoff_s: f64,
    /// Terminal error, for `Lost` units.
    pub error: Option<String>,
}

impl UnitReport {
    /// A fresh report for a unit that has not run yet.
    pub fn new(unit: String) -> Self {
        UnitReport {
            unit,
            status: UnitStatus::Lost,
            attempts: 0,
            faults: Vec::new(),
            records_kept: 0,
            records_lost: 0,
            kpi_samples_lost: 0,
            truncated_kpi_frac: 0.0,
            passive_samples_lost: 0,
            backoff_s: 0.0,
            error: None,
        }
    }

    /// True if any data went missing (whole records, KPI samples, or
    /// passive samples).
    pub fn lost_anything(&self) -> bool {
        self.records_lost > 0 || self.kpi_samples_lost > 0 || self.passive_samples_lost > 0
    }
}

/// What a `--resume` run found in the checkpoint log: how much work it
/// restored versus recomputed, and how many records it had to reject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResumeReport {
    /// Units restored from valid checkpoint records (not re-run).
    pub restored_units: usize,
    /// Units recomputed because no valid record covered them.
    pub recomputed_units: usize,
    /// Checkpoint records rejected as corrupt (torn frame, digest
    /// mismatch, undecodable payload); their units were recomputed.
    pub corrupt_records: usize,
    /// Byte-valid records stamped with a different world/seed/scale;
    /// ignored.
    pub foreign_records: usize,
    /// One human-readable note per rejected record, scan order.
    pub notes: Vec<String>,
}

impl ResumeReport {
    /// True if the scan rejected anything — the signal worth surfacing in
    /// the exported integrity report.
    pub fn saw_damage(&self) -> bool {
        self.corrupt_records > 0 || self.foreign_records > 0
    }
}

/// The campaign-wide completeness report, one entry per scheduled unit in
/// canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityReport {
    /// Fault profile the campaign ran under.
    pub profile: String,
    /// Campaign seed.
    pub seed: u64,
    /// Retry budget per unit.
    pub max_retries: u32,
    /// Per-unit reports, in canonical schedule order.
    pub units: Vec<UnitReport>,
    /// Resume accounting, present **only** when a `--resume` run rejected
    /// corrupt or foreign checkpoint records. A clean resume leaves this
    /// `None` so its exported report stays byte-identical to an
    /// uninterrupted run's — the determinism gates `cmp` these files.
    pub resume: Option<ResumeReport>,
}

// Hand-written (de)serialization: the vendored serde_derive has no
// `#[serde(skip_serializing_if)]`, and the `resume` field must vanish
// from the JSON entirely when `None` — emitting `"resume": null` would
// break byte-compatibility with every report written before this field
// existed and with the uninterrupted-run goldens.
impl Serialize for IntegrityReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("profile".to_string(), self.profile.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("max_retries".to_string(), self.max_retries.to_value()),
            ("units".to_string(), self.units.to_value()),
        ];
        if let Some(resume) = &self.resume {
            fields.push(("resume".to_string(), resume.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for IntegrityReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(IntegrityReport {
            profile: serde::de::field(v, "profile")?,
            seed: serde::de::field(v, "seed")?,
            max_retries: serde::de::field(v, "max_retries")?,
            units: serde::de::field(v, "units")?,
            // Missing deserializes as `None`: pre-checkpoint reports load.
            resume: serde::de::field(v, "resume")?,
        })
    }
}

impl IntegrityReport {
    /// Units that completed clean.
    pub fn ok_count(&self) -> usize {
        self.count(UnitStatus::Ok)
    }

    /// Units that completed with data loss.
    pub fn degraded_count(&self) -> usize {
        self.count(UnitStatus::Degraded)
    }

    /// Units that produced nothing.
    pub fn lost_count(&self) -> usize {
        self.count(UnitStatus::Lost)
    }

    fn count(&self, status: UnitStatus) -> usize {
        self.units.iter().filter(|u| u.status == status).count()
    }

    /// Total test records lost across the campaign (whole-record losses
    /// only; truncation is tracked per unit).
    pub fn records_lost(&self) -> usize {
        self.units.iter().map(|u| u.records_lost).sum()
    }

    /// Total retries the supervisor spent.
    pub fn total_retries(&self) -> u32 {
        self.units.iter().map(|u| u.attempts.saturating_sub(1)).sum()
    }

    /// One-line human summary for progress logs.
    pub fn summary(&self) -> String {
        format!(
            "integrity [{}]: {} units — {} ok, {} degraded, {} lost; {} records lost, {} retries",
            self.profile,
            self.units.len(),
            self.ok_count(),
            self.degraded_count(),
            self.lost_count(),
            self.records_lost(),
            self.total_retries(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(status: UnitStatus, records_lost: usize, attempts: u32) -> UnitReport {
        UnitReport {
            status,
            records_lost,
            attempts,
            ..UnitReport::new("drive/Verizon/day0".into())
        }
    }

    #[test]
    fn counts_by_status() {
        let r = IntegrityReport {
            profile: "harsh".into(),
            seed: 42,
            max_retries: 2,
            units: vec![
                unit(UnitStatus::Ok, 0, 1),
                unit(UnitStatus::Degraded, 3, 1),
                unit(UnitStatus::Lost, 0, 3),
                unit(UnitStatus::Ok, 0, 2),
            ],
            resume: None,
        };
        assert_eq!(r.ok_count(), 2);
        assert_eq!(r.degraded_count(), 1);
        assert_eq!(r.lost_count(), 1);
        assert_eq!(r.records_lost(), 3);
        assert_eq!(r.total_retries(), 3);
        let s = r.summary();
        assert!(s.contains("4 units"), "{s}");
        assert!(s.contains("1 lost"), "{s}");
    }

    #[test]
    fn fresh_report_is_a_lost_unit_until_proven_otherwise() {
        let u = UnitReport::new("passive/Att".into());
        assert_eq!(u.status, UnitStatus::Lost);
        assert_eq!(u.attempts, 0);
        assert!(!u.lost_anything());
    }

    #[test]
    fn errors_render_their_cause() {
        let e = UnitError::ServerUnreachable { outage_s: 120.0 };
        assert!(e.to_string().contains("120.0"));
        assert_eq!(e.label(), "server-unreachable");
        assert_eq!(UnitError::MissingSlot.label(), "missing-slot");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = IntegrityReport {
            profile: "paper".into(),
            seed: 7,
            max_retries: 1,
            units: vec![unit(UnitStatus::Degraded, 2, 2)],
            resume: None,
        };
        let j = serde_json::to_string_pretty(&r).unwrap();
        let back: IntegrityReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn resume_field_is_absent_when_none_and_roundtrips_when_some() {
        let mut r = IntegrityReport {
            profile: "none".into(),
            seed: 11,
            max_retries: 2,
            units: vec![unit(UnitStatus::Ok, 0, 1)],
            resume: None,
        };
        let clean = serde_json::to_string_pretty(&r).unwrap();
        assert!(
            !clean.contains("resume"),
            "clean reports must not change shape: {clean}"
        );

        r.resume = Some(ResumeReport {
            restored_units: 3,
            recomputed_units: 2,
            corrupt_records: 1,
            foreign_records: 0,
            notes: vec!["digest mismatch at byte 72".into()],
        });
        assert!(r.resume.as_ref().unwrap().saw_damage());
        let j = serde_json::to_string_pretty(&r).unwrap();
        assert!(j.contains("\"corrupt_records\": 1"), "{j}");
        let back: IntegrityReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn pre_checkpoint_reports_still_deserialize() {
        // A report written before the `resume` field existed.
        let legacy = r#"{"profile":"paper","seed":7,"max_retries":1,"units":[]}"#;
        let back: IntegrityReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.resume, None);
        assert_eq!(back.seed, 7);
    }
}
