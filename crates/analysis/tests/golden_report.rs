//! Golden-report equivalence: the full `repro all`-style report at smoke
//! scale must match a committed snapshot byte-for-byte, and the parallel
//! generator must agree with the sequential one.
//!
//! Regenerate the snapshots after an intentional output change with
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p wheels-analysis --test golden_report
//! ```
//!
//! and commit the updated files under `tests/golden/`.

use wheels_analysis::{report, AnalysisIndex};
use wheels_campaign::{Campaign, CampaignConfig};

/// Smoke-scale campaign (mirrors `ReproScale::Smoke` in wheels-bench,
/// which this crate cannot depend on).
fn smoke_campaign(seed: u64) -> Campaign {
    let mut cfg = CampaignConfig::full(seed);
    cfg.scale = 0.02;
    cfg.passive_tick_s = 10.0;
    Campaign::new(cfg)
}

fn check_seed(seed: u64) {
    let campaign = smoke_campaign(seed);
    let db = campaign.run();
    let ix = AnalysisIndex::build(&db);
    let route = campaign.plan().route();

    let sequential = report::generate_jobs(&ix, route, 1);
    for jobs in [4, 19] {
        assert_eq!(
            sequential,
            report::generate_jobs(&ix, route, jobs),
            "seed {seed}: parallel report differs at {jobs} jobs"
        );
    }

    let golden_path = format!(
        "{}/tests/golden/report_smoke_seed{seed}.md",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&golden_path, &sequential).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {golden_path}: {e} (run with GOLDEN_REGEN=1 to create)"));
    assert_eq!(
        sequential, golden,
        "seed {seed}: report drifted from committed snapshot; if the change \
         is intentional, regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn golden_report_seed_11() {
    check_seed(11);
}

#[test]
fn golden_report_seed_42() {
    check_seed(42);
}
