//! Table 1: driving dataset statistics.

use wheels_geo::cities::{major_cities, states_crossed};
use wheels_geo::route::Route;
use wheels_geo::timezone::Timezone;
use wheels_ran::operator::Operator;
use wheels_xcal::database::{ConsolidatedDb, TestKind};

/// The dataset statistics of Table 1, computed from a campaign run.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Total geographic distance, km.
    pub distance_km: f64,
    /// States / major cities / counties-equivalent (we report waypoint
    /// towns) crossed.
    pub states: usize,
    /// Major cities on the route.
    pub major_cities: usize,
    /// Timezones crossed.
    pub timezones: usize,
    /// Unique cells connected per operator (V, T, A).
    pub unique_cells: [usize; 3],
    /// Handovers per operator (V, T, A) — from the passive loggers, like
    /// the paper's Table 1.
    pub handovers: [usize; 3],
    /// Total data received across tests, GB.
    pub rx_gb: f64,
    /// Total data transmitted across tests, GB.
    pub tx_gb: f64,
    /// Cumulative experiment runtime per operator (V, T, A), minutes.
    pub runtime_min: [f64; 3],
}

impl Table1 {
    /// Compute the table from a campaign database and route.
    pub fn compute(db: &ConsolidatedDb, route: &Route) -> Self {
        let mut unique_cells = [0usize; 3];
        let mut handovers = [0usize; 3];
        let mut runtime_min = [0f64; 3];
        let mut rx_bytes = 0f64;
        let mut tx_bytes = 0f64;
        for (i, &op) in Operator::ALL.iter().enumerate() {
            unique_cells[i] = db.unique_cells(op);
            handovers[i] = db
                .passive_for(op)
                .map(|p| p.cell_changes())
                .unwrap_or_else(|| db.handover_count(op));
            runtime_min[i] = db
                .records
                .iter()
                .filter(|r| r.op == op)
                .map(|r| r.duration_s)
                .sum::<f64>()
                / 60.0;
        }
        for r in &db.records {
            let bytes: f64 = r
                .tput_samples()
                .map(|mbps| mbps * 1e6 / 8.0 * 0.5)
                .sum();
            match r.kind {
                TestKind::ThroughputDl => rx_bytes += bytes,
                TestKind::ThroughputUl => tx_bytes += bytes,
                TestKind::AppVideo => {
                    if let Some(app) = &r.app {
                        if let Some(b) = app.avg_bitrate_mbps {
                            rx_bytes += b as f64 * 1e6 / 8.0 * r.duration_s;
                        }
                    }
                }
                TestKind::AppGaming => {
                    if let Some(app) = &r.app {
                        if let Some(b) = app.send_bitrate_mbps {
                            rx_bytes += b as f64 * 1e6 / 8.0 * r.duration_s;
                        }
                    }
                }
                TestKind::AppAr | TestKind::AppCav => {
                    if let Some(app) = &r.app {
                        if let (Some(fps), Some(compressed)) = (app.offload_fps, app.compressed) {
                            let cfg = if r.kind == TestKind::AppAr {
                                wheels_apps::AR_CONFIG
                            } else {
                                wheels_apps::CAV_CONFIG
                            };
                            tx_bytes +=
                                fps as f64 * r.duration_s * cfg.frame_bytes(compressed);
                        }
                    }
                }
                TestKind::Rtt => {}
            }
        }
        Table1 {
            distance_km: route.total_m() / 1_000.0,
            states: states_crossed(),
            major_cities: major_cities().count(),
            timezones: Timezone::ALL.len(),
            unique_cells,
            handovers,
            rx_gb: rx_bytes / 1e9,
            tx_gb: tx_bytes / 1e9,
            runtime_min,
        }
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        format!(
            "Total geographical distance travelled | {:.0} km\n\
             States/major cities traveled          | {}/{}\n\
             Timezones traveled                    | {}\n\
             Operators                             | Verizon (V), T-Mobile (T), AT&T (A)\n\
             # of unique cells connected           | {} (V), {} (T), {} (A)\n\
             # of handovers                        | {} (V), {} (T), {} (A)\n\
             Total cellular data used              | {:.1} GB (Rx), {:.1} GB (Tx)\n\
             Cumulative experiment runtime         | {:.0} min (V), {:.0} min (T), {:.0} min (A)\n",
            self.distance_km,
            self.states,
            self.major_cities,
            self.timezones,
            self.unique_cells[0],
            self.unique_cells[1],
            self.unique_cells[2],
            self.handovers[0],
            self.handovers[1],
            self.handovers[2],
            self.rx_gb,
            self.tx_gb,
            self.runtime_min[0],
            self.runtime_min[1],
            self.runtime_min[2],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CampaignConfig;
    use crate::runner::Campaign;

    #[test]
    fn table1_from_tiny_campaign() {
        let mut cfg = CampaignConfig::quick_network_only(5);
        cfg.scale = 0.01;
        cfg.run_static = false;
        cfg.passive_tick_s = 20.0;
        let campaign = Campaign::new(cfg);
        let db = campaign.run();
        let t1 = Table1::compute(&db, campaign.plan().route());
        assert!((t1.distance_km - 5_711.0).abs() < 2.0);
        assert_eq!(t1.major_cities, 10);
        assert_eq!(t1.timezones, 4);
        assert!(t1.rx_gb > 0.0);
        assert!(t1.tx_gb > 0.0);
        assert!(t1.unique_cells.iter().all(|&c| c > 0));
        let rendered = t1.render();
        assert!(rendered.contains("5711 km"));
        assert!(rendered.contains("Verizon (V)"));
    }
}
