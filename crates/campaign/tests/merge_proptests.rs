//! Property tests for the shard merge: whatever the per-unit shards
//! contain, the merged database must come out canonically ordered.

use proptest::prelude::*;

use wheels_campaign::{merge_shard_slots, merge_shards, Shard};
use wheels_geo::timezone::Timezone;
use wheels_netsim::server::ServerKind;
use wheels_ran::operator::Operator;
use wheels_xcal::database::{TestKind, TestRecord};
use wheels_xcal::handover_logger::PassiveLogger;

fn record(local_id: u32, start_s: f64, op: Operator) -> TestRecord {
    TestRecord {
        id: local_id,
        op,
        kind: TestKind::Rtt,
        start_s,
        duration_s: 20.0,
        server_kind: ServerKind::Cloud,
        server_name: "us-west".to_string(),
        is_static: false,
        start_odometer_m: 0.0,
        end_odometer_m: 0.0,
        timezone: Timezone::Pacific,
        frac_hs5g: 0.0,
        kpi: Vec::new(),
        rtt_ms: Vec::new(),
        handovers: Vec::new(),
        app: None,
    }
}

/// Shards as the executor produces them: each with shard-local ids 0..n
/// and any start times (units overlap in time by construction).
fn arb_shards() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(0.0f64..700_000.0, 0..20),
        0..8,
    )
}

/// Timestamps as an adversary (or a corrupted fault-injected shard) could
/// produce them: finite values mixed with NaN and both infinities.
fn arb_time() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..700_000.0,
        -1e9f64..1e9,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

/// Supervised slot vectors: `None` is a lost unit's missing shard.
fn arb_slots() -> impl Strategy<Value = Vec<Option<Vec<f64>>>> {
    prop::collection::vec(
        prop::option::of(prop::collection::vec(arb_time(), 0..15)),
        0..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_reassigns_strictly_increasing_ids(start_times in arb_shards()) {
        let total: usize = start_times.iter().map(Vec::len).sum();
        let shards: Vec<Shard> = start_times
            .iter()
            .map(|times| Shard {
                records: times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| record(i as u32, t, Operator::ALL[i % 3]))
                    .collect(),
                passive: None,
                fleet: None,
            })
            .collect();
        let db = merge_shards(shards);

        // Count is conserved: merge drops and invents nothing.
        prop_assert_eq!(db.records.len(), total);
        // Ids are exactly 0..n in final order — strictly increasing.
        for (i, r) in db.records.iter().enumerate() {
            prop_assert_eq!(r.id, i as u32);
        }
        // Final order is time-sorted.
        for pair in db.records.windows(2) {
            prop_assert!(pair[0].start_s <= pair[1].start_s);
        }
    }

    #[test]
    fn merge_is_stable_for_equal_start_times(n_shards in 1usize..6, per_shard in 1usize..10) {
        // All records share one start time: the tie-break is shard
        // (canonical unit) order, so operators must appear in shard order.
        let shards: Vec<Shard> = (0..n_shards)
            .map(|s| Shard {
                records: (0..per_shard)
                    .map(|i| record(i as u32, 1_000.0, Operator::ALL[s % 3]))
                    .collect(),
                passive: None,
                fleet: None,
            })
            .collect();
        let db = merge_shards(shards);
        let expected: Vec<Operator> = (0..n_shards)
            .flat_map(|s| std::iter::repeat(Operator::ALL[s % 3]).take(per_shard))
            .collect();
        let got: Vec<Operator> = db.records.iter().map(|r| r.op).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn merge_is_total_under_non_finite_times_and_missing_shards(slots in arb_slots()) {
        // The merge must never panic, lose records, or emit unstable
        // output — whatever the timestamps and however many shards were
        // lost to faults. `total_cmp` makes the sort total; `None` slots
        // contribute nothing.
        let total: usize = slots.iter().flatten().map(Vec::len).sum();
        let build = |slots: &Vec<Option<Vec<f64>>>| -> Vec<Option<Shard>> {
            slots
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|times| Shard {
                        records: times
                            .iter()
                            .enumerate()
                            .map(|(i, &t)| record(i as u32, t, Operator::ALL[i % 3]))
                            .collect(),
                        passive: None,
                        fleet: None,
                    })
                })
                .collect()
        };
        let db = merge_shard_slots(build(&slots));
        // Total: every surviving record is there, ids reassigned 0..n.
        prop_assert_eq!(db.records.len(), total);
        for (i, r) in db.records.iter().enumerate() {
            prop_assert_eq!(r.id, i as u32);
        }
        // Finite prefix is sorted (total_cmp order: NaN sorts above
        // +inf, so finite values stay mutually ordered).
        for pair in db.records.windows(2) {
            if pair[0].start_s.is_finite() && pair[1].start_s.is_finite() {
                prop_assert!(pair[0].start_s <= pair[1].start_s);
            }
        }
        // Stable: a second merge of identical input gives identical order.
        let again = merge_shard_slots(build(&slots));
        let a: Vec<(u32, Operator)> = db.records.iter().map(|r| (r.id, r.op)).collect();
        let b: Vec<(u32, Operator)> = again.records.iter().map(|r| (r.id, r.op)).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn merge_keeps_passive_unit_order(present in prop::collection::vec(any::<bool>(), 3..4)) {
        // Passive shards arrive in operator order; merge must not permute.
        let shards: Vec<Shard> = Operator::ALL
            .iter()
            .zip(&present)
            .filter(|(_, &p)| p)
            .map(|(&op, _)| Shard {
                records: Vec::new(),
                passive: Some((op, PassiveLogger::new())),
                fleet: None,
            })
            .collect();
        let expected: Vec<Operator> = Operator::ALL
            .iter()
            .zip(&present)
            .filter(|(_, &p)| p)
            .map(|(&op, _)| op)
            .collect();
        let db = merge_shards(shards);
        let got: Vec<Operator> = db.passive.iter().map(|(op, _)| *op).collect();
        prop_assert_eq!(got, expected);
    }
}
