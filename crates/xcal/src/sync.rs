//! Log synchronization: matching app-layer logs to XCAL logs across
//! timestamp formats.
//!
//! §B: *"Some applications logged timestamps in UTC and others in local
//! time. On the other hand, XCAL saved the log files (.drm files) with
//! local timestamps in the filenames, whereas their contents had timestamps
//! in EDT. This made it difficult to match a corresponding app layer log
//! file with its XCAL counterpart. Crossing different timezones throughout
//! the trip further increased the complexity."*
//!
//! [`match_logs`] implements the correct procedure: normalize every
//! timestamp to plan time via its *declared* format, then pair each app log
//! with the nearest XCAL log within a tolerance. The tests also demonstrate
//! the failure mode of naive matching (using the filename stamp as if it
//! were EDT), which mis-pairs logs recorded west of the Eastern timezone.

use wheels_geo::timezone::Timezone;
use wheels_ran::operator::Operator;

use crate::logger::XcalLog;
use crate::timestamp::Timestamp;

/// Timestamp format an app declared for its log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStampFormat {
    /// The app logged UTC strings.
    Utc,
    /// The app logged local-time strings (with the timezone it was in).
    Local(Timezone),
}

/// An application-layer log file to be matched with its XCAL counterpart.
#[derive(Debug, Clone)]
pub struct AppLog {
    /// App name (for diagnostics).
    pub app: &'static str,
    /// Which phone (operator) produced the log — the three phones run the
    /// same schedule, so time alone is ambiguous across operators.
    pub op: Operator,
    /// Start-time string as the app wrote it.
    pub start_stamp: String,
    /// The format the string is in.
    pub format: AppStampFormat,
}

impl AppLog {
    /// Create an app log record for a test that started at `plan_s`.
    pub fn stamped(app: &'static str, op: Operator, plan_s: f64, format: AppStampFormat) -> Self {
        let ts = Timestamp::from_plan_s(plan_s);
        let start_stamp = match format {
            AppStampFormat::Utc => ts.as_utc().to_string(),
            AppStampFormat::Local(tz) => ts.as_local(tz).to_string(),
        };
        AppLog {
            app,
            op,
            start_stamp,
            format,
        }
    }

    /// Recover the plan time from the stamp using the declared format.
    pub fn plan_s(&self) -> Option<f64> {
        let ts = match self.format {
            AppStampFormat::Utc => Timestamp::parse_utc(&self.start_stamp)?,
            AppStampFormat::Local(tz) => Timestamp::parse_local(&self.start_stamp, tz)?,
        };
        Some(ts.plan_s)
    }
}

/// Maximum start-time gap for a valid pairing, seconds. Tests are minutes
/// apart, so ±30 s is unambiguous.
pub const MATCH_TOLERANCE_S: f64 = 30.0;

/// Match each app log to the index of its XCAL log by normalized start
/// time. Returns `None` for app logs with no XCAL log within tolerance.
pub fn match_logs(app_logs: &[AppLog], xcal_logs: &[XcalLog]) -> Vec<Option<usize>> {
    // Normalize XCAL starts from their *contents* (EDT), the reliable field.
    let xcal_starts: Vec<Option<f64>> = xcal_logs
        .iter()
        .map(|x| Timestamp::parse_edt(&x.content_start_edt).map(|t| t.plan_s))
        .collect();
    app_logs
        .iter()
        .map(|a| {
            let t = a.plan_s()?;
            let mut best: Option<(usize, f64)> = None;
            for (i, xs) in xcal_starts.iter().enumerate() {
                if xcal_logs.get(i).map_or(true, |log| log.op != a.op) {
                    continue;
                }
                if let Some(x) = xs {
                    let d = (x - t).abs();
                    if d <= MATCH_TOLERANCE_S && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
            }
            best.map(|(i, _)| i)
        })
        .collect()
}

/// The naive (wrong) matcher: treats the XCAL filename's local-time stamp
/// as if it were EDT. Kept for the regression test demonstrating §B's
/// pitfall — do not use for real matching.
pub fn match_logs_naive(app_logs: &[AppLog], xcal_logs: &[XcalLog]) -> Vec<Option<usize>> {
    let xcal_starts: Vec<Option<f64>> = xcal_logs
        .iter()
        .map(|x| {
            // Parse "..._DD_HH-MM-SS.drm" back into a (mis-labelled) EDT time.
            let stem = x.file_name.strip_suffix(".drm")?;
            let mut parts = stem.rsplitn(3, '_');
            let hms = parts.next()?;
            let day = parts.next()?;
            let mut h = hms.split('-');
            let s = format!(
                "2022-08-{} {}:{}:{}.000",
                day,
                h.next()?,
                h.next()?,
                h.next()?
            );
            Timestamp::parse_edt(&s).map(|t| t.plan_s)
        })
        .collect();
    app_logs
        .iter()
        .map(|a| {
            let t = a.plan_s()?;
            let mut best: Option<(usize, f64)> = None;
            for (i, xs) in xcal_starts.iter().enumerate() {
                if xcal_logs.get(i).map_or(true, |log| log.op != a.op) {
                    continue;
                }
                if let Some(x) = xs {
                    let d = (x - t).abs();
                    if d <= MATCH_TOLERANCE_S && best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
            }
            best.map(|(i, _)| i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::XcalLogger;
    use wheels_ran::operator::Operator;

    fn xcal_at(plan_s: f64, tz: Timezone) -> XcalLog {
        XcalLogger::start(Operator::Verizon, "DL", plan_s).finish(tz)
    }

    #[test]
    fn correct_matcher_pairs_across_all_timezones() {
        let starts = [40_000.0, 47_000.0, 200_000.0, 300_000.0];
        let tzs = [
            Timezone::Pacific,
            Timezone::Mountain,
            Timezone::Central,
            Timezone::Eastern,
        ];
        let xcal: Vec<XcalLog> = starts
            .iter()
            .zip(tzs)
            .map(|(&s, tz)| xcal_at(s, tz))
            .collect();
        let apps: Vec<AppLog> = starts
            .iter()
            .zip(tzs)
            .map(|(&s, tz)| AppLog::stamped("nuttcp", Operator::Verizon, s + 1.0, AppStampFormat::Local(tz)))
            .collect();
        let m = match_logs(&apps, &xcal);
        assert_eq!(m, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn utc_stamped_apps_also_match() {
        let xcal = vec![xcal_at(50_000.0, Timezone::Mountain)];
        let apps = vec![AppLog::stamped("puffer", Operator::Verizon, 50_002.0, AppStampFormat::Utc)];
        assert_eq!(match_logs(&apps, &xcal), vec![Some(0)]);
    }

    #[test]
    fn naive_matcher_fails_west_of_eastern() {
        // A Pacific-zone test: filename is 3 h off EDT, so the naive
        // matcher misses the pairing entirely.
        let xcal = vec![xcal_at(40_000.0, Timezone::Pacific)];
        let apps = vec![AppLog::stamped("nuttcp", Operator::Verizon, 40_000.0, AppStampFormat::Utc)];
        assert_eq!(match_logs(&apps, &xcal), vec![Some(0)]);
        assert_eq!(match_logs_naive(&apps, &xcal), vec![None]);
    }

    #[test]
    fn naive_matcher_accidentally_works_in_eastern() {
        // In the Eastern zone local == EDT, so the naive matcher happens to
        // work — which is exactly why such bugs survive testing at home.
        let xcal = vec![xcal_at(300_000.0, Timezone::Eastern)];
        let apps = vec![AppLog::stamped("nuttcp", Operator::Verizon, 300_000.0, AppStampFormat::Utc)];
        assert_eq!(match_logs_naive(&apps, &xcal), vec![Some(0)]);
    }

    #[test]
    fn no_match_beyond_tolerance() {
        let xcal = vec![xcal_at(10_000.0, Timezone::Eastern)];
        let apps = vec![AppLog::stamped("nuttcp", Operator::Verizon, 10_000.0 + 120.0, AppStampFormat::Utc)];
        assert_eq!(match_logs(&apps, &xcal), vec![None]);
    }

    #[test]
    fn nearest_of_several_wins() {
        let xcal = vec![
            xcal_at(1_000.0, Timezone::Eastern),
            xcal_at(1_020.0, Timezone::Eastern),
        ];
        let apps = vec![AppLog::stamped("nuttcp", Operator::Verizon, 1_018.0, AppStampFormat::Utc)];
        assert_eq!(match_logs(&apps, &xcal), vec![Some(1)]);
    }
}
