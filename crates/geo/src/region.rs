//! Region classification: urban core / urban / suburban / highway.
//!
//! §5.5 of the paper: *"the low speed coverage samples are mostly from cities
//! whereas the high speed ones are from the inter-state highways"* and the
//! mid-speed region is *"sub-urban areas in-between cities/towns and
//! inter-state highways"*. Deployment density and technology mix in
//! `wheels-ran` key off this classification, which in turn shapes the speed
//! profile in [`crate::trip`] — that is how the paper's speed-bin results
//! (Fig. 2d, Fig. 7) emerge.

/// Kind of area the vehicle is driving through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum RegionKind {
    /// Downtown core of a major city: densest deployments, mmWave candidate
    /// sites, stop-and-go traffic.
    UrbanCore,
    /// Urban area of a city outside the core.
    Urban,
    /// Suburban / exurban areas between cities and interstates — the paper
    /// finds these have the *sparsest* 5G deployments.
    Suburban,
    /// Inter-state highway through open country.
    Highway,
}

impl RegionKind {
    /// All regions, densest-deployment first.
    pub const ALL: [RegionKind; 4] = [
        RegionKind::UrbanCore,
        RegionKind::Urban,
        RegionKind::Suburban,
        RegionKind::Highway,
    ];

    /// Typical free-flow speed in mph for the region, used as the mean of the
    /// speed process (before stops/noise).
    pub fn freeflow_mph(self) -> f64 {
        match self {
            RegionKind::UrbanCore => 12.0,
            RegionKind::Urban => 28.0,
            RegionKind::Suburban => 45.0,
            RegionKind::Highway => 70.0,
        }
    }

    /// Is this region inside a city (urban core or urban)?
    pub fn is_city(self) -> bool {
        matches!(self, RegionKind::UrbanCore | RegionKind::Urban)
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RegionKind::UrbanCore => "urban-core",
            RegionKind::Urban => "urban",
            RegionKind::Suburban => "suburban",
            RegionKind::Highway => "highway",
        }
    }

    /// Classify a point by its distance (meters) to the nearest city center,
    /// given that city's urban radius scaling factor (major cities are
    /// physically larger).
    ///
    /// * within `6 km × scale` of a center → urban core,
    /// * within `15 km × scale` → urban,
    /// * within `30 km × scale` → suburban,
    /// * else → highway.
    pub fn classify(distance_to_city_m: f64, city_scale: f64) -> Self {
        let d = distance_to_city_m;
        if d <= 6_000.0 * city_scale {
            RegionKind::UrbanCore
        } else if d <= 15_000.0 * city_scale {
            RegionKind::Urban
        } else if d <= 30_000.0 * city_scale {
            RegionKind::Suburban
        } else {
            RegionKind::Highway
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_monotonic_in_distance() {
        let mut last = RegionKind::UrbanCore;
        for d in [0.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 200_000.0] {
            let r = RegionKind::classify(d, 1.0);
            assert!(r >= last, "region must not get denser with distance");
            last = r;
        }
    }

    #[test]
    fn classify_respects_scale() {
        // 10 km from a small town is suburban-ish; from a metro it's urban.
        assert_eq!(RegionKind::classify(10_000.0, 0.5), RegionKind::Suburban);
        assert_eq!(RegionKind::classify(10_000.0, 1.5), RegionKind::Urban);
    }

    #[test]
    fn freeflow_speeds_ordered() {
        assert!(RegionKind::UrbanCore.freeflow_mph() < RegionKind::Urban.freeflow_mph());
        assert!(RegionKind::Urban.freeflow_mph() < RegionKind::Suburban.freeflow_mph());
        assert!(RegionKind::Suburban.freeflow_mph() < RegionKind::Highway.freeflow_mph());
    }

    #[test]
    fn city_predicate() {
        assert!(RegionKind::UrbanCore.is_city());
        assert!(RegionKind::Urban.is_city());
        assert!(!RegionKind::Suburban.is_city());
        assert!(!RegionKind::Highway.is_city());
    }
}
